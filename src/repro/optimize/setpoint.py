"""Per-plan setpoint refinement: golden-section over static clock caps.

Zeus-style outer loop: golden-section search over a *static* clock
ceiling (equivalently, a board power limit), where each probe is one
full simulated run and the objective is the configurable
energy·delayⁿ cost over the measured window. Probes go through
:func:`repro.core.sweep.cached_run`, so repeated searches —
and the sweep mode of ``python -m repro powerctl`` — reuse the
in-process memo and the persistent ``.repro_cache`` store; the initial
bracket fans out over worker processes via ``jobs``.

The throughput constraint is handled the way Zeus handles its MaxSlowdown
knob rather than by trusting unimodality of a penalized objective: the
search *iterates* on a softly penalized cost (keeping the bracket
well-behaved), but the final answer is the cheapest **feasible** probe —
slowdown within ``max_slowdown`` of the uncapped baseline — and the
baseline itself is always a candidate, so the search can never return
something worse than not searching.

This module is the per-plan refinement stage of the joint optimizer
(:mod:`repro.optimize.search`); ``powerctl.search_energy_optimal`` and
``powerctl.sweep_setpoints`` remain as deprecated shims over
:func:`optimize_setpoint` / :func:`evaluate_setpoints` with identical
behaviour and cache keys.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.results import RunResult
from repro.engine.simulator import SimSettings
from repro.powerctl.config import NO_POWER_CONTROL, PowerControlConfig

#: 1/phi, the golden-section interior-point ratio.
GOLDEN = (5.0 ** 0.5 - 1.0) / 2.0

#: Setpoints are rounded to this many decimals before running, so the
#: probes of two searches over the same bracket hit the same cache keys.
_SETPOINT_DECIMALS = 4

#: Soft-penalty weight (in units of baseline cost per unit of excess
#: slowdown) applied while iterating; see module docstring.
_PENALTY_WEIGHT = 10.0


@dataclass(frozen=True)
class SearchSettings:
    """Knobs of the energy-optimal search.

    Attributes:
        lo / hi: clock-ratio bracket to search (hi=1.0 includes the
            uncapped baseline).
        tolerance: stop when the bracket is narrower than this.
        edp_exponent: the ``n`` in the energy·delayⁿ cost. 0 minimises
            pure energy, 1 the energy-delay product, 2 ED².
        max_slowdown: feasibility bound on step-time inflation relative
            to the uncapped baseline (0.05 = at most 5% slower); None
            disables the constraint.
        max_iterations: hard cap on golden-section refinements.
    """

    lo: float = 0.55
    hi: float = 1.0
    tolerance: float = 0.03
    edp_exponent: float = 1.0
    max_slowdown: float | None = 0.05
    max_iterations: int = 16

    def __post_init__(self) -> None:
        if not 0 < self.lo < self.hi <= 1.0:
            raise ValueError("search bracket must satisfy 0 < lo < hi <= 1")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.edp_exponent < 0:
            raise ValueError("edp_exponent must be >= 0")
        if self.max_slowdown is not None and self.max_slowdown < 0:
            raise ValueError("max_slowdown must be >= 0 (or None)")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")


@dataclass(frozen=True)
class SetpointProbe:
    """One evaluated setpoint: measured-window metrics plus its cost."""

    setpoint: float
    energy_j: float
    step_time_s: float
    tokens_per_s: float
    mean_freq_ratio: float
    peak_temp_c: float
    cost: float
    feasible: bool


@dataclass
class SearchOutcome:
    """Result of one energy-optimal search."""

    baseline: SetpointProbe
    best: SetpointProbe
    probes: list[SetpointProbe]
    iterations: int
    best_result: RunResult
    #: Cache telemetry: distinct setpoints this search evaluated, and
    #: how many of them were answered from the memo/store without a
    #: fresh simulation (resumability accounting for ``repro optimize``).
    probes_total: int = 0
    probes_cached: int = 0

    @property
    def energy_saving_fraction(self) -> float:
        """Energy saved by the best setpoint vs the uncapped baseline."""
        if self.baseline.energy_j <= 0:
            return 0.0
        return 1.0 - self.best.energy_j / self.baseline.energy_j

    @property
    def slowdown_fraction(self) -> float:
        """Step-time inflation of the best setpoint vs the baseline."""
        if self.baseline.step_time_s <= 0:
            return 0.0
        return self.best.step_time_s / self.baseline.step_time_s - 1.0


def settings_for_setpoint(
    settings: SimSettings | None, setpoint: float
) -> SimSettings:
    """Sim settings running under a uniform static ceiling.

    A setpoint of 1.0 maps to ``NO_POWER_CONTROL`` (not a static cap at
    boost), so the search's baseline probe shares its cache entry with
    every ordinary uncapped run of the same configuration.
    """
    base = settings if settings is not None else SimSettings()
    if setpoint >= 1.0 - 1e-9:
        control = NO_POWER_CONTROL
    else:
        control = PowerControlConfig(
            governor="static", freq_setpoint=setpoint
        )
    return dataclasses.replace(base, power_control=control)


def _base_run_kwargs(
    model,
    cluster,
    parallelism,
    optimizations,
    microbatch_size: int,
    global_batch_size: int,
    iterations: int,
    pipeline_schedule: str | None = None,
    seq_splits: int | None = None,
) -> dict:
    kwargs = dict(
        model=model,
        cluster=cluster,
        parallelism=parallelism,
        microbatch_size=microbatch_size,
        global_batch_size=global_batch_size,
        iterations=iterations,
    )
    if optimizations is not None:
        kwargs["optimizations"] = optimizations
    if pipeline_schedule is not None:
        kwargs["pipeline_schedule"] = pipeline_schedule
    if seq_splits is not None:
        kwargs["seq_splits"] = seq_splits
    return kwargs


class _ProbeRunner:
    """Evaluates setpoints through the run cache, memoising per search.

    Serial searches (``jobs == 1``) hold a
    :class:`repro.engine.batched.SetpointSession` open across calls: the
    opening bracket batches into one anchor simulation plus vectorized
    replays, and each later golden-section refinement is a single replay
    against the retained anchor instead of a full simulation. Parallel
    searches fan out over worker processes as before; results are
    identical either way (same cache keys, field-for-field outcomes).
    """

    def __init__(self, run_kwargs: dict, settings: SimSettings | None,
                 jobs: int) -> None:
        self._run_kwargs = run_kwargs
        self._settings = settings
        self._jobs = jobs
        self._session = None
        self.results: dict[float, RunResult] = {}
        self.probes_total = 0
        self.probes_cached = 0

    def _kwargs_for(self, setpoint: float) -> dict:
        kwargs = dict(self._run_kwargs)
        kwargs["settings"] = settings_for_setpoint(self._settings, setpoint)
        return kwargs

    def ensure(self, setpoints: list[float]) -> None:
        """Evaluate any not-yet-run setpoints (batch fans out over jobs)."""
        from repro.core.sweep import lookup_cached

        missing: list[float] = []
        for setpoint in setpoints:
            if setpoint not in self.results and setpoint not in missing:
                missing.append(setpoint)
        if not missing:
            return
        self.probes_total += len(missing)
        self.probes_cached += sum(
            1 for sp in missing
            if lookup_cached("train", self._kwargs_for(sp)) is not None
        )
        if self._jobs <= 1:
            if self._session is None:
                from repro.engine.batched import SetpointSession

                self._session = SetpointSession(
                    "train", self._kwargs_for
                )
            self.results.update(self._session.evaluate(missing))
            return
        from repro.core.parallel import map_runs

        payloads = [("train", self._kwargs_for(sp)) for sp in missing]
        outputs = map_runs(payloads, self._jobs)
        self.results.update(zip(missing, outputs))


def _round_setpoint(value: float) -> float:
    return round(value, _SETPOINT_DECIMALS)


def optimize_setpoint(
    model,
    cluster,
    parallelism,
    *,
    optimizations=None,
    microbatch_size: int = 1,
    global_batch_size: int = 32,
    iterations: int = 2,
    settings: SimSettings | None = None,
    search: SearchSettings | None = None,
    jobs: int = 1,
    pipeline_schedule: str | None = None,
    seq_splits: int | None = None,
) -> SearchOutcome:
    """Find the energy-optimal static clock ceiling for one workload.

    The positional arguments mirror :func:`repro.core.experiment.
    execute_training` (catalog names or full spec objects, including
    ``pipeline_schedule``/``seq_splits`` overrides — the energy-optimal
    setpoint shifts with the pipeline schedule, since zero-bubble
    drains change where the idle time a lower clock can hide lives).
    ``jobs`` fans the initial three-probe bracket (baseline + two
    golden-section interior points) over worker processes; refinement
    probes run one at a time, each served from the cache when
    previously seen.
    """
    search = search or SearchSettings()
    runner = _ProbeRunner(
        _base_run_kwargs(
            model, cluster, parallelism, optimizations,
            microbatch_size, global_batch_size, iterations,
            pipeline_schedule, seq_splits,
        ),
        settings,
        jobs,
    )

    a, b = search.lo, search.hi
    c = _round_setpoint(b - GOLDEN * (b - a))
    d = _round_setpoint(a + GOLDEN * (b - a))
    runner.ensure([1.0, c, d])

    baseline_eff = runner.results[1.0].efficiency()
    baseline_cost = baseline_eff.energy_j * (
        baseline_eff.step_time_s ** search.edp_exponent
    )

    def iteration_cost(setpoint: float) -> float:
        """Penalized objective the golden-section bracket iterates on."""
        eff = runner.results[setpoint].efficiency()
        cost = eff.energy_j * (eff.step_time_s ** search.edp_exponent)
        if search.max_slowdown is not None:
            slowdown = eff.step_time_s / baseline_eff.step_time_s - 1.0
            excess = slowdown - search.max_slowdown
            if excess > 0:
                cost += _PENALTY_WEIGHT * excess * baseline_cost
        return cost

    refinements = 0
    while (b - a) > search.tolerance and refinements < search.max_iterations:
        if iteration_cost(c) < iteration_cost(d):
            b, d = d, c
            c = _round_setpoint(b - GOLDEN * (b - a))
            runner.ensure([c])
        else:
            a, c = c, d
            d = _round_setpoint(a + GOLDEN * (b - a))
            runner.ensure([d])
        refinements += 1

    probes: list[SetpointProbe] = []
    for setpoint, result in runner.results.items():
        eff = result.efficiency()
        stats = result.stats()
        slowdown = eff.step_time_s / baseline_eff.step_time_s - 1.0
        feasible = (
            search.max_slowdown is None
            or slowdown <= search.max_slowdown + 1e-12
        )
        probes.append(
            SetpointProbe(
                setpoint=setpoint,
                energy_j=eff.energy_j,
                step_time_s=eff.step_time_s,
                tokens_per_s=eff.tokens_per_s,
                mean_freq_ratio=stats.mean_freq_ratio,
                peak_temp_c=stats.peak_temp_c,
                cost=eff.energy_j * (eff.step_time_s ** search.edp_exponent),
                feasible=feasible,
            )
        )

    baseline = next(p for p in probes if p.setpoint == 1.0)
    feasible = [p for p in probes if p.feasible]
    best = min(feasible, key=lambda p: p.cost) if feasible else baseline
    return SearchOutcome(
        baseline=baseline,
        best=best,
        probes=probes,
        iterations=refinements,
        best_result=runner.results[best.setpoint],
        probes_total=runner.probes_total,
        probes_cached=runner.probes_cached,
    )


def evaluate_setpoints(
    model,
    cluster,
    parallelism,
    setpoints,
    *,
    optimizations=None,
    microbatch_size: int = 1,
    global_batch_size: int = 32,
    iterations: int = 2,
    settings: SimSettings | None = None,
    jobs: int = 1,
    pipeline_schedule: str | None = None,
    seq_splits: int | None = None,
) -> list[tuple[float, RunResult]]:
    """Run the workload under each static ceiling (cached, parallel).

    The grid-mode counterpart of :func:`optimize_setpoint`; the
    basis of ``python -m repro powerctl sweep``.
    """
    runner = _ProbeRunner(
        _base_run_kwargs(
            model, cluster, parallelism, optimizations,
            microbatch_size, global_batch_size, iterations,
            pipeline_schedule, seq_splits,
        ),
        settings,
        jobs,
    )
    rounded = [_round_setpoint(sp) for sp in setpoints]
    runner.ensure(rounded)
    return [(sp, runner.results[sp]) for sp in rounded]
