"""Physics backends: thermal + DVFS co-simulation strategies.

The simulator integrates one RC thermal model and one DVFS governor per
node at a fixed step. Two interchangeable backends implement that loop:

* :class:`ScalarPhysics` — the reference implementation, one
  :class:`~repro.thermal.rc_model.NodeThermalState` and one
  :class:`~repro.thermal.throttle.DvfsGovernor` per node, stepped with
  plain Python loops. This is the original (pre-optimization) code path,
  kept both as a differential-testing oracle and as the baseline the
  perf-regression benchmark measures speedups against.

* :class:`VectorPhysics` — the hot path. All nodes are stacked into
  ``(num_nodes, gpus_per_node)`` numpy arrays and the whole cluster is
  advanced with a handful of vectorized operations per step: inlet
  temperatures via a precomputed upstream-airflow matrix, the exact
  2x2 matrix-exponential propagator applied to every (die, heatsink)
  pair at once, and a vectorized governor (power cap, throttle,
  recovery, clamp). Clock exponentiation (``freq ** 2.4``, the single
  most expensive scalar in the loop) is cached per GPU and recomputed
  only where the clock actually changed since the previous step.

Both backends expose the same small surface the simulator needs:
``prewarm``, ``step``, ``freq_of``/``freqs``, ``temps``,
``throttle_ratios`` and ``mean_freq_ratios``. Numerical results agree to
floating-point noise (the vector path reorders some reductions);
``tests/test_engine_physics.py`` pins the two together.
"""

from __future__ import annotations

import numpy as np

from repro.core.faults import FaultSpec
from repro.hardware.cluster import ClusterSpec
from repro.power.model import (
    COMM_INTENSITY,
    COMPUTE_INTENSITY,
    FREQ_POWER_EXP,
    MEMORY_INTENSITY,
    Activity,
    gpu_power,
)
from repro.thermal.rc_model import NodeThermalState, _expm_2x2, _system_matrix
from repro.thermal.throttle import (
    HYSTERESIS_C,
    RECOVERY_STEP,
    THROTTLE_GAIN_PER_C,
    DvfsGovernor,
)


class ScalarPhysics:
    """Reference backend: per-node thermal/governor objects, Python loops."""

    def __init__(self, cluster: ClusterSpec, faults: FaultSpec) -> None:
        self.cluster = cluster
        node = cluster.node
        self.thermal = [
            NodeThermalState(node) for _ in range(cluster.num_nodes)
        ]
        self.governors = [
            DvfsGovernor(
                node,
                power_cap_scale=faults.power_cap_scale(i),
                max_clock=faults.max_clock(i),
            )
            for i in range(cluster.num_nodes)
        ]
        # Static (whole-run) cap scales, kept so transient sags compose
        # multiplicatively with them and clear back to exactly this.
        self._static_cap_scale = [
            faults.power_cap_scale(i) for i in range(cluster.num_nodes)
        ]

    def prewarm(self, power_w: float) -> None:
        """Jump every node to the steady state of a uniform power draw."""
        per_node = self.cluster.node.gpus_per_node
        for thermal in self.thermal:
            thermal.set_equilibrium([power_w] * per_node)

    def step(
        self,
        dt_s: float,
        activity_of,
    ) -> None:
        """Advance thermal + governor state by one step.

        Args:
            dt_s: integration step.
            activity_of: callable ``gpu -> Activity`` giving the current
                utilisation of each global GPU.
        """
        cluster = self.cluster
        per_node = cluster.node.gpus_per_node
        gpu_spec = cluster.node.gpu
        for node_idx in range(cluster.num_nodes):
            governor = self.governors[node_idx]
            thermal = self.thermal[node_idx]
            powers = []
            for local in range(per_node):
                gpu = node_idx * per_node + local
                power = gpu_power(
                    gpu_spec,
                    activity_of(gpu),
                    governor.freq_of(local),
                )
                powers.append(power)
                self._power_out[gpu] = power
            temps = thermal.step(dt_s, powers)
            governor.update(dt_s, temps, powers)

    def bind_power_out(self, power_out: list[float]) -> None:
        """Register the per-GPU power list the backend writes into."""
        self._power_out = power_out

    def set_setpoints(self, setpoints) -> None:
        """Apply per-GPU clock ceilings (global-GPU order, powerctl)."""
        per_node = self.cluster.node.gpus_per_node
        flat = [float(v) for v in np.asarray(setpoints).reshape(-1)]
        for i, governor in enumerate(self.governors):
            governor.setpoints = flat[i * per_node:(i + 1) * per_node]

    def set_node_budget_scales(self, scales) -> None:
        """Apply transient per-node power-budget multipliers (faults).

        Composes with any static :class:`FaultSpec` cap; a scale of 1.0
        restores the governor to exactly its whole-run value.
        """
        for i, governor in enumerate(self.governors):
            governor.power_cap_scale = (
                self._static_cap_scale[i] * float(scales[i])
            )

    def set_ambient_offsets(self, offsets) -> None:
        """Apply transient per-node inlet/ambient offsets (degC)."""
        for thermal, delta in zip(self.thermal, offsets):
            thermal.set_ambient_offset(float(delta))

    def freq_of(self, gpu: int) -> float:
        """Current clock ratio of one global GPU."""
        per_node = self.cluster.node.gpus_per_node
        return self.governors[gpu // per_node].freq_of(gpu % per_node)

    def temp_of(self, gpu: int) -> float:
        """Current die temperature of one global GPU."""
        per_node = self.cluster.node.gpus_per_node
        return self.thermal[gpu // per_node].temps_c[gpu % per_node]

    def throttle_ratios(self) -> list[float]:
        """Per-GPU fraction of observed time spent throttled."""
        values: list[float] = []
        for governor in self.governors:
            values.extend(governor.throttle_ratios())
        return values

    def mean_freq_ratios(self) -> list[float]:
        """Per-GPU time-weighted mean clock ratio."""
        values: list[float] = []
        for governor in self.governors:
            values.extend(s.mean_freq_ratio for s in governor.stats)
        return values


class VectorPhysics:
    """Vectorized backend: the whole cluster stepped as stacked arrays."""

    def __init__(self, cluster: ClusterSpec, faults: FaultSpec) -> None:
        self.cluster = cluster
        node = cluster.node
        gpu = node.gpu
        n, g = cluster.num_nodes, node.gpus_per_node
        self._n, self._g = n, g

        # Airflow: inlet_i = ambient + offset_i + k * sum_{j up(i)} P_j,
        # expressed as a per-node (g, g) upstream matrix shared by all
        # nodes (identical hardware).
        upstream = np.zeros((g, g))
        for i, sources in enumerate(node.airflow.upstream):
            for j in sources:
                upstream[i, j] = 1.0
        self._preheat_matrix = node.airflow.preheat_c_per_w * upstream
        self._inlet_base = node.ambient_c + np.asarray(
            node.airflow.inlet_offset_c, dtype=float
        )

        self._r_total = gpu.thermal_resistance_c_per_w
        self._r_sink_air = self._r_total - gpu.die_resistance_c_per_w
        self._matrix = _system_matrix(node)
        self._propagators: dict[float, tuple[float, ...]] = {}
        self._eq_cache: tuple | None = None

        idle = np.broadcast_to(self._inlet_base, (n, g)).copy()
        self.die_c = idle.copy()
        self.sink_c = idle.copy()

        # Governor state and fault knobs, one row per node.
        self.freq = np.ones((n, g))
        self._cap_scale = np.array(
            [faults.power_cap_scale(i) for i in range(n)]
        )
        self._budget = node.node_power_cap_watts * self._cap_scale
        max_clock = np.array([faults.max_clock(i) for i in range(n)])
        self._ceiling = np.minimum(1.0, max_clock)[:, None]
        floor = np.where(
            self._cap_scale < 1.0,
            gpu.base_clock_ratio * self._cap_scale,
            gpu.base_clock_ratio,
        )
        self._floor = np.minimum(floor[:, None], self._ceiling)
        # Powerctl setpoints overlay *effective* ceilings. Until a
        # governor actuates these alias the hardware arrays, so the
        # no-powerctl path performs bit-identical float operations.
        self._eff_ceiling = self._ceiling
        self._eff_floor = self._floor
        self._throttle_temp = gpu.throttle_temp_c

        self.throttled_time = np.zeros((n, g))
        self.observed_time = 0.0
        self.freq_integral = np.zeros((n, g))
        # Governor quiet path: while every clock sits at its ceiling, no
        # node is power-capped and no die is above the throttle point,
        # the full where/clip chain is a no-op and is skipped.
        self._at_ceiling = False
        self._throttled_mask = np.zeros((n, g))
        # Per-GPU stats accrue lazily: while the clocks hold still only
        # the scalar _hold_dt advances, and the array integrals are
        # settled when the clocks move or the stats are read.
        self._hold_dt = 0.0

    # -- thermal helpers ------------------------------------------------

    def _inlets(self, powers: np.ndarray) -> np.ndarray:
        return self._inlet_base + powers @ self._preheat_matrix.T

    def _propagator(self, dt_s: float) -> tuple[float, float, float, float]:
        propagator = self._propagators.get(dt_s)
        if propagator is None:
            matrix = _expm_2x2(self._matrix, dt_s)
            propagator = (
                float(matrix[0, 0]),
                float(matrix[0, 1]),
                float(matrix[1, 0]),
                float(matrix[1, 1]),
            )
            self._propagators[dt_s] = propagator
        return propagator

    def prewarm(self, power_w: float) -> None:
        """Jump every GPU to the steady state of a uniform power draw."""
        powers = np.full((self._n, self._g), power_w)
        inlets = self._inlets(powers)
        self.die_c = inlets + powers * self._r_total
        self.sink_c = inlets + powers * self._r_sink_air

    def step(self, dt_s: float, powers: np.ndarray) -> None:
        """Advance thermal state and governor by ``dt_s``.

        Args:
            dt_s: integration step.
            powers: per-GPU board powers held over the step, either flat
                (global-GPU order) or ``(num_nodes, gpus_per_node)``.
        """
        powers = powers.reshape(self._n, self._g)
        # Equilibrium temperatures and the cap factor depend only on the
        # held powers; kernels start/finish far less often than physics
        # steps, so reuse them while powers are unchanged.
        cache = self._eq_cache
        if cache is not None and np.array_equal(powers, cache[0]):
            die_eq, sink_eq, cap, capped = cache[1:]
        else:
            inlets = self._inlets(powers)
            die_eq = inlets + powers * self._r_total
            sink_eq = inlets + powers * self._r_sink_air
            total = powers.sum(axis=1)
            over = total > self._budget
            capped = bool(over.any())
            cap = np.where(
                over, self._budget / np.maximum(total, 1e-12), 1.0
            )[:, None]
            self._eq_cache = (powers.copy(), die_eq, sink_eq, cap, capped)

        # Thermal: exact propagator toward the step's equilibrium.
        p00, p01, p10, p11 = self._propagator(dt_s)
        die_dev = self.die_c - die_eq
        sink_dev = self.sink_c - sink_eq
        self.die_c = die_eq + p00 * die_dev + p01 * sink_dev
        self.sink_c = sink_eq + p10 * die_dev + p11 * sink_dev

        # Governor: node power cap, then per-GPU throttle/recovery.
        if (
            self._at_ceiling
            and not capped
            and not (self.die_c > self._throttle_temp).any()
        ):
            # Quiet path: throttle, recovery, cap and clamp all leave
            # the clocks exactly where they are.
            ratio = self.freq
        else:
            self._settle_stats()
            excess = self.die_c - self._throttle_temp
            ratio = np.where(
                excess > 0,
                self.freq - THROTTLE_GAIN_PER_C * excess,
                np.where(
                    self.die_c < self._throttle_temp - HYSTERESIS_C,
                    self.freq + RECOVERY_STEP,
                    self.freq,
                ),
            )
            ratio = np.minimum(
                np.maximum(ratio * cap, self._eff_floor), self._eff_ceiling
            )
            self.freq = ratio
            self._at_ceiling = bool((ratio == self._eff_ceiling).all())
            self._throttled_mask = ratio < 1.0 - 1e-9

        self.observed_time += dt_s
        self._hold_dt += dt_s

    def _settle_stats(self) -> None:
        """Fold the pending constant-clock interval into the integrals."""
        if self._hold_dt:
            self.freq_integral += self.freq * self._hold_dt
            self.throttled_time += self._throttled_mask * self._hold_dt
            self._hold_dt = 0.0

    def set_setpoints(self, setpoints) -> None:
        """Apply per-GPU clock ceilings (global-GPU order, powerctl).

        Setpoints tighten the effective ceiling; they never widen the
        hardware/fault one, mirroring the scalar governor's
        ``min(ceiling, setpoint)``.
        """
        sp = np.asarray(setpoints, dtype=float).reshape(self._n, self._g)
        self._eff_ceiling = np.minimum(self._ceiling, sp)
        self._eff_floor = np.minimum(self._floor, self._eff_ceiling)
        # Clocks may now sit above the new ceiling; force the full
        # governor path on the next step so the clamp takes effect.
        self._at_ceiling = False

    def set_node_budget_scales(self, scales) -> None:
        """Apply transient per-node power-budget multipliers (faults).

        Mirrors the scalar governor exactly: the budget and the clock
        floor both follow the *combined* static x transient scale, and a
        transient scale of 1.0 restores the whole-run values bit for
        bit.
        """
        node = self.cluster.node
        combined = self._cap_scale * np.asarray(scales, dtype=float)
        self._budget = node.node_power_cap_watts * combined
        floor = np.where(
            combined < 1.0,
            node.gpu.base_clock_ratio * combined,
            node.gpu.base_clock_ratio,
        )
        self._floor = np.minimum(floor[:, None], self._ceiling)
        self._eff_floor = np.minimum(self._floor, self._eff_ceiling)
        # The cap factor cached in _eq_cache depends on the budget, and
        # clocks may need clamping to the new floor: force a full step.
        self._eq_cache = None
        self._at_ceiling = False

    def set_ambient_offsets(self, offsets) -> None:
        """Apply transient per-node inlet/ambient offsets (degC)."""
        node = self.cluster.node
        self._inlet_base = (
            node.ambient_c
            + np.asarray(offsets, dtype=float)[:, None]
            + np.asarray(node.airflow.inlet_offset_c, dtype=float)
        )
        # Equilibrium temperatures cached in _eq_cache embed the inlets.
        self._eq_cache = None
        self._at_ceiling = False

    # -- simulator-facing views ----------------------------------------

    @property
    def freq_flat(self) -> np.ndarray:
        """Clock ratios in global-GPU order (flattened view)."""
        return self.freq.reshape(-1)

    def freq_of(self, gpu: int) -> float:
        """Current clock ratio of one global GPU."""
        return float(self.freq[gpu // self._g, gpu % self._g])

    def temp_of(self, gpu: int) -> float:
        """Current die temperature of one global GPU."""
        return float(self.die_c[gpu // self._g, gpu % self._g])

    def throttle_ratios(self) -> list[float]:
        """Per-GPU fraction of observed time spent throttled."""
        if self.observed_time == 0:
            return [0.0] * (self._n * self._g)
        self._settle_stats()
        return (self.throttled_time / self.observed_time).reshape(-1).tolist()

    def mean_freq_ratios(self) -> list[float]:
        """Per-GPU time-weighted mean clock ratio."""
        if self.observed_time == 0:
            return [1.0] * (self._n * self._g)
        self._settle_stats()
        return (self.freq_integral / self.observed_time).reshape(-1).tolist()


class PowerVector:
    """Vectorized per-GPU board-power evaluation with change tracking.

    Mirrors :func:`repro.power.model.gpu_power` across the whole cluster:
    ``P = idle + span * intensity * freq ** 2.4``. The activity-derived
    intensity is recomputed only when some kernel started or finished
    since the last step, and the clock exponential only where the
    governor actually moved a GPU's clock.
    """

    def __init__(self, cluster: ClusterSpec) -> None:
        gpu = cluster.node.gpu
        self._idle = gpu.idle_watts
        self._span = gpu.tdp_watts - gpu.idle_watts
        num = cluster.total_gpus
        self._intensity = np.zeros(num)
        self._freq_seen = np.ones(num)
        self._freq_pow = np.ones(num)

    def refresh_intensity(
        self,
        compute_active: list[float],
        comm_active: list[float],
        memory_active: list[float],
    ) -> None:
        """Recompute the activity intensity vector (call when dirty)."""
        clamp01 = lambda values: np.minimum(  # noqa: E731
            np.maximum(np.asarray(values), 0.0), 1.0
        )
        self._intensity = clamp01(
            COMPUTE_INTENSITY * clamp01(compute_active)
            + COMM_INTENSITY * clamp01(comm_active)
            + MEMORY_INTENSITY * clamp01(memory_active)
        )

    def powers(self, freq_flat: np.ndarray) -> np.ndarray:
        """Board power per GPU for the given clock ratios."""
        changed = freq_flat != self._freq_seen
        if changed.any():
            self._freq_pow[changed] = freq_flat[changed] ** FREQ_POWER_EXP
            self._freq_seen = freq_flat.copy()
        return self._idle + self._span * self._intensity * self._freq_pow


def reference_activity(
    compute_active: list[float],
    comm_active: list[float],
    memory_active: list[float],
):
    """Scalar ``gpu -> Activity`` closure for :class:`ScalarPhysics`."""

    def activity_of(gpu: int) -> Activity:
        return Activity(
            compute=min(1.0, max(0.0, compute_active[gpu])),
            comm=min(1.0, max(0.0, comm_active[gpu])),
            memory=min(1.0, max(0.0, memory_active[gpu])),
        )

    return activity_of
