"""Lowering a training configuration to a per-rank task graph.

The builder walks the pipeline schedule of every (data-parallel replica,
pipeline stage) slice and emits, for each rank, the ordered kernels one
NeMo/Megatron iteration executes:

* forward/backward compute per microbatch per (virtual) stage, scaled by
  tensor parallelism and microbatch-size GEMM efficiency. Expert-parallel
  ranks behave data-parallel for attention (each processes its own batch
  shard) while the MoE MLP work per rank stays constant (each rank hosts
  ``experts/ep`` experts but receives tokens from all EP peers);
* per-stage tensor-parallel AllReduces (two per layer per direction);
* expert-parallel AllToAlls for MoE layers (dispatch + combine, both
  directions);
* pipeline-parallel activation/gradient SendRecv across stage boundaries
  (unchunked concurrent small flows when TP > 1 — the paper's TP+PP
  communication pathology);
* FSDP parameter AllGather / gradient ReduceScatter per microbatch;
* end-of-iteration gradient synchronisation: dense parameters reduce
  across the full DP group (plain AllReduce, or ReduceScatter +
  AllGather under the ZeRO-1 distributed optimizer), expert parameters
  across the outer DP replicas only; then the memory-bound optimizer
  step.

Optimizations restructure the graph: activation recomputation inserts
forward-replay kernels into every backward; compute-communication overlap
fuses collectives with the compute they hide behind (both slowed by
resource contention); LoRA shrinks gradient/optimizer traffic to the
adapter parameters and cheapens the backward pass.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.comm.collectives import allreduce
from repro.engine.kernels import KernelKind, stage_gemm_efficiency
from repro.engine.task import (
    CollectiveOp,
    CollectiveSpec,
    ComputeSpec,
    P2PSpec,
    Task,
    TaskGraph,
    TaskKind,
)
from repro.models.config import ModelConfig
from repro.models.flops import layer_flops
from repro.models.memory import shard_params_split
from repro.optimizations.lora import lora_params
from repro.parallelism.mapping import DeviceMesh, RankCoords, rank_of
from repro.parallelism.strategy import OptimizationConfig
from repro.power.model import Activity
from repro.schedules import NodeType, create_schedule

# Gradient-bucket count for overlapped data-parallel synchronisation.
DP_OVERLAP_BUCKETS = 4
# Backward FLOPs as a multiple of forward: full training computes both
# input and weight gradients; LoRA skips weight gradients of frozen layers.
BACKWARD_MULTIPLIER = 2.0
LORA_BACKWARD_MULTIPLIER = 1.4
# Optimizer bytes touched per parameter (read fp32 master + moments,
# write them back, read/write fp16 copies).
OPTIMIZER_BYTES_TOUCHED = 32.0

OPTIMIZER_ACTIVITY = Activity(memory=1.0)


def split_layers(num_layers: int, num_stages: int) -> list[int]:
    """Even layer split across stages, remainder to the early stages."""
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    if num_layers < num_stages:
        raise ValueError("fewer layers than pipeline stages")
    base, extra = divmod(num_layers, num_stages)
    return [base + (1 if s < extra else 0) for s in range(num_stages)]


@dataclass(frozen=True)
class WorkloadShape:
    """Batch geometry of one run."""

    microbatch_size: int
    global_batch_size: int
    num_microbatches: int


class GraphBuilder:
    """Builds the task graph for one training (or inference) run."""

    def __init__(
        self,
        model: ModelConfig,
        mesh: DeviceMesh,
        microbatch_size: int,
        global_batch_size: int,
        opts: OptimizationConfig,
        iterations: int = 2,
        stage_layers: list[int] | None = None,
        num_chunks: int = 2,
        num_seq_splits: int | None = None,
        inference: bool = False,
    ) -> None:
        cfg = mesh.config
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if microbatch_size < 1:
            raise ValueError("microbatch_size must be >= 1")
        per_replica = global_batch_size // cfg.dp
        if per_replica * cfg.dp != global_batch_size:
            raise ValueError("global batch must divide evenly across DP")
        num_microbatches, rem = divmod(per_replica, microbatch_size)
        if rem or num_microbatches < 1:
            raise ValueError(
                f"global batch {global_batch_size} with dp={cfg.dp} does "
                f"not divide into microbatches of {microbatch_size}"
            )
        if model.moe and cfg.ep > model.moe.num_experts:
            raise ValueError("ep exceeds the model's expert count")
        if cfg.ep > 1 and model.moe is None:
            raise ValueError("expert parallelism needs an MoE model")

        self.model = model
        self.mesh = mesh
        self.cfg = cfg
        self.opts = opts
        self.iterations = iterations
        self.inference = inference
        self.shape = WorkloadShape(
            microbatch_size, global_batch_size, num_microbatches
        )
        self.stage_layers = stage_layers or split_layers(
            model.num_layers, cfg.pp
        )
        if len(self.stage_layers) != cfg.pp:
            raise ValueError("stage_layers must have one entry per stage")
        if sum(self.stage_layers) != model.num_layers:
            raise ValueError("stage_layers must sum to num_layers")
        # Resolve the pipeline schedule: the legacy ``interleaved`` flag
        # upgrades 1F1B to the interleaved schedule, and interleaving is
        # a no-op on a single stage either way.
        schedule_name = cfg.pipeline_schedule
        if schedule_name == "1f1b" and cfg.interleaved and cfg.pp > 1:
            schedule_name = "interleaved"
        elif schedule_name == "interleaved" and cfg.pp <= 1:
            schedule_name = "1f1b"
        self.num_chunks = num_chunks if schedule_name == "interleaved" else 1
        self.schedule = create_schedule(
            schedule_name,
            cfg.pp,
            num_microbatches,
            num_chunks=self.num_chunks,
            num_seq_splits=num_seq_splits,
        )
        self.num_seq_splits = self.schedule.num_seq_splits

        self._uid = itertools.count()
        self._msg_uid = itertools.count()
        self._msg_ids: dict[tuple, int] = {}
        self._shared: dict[tuple, Task] = {}
        self.queues: list[list[Task]] = [[] for _ in range(cfg.world_size)]

        gpu = mesh.cluster.node.gpu
        self._hbm_bw = gpu.hbm_bandwidth_bytes_per_s

        # Sequence-split schedules pipeline fractional-sequence chunks:
        # every per-unit quantity (FLOPs, GEMM efficiency, activation
        # payloads) scales to the chunk, while tokens per iteration —
        # and hence throughput accounting — is unchanged.
        tokens = microbatch_size * model.seq_length
        if self.num_seq_splits > 1:
            if tokens % self.num_seq_splits:
                raise ValueError(
                    f"microbatch of {tokens} tokens does not divide "
                    f"into {self.num_seq_splits} sequence splits"
                )
            tokens //= self.num_seq_splits
        self._tokens = tokens
        self._gemm_eff = stage_gemm_efficiency(
            model, tokens, cfg.tp,
            half_point_tokens=gpu.gemm_half_point_tokens,
        )
        # Board power tracks tensor-core intensity: a starved GEMM draws
        # less power, a well-fed one approaches TDP — the paper's
        # "larger microbatches raise peak power" mechanism (Section 5).
        self._compute_activity = Activity(
            compute=self._gemm_eff, memory=0.3
        )
        # Fused compute+comm kernels additionally keep the copy/NCCL
        # machinery busy (CC-overlap raises power, Section 4.3).
        self._overlap_activity = Activity(
            compute=self._gemm_eff, comm=0.5, memory=0.3
        )
        self._ar_duration_cache: dict[tuple[int, ...], float] = {}
        # Rank-mapping memos: the grid is tiny compared with the number
        # of emitted tasks, so (t, e, dpo, stage) -> rank lookups repeat
        # thousands of times per build.
        self._rank_cache: dict[tuple[int, int, int, int], int] = {}
        self._tp_ranks_cache: dict[tuple[int, int, int], tuple[int, ...]] = {}
        self._per_layer_fwd_flops = layer_flops(model, tokens).forward
        self._lm_head_flops = (
            2.0 * tokens * model.hidden_size * model.vocab_size
        )
        dense_shard, expert_shard = shard_params_split(
            model,
            tp=cfg.tp,
            pp=cfg.pp,
            ep=cfg.ep,
            fsdp=cfg.dp if cfg.use_fsdp else 1,
        )
        self._dense_shard = dense_shard
        self._expert_shard = expert_shard
        if opts.lora:
            self._dense_shard = lora_params(model, opts.lora_rank) / (
                cfg.tp * cfg.pp
            )
            self._expert_shard = 0.0
        self._trainable_params = self._dense_shard + self._expert_shard

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def build(self) -> TaskGraph:
        """Emit the full multi-iteration task graph."""
        cfg = self.cfg
        for iteration in range(self.iterations):
            for dpo in range(cfg.dp_outer):
                for e in range(cfg.ep):
                    for stage in range(cfg.pp):
                        self._emit_slice(iteration, dpo, e, stage)
        tokens_per_iteration = (
            self.shape.global_batch_size * self.model.seq_length
        )
        return TaskGraph(
            queues=self.queues,
            num_iterations=self.iterations,
            tokens_per_iteration=tokens_per_iteration,
        )

    # ------------------------------------------------------------------
    # Slice emission
    # ------------------------------------------------------------------

    def _slice_ranks(
        self, dpo: int, e: int, stage: int
    ) -> list[tuple[int, int]]:
        """(tp_idx, rank) pairs of one (replica, stage) slice."""
        return [
            (t, self._rank(t, e, dpo, stage)) for t in range(self.cfg.tp)
        ]

    def _emit_slice(
        self, iteration: int, dpo: int, e: int, stage: int
    ) -> None:
        nodes = self.schedule.rank_ops(stage)
        if self.inference:
            nodes = tuple(
                n for n in nodes if n.type is NodeType.FORWARD
            )
        # The node type that carries DP gradient buckets under CC
        # overlap: the weight-grad half where the schedule splits the
        # backward (weight grads are what DP reduces), else the full
        # backward.
        grad_type = (
            NodeType.WEIGHT if self.schedule.splits_weight_grad
            else NodeType.BACKWARD
        )
        total_grads = sum(1 for n in nodes if n.type is grad_type)
        grad_index = 0
        for node in nodes:
            if node.type is NodeType.FORWARD:
                self._emit_forward(
                    iteration, dpo, e, stage, node.microbatch, node.chunk,
                    node.seq_split,
                )
            elif node.type is NodeType.BACKWARD:
                carries_grad = grad_type is NodeType.BACKWARD
                self._emit_backward(
                    iteration,
                    dpo,
                    e,
                    stage,
                    node.microbatch,
                    node.chunk,
                    node.seq_split,
                    grad_index if carries_grad else -1,
                    total_grads,
                )
                if carries_grad:
                    grad_index += 1
            else:
                self._emit_weight_grad(
                    iteration, dpo, e, stage, node.microbatch, node.chunk,
                    node.seq_split, grad_index, total_grads,
                )
                grad_index += 1
        if not self.inference:
            self._emit_iteration_tail(iteration, dpo, e, stage)

    def _stage_forward_flops(self, stage: int, vs: int) -> float:
        """Per-TP-rank forward FLOPs of one virtual stage."""
        layers = self.stage_layers[stage] / self.num_chunks
        flops = layers * self._per_layer_fwd_flops
        if vs == self.num_chunks * self.cfg.pp - 1:
            flops += self._lm_head_flops
        return flops / self.cfg.tp

    # -- forward -------------------------------------------------------

    def _emit_forward(
        self,
        iteration: int,
        dpo: int,
        e: int,
        stage: int,
        mb: int,
        chunk: int,
        sq: int = 0,
    ) -> None:
        cfg = self.cfg
        vs = chunk * cfg.pp + stage
        total_vs = self.num_chunks * cfg.pp
        layers = self.stage_layers[stage] / self.num_chunks
        compute_spec = ComputeSpec(
            flops=self._stage_forward_flops(stage, vs),
            efficiency=self._gemm_eff,
            activity=self._compute_activity,
        )

        fuse_tp = self.opts.cc_overlap and cfg.tp > 1 and not self.inference
        tail_ops = None
        if fuse_tp:
            tp_ranks = self._tp_ranks(dpo, e, stage)
            hidden_s, tail_ops = self._tp_overlap_split(tp_ranks, layers)
            compute_spec = ComputeSpec(
                flops=compute_spec.flops,
                efficiency=compute_spec.efficiency,
                activity=self._overlap_activity,
                overlapped_comm_s=hidden_s,
            )

        for t, rank in self._slice_ranks(dpo, e, stage):
            if vs > 0:
                self._emit_recv(rank, iteration, "F", mb, vs, t, e, dpo,
                                stage, sq)
            if cfg.use_fsdp:
                self._emit_fsdp_allgather(
                    iteration, stage, mb, t, rank, phase="F", sq=sq
                )
            self._append_compute(
                rank, KernelKind.FWD_GEMM, compute_spec, iteration, mb,
                stage,
            )
            if self.model.moe and cfg.ep > 1:
                self._emit_alltoall(
                    iteration, dpo, stage, mb, chunk, "F", t, rank, layers,
                    sq,
                )
            if cfg.tp > 1:
                self._emit_tp_allreduce(
                    iteration, dpo, e, stage, mb, chunk, "F", rank, layers,
                    repeat=tail_ops, sq=sq,
                )
            if vs < total_vs - 1:
                self._emit_send(rank, iteration, "F", mb, vs, t, e, dpo,
                                stage, sq)

    # -- backward ------------------------------------------------------

    def _emit_backward(
        self,
        iteration: int,
        dpo: int,
        e: int,
        stage: int,
        mb: int,
        chunk: int,
        sq: int,
        backward_index: int,
        total_backwards: int,
    ) -> None:
        cfg = self.cfg
        vs = chunk * cfg.pp + stage
        total_vs = self.num_chunks * cfg.pp
        layers = self.stage_layers[stage] / self.num_chunks
        fwd_flops = self._stage_forward_flops(stage, vs)
        multiplier = (
            LORA_BACKWARD_MULTIPLIER if self.opts.lora
            else BACKWARD_MULTIPLIER
        )
        if self.schedule.splits_weight_grad:
            # Split backward: this node computes input grads only (the
            # cross-stage critical path); the weight-grad remainder is
            # a separate W node.
            multiplier = min(1.0, multiplier)
        bwd_spec = ComputeSpec(
            flops=multiplier * fwd_flops,
            efficiency=self._gemm_eff,
            activity=self._compute_activity,
        )

        # Does this backward carry an overlapped DP gradient bucket?
        # (Never when the schedule splits the backward: the weight-grad
        # W nodes carry the buckets then, signalled by index -1.)
        dp_bucket = -1
        if (
            backward_index >= 0
            and self.opts.cc_overlap
            and cfg.dp > 1
            and cfg.ep == 1
            and not cfg.use_fsdp
            and backward_index >= total_backwards - DP_OVERLAP_BUCKETS
        ):
            dp_bucket = backward_index - (total_backwards - DP_OVERLAP_BUCKETS)

        fuse_tp = (
            self.opts.cc_overlap and cfg.tp > 1 and not self.inference
        )
        tail_ops = None
        if fuse_tp:
            tp_ranks = self._tp_ranks(dpo, e, stage)
            hidden_s, tail_ops = self._tp_overlap_split(tp_ranks, layers)
            bwd_spec = ComputeSpec(
                flops=bwd_spec.flops,
                efficiency=bwd_spec.efficiency,
                activity=self._overlap_activity,
                overlapped_comm_s=hidden_s,
            )

        for t, rank in self._slice_ranks(dpo, e, stage):
            if vs < total_vs - 1:
                self._emit_recv(rank, iteration, "B", mb, vs, t, e, dpo,
                                stage, sq)
            if cfg.use_fsdp:
                self._emit_fsdp_allgather(
                    iteration, stage, mb, t, rank, phase="B", sq=sq
                )
            if self.opts.activation_recompute:
                self._append_compute(
                    rank,
                    KernelKind.RECOMPUTE_GEMM,
                    ComputeSpec(
                        flops=fwd_flops,
                        efficiency=self._gemm_eff,
                        activity=self._compute_activity,
                    ),
                    iteration,
                    mb,
                    stage,
                )
            if dp_bucket >= 0:
                # Backward compute hides a DP gradient bucket.
                self._emit_dp_bucket(
                    iteration, stage, t, rank, dp_bucket, bwd_spec
                )
            else:
                self._append_compute(
                    rank, KernelKind.BWD_GEMM, bwd_spec, iteration, mb, stage
                )
            if self.model.moe and cfg.ep > 1:
                self._emit_alltoall(
                    iteration, dpo, stage, mb, chunk, "B", t, rank, layers,
                    sq,
                )
            if cfg.tp > 1:
                self._emit_tp_allreduce(
                    iteration, dpo, e, stage, mb, chunk, "B", rank, layers,
                    repeat=tail_ops, sq=sq,
                )
            if vs > 0:
                self._emit_send(rank, iteration, "B", mb, vs, t, e, dpo,
                                stage, sq)

    # -- weight grad (zero-bubble split backward) ------------------------

    def _emit_weight_grad(
        self,
        iteration: int,
        dpo: int,
        e: int,
        stage: int,
        mb: int,
        chunk: int,
        sq: int,
        grad_index: int,
        total_grads: int,
    ) -> None:
        """The deferred weight-grad half of a split backward.

        Pure local compute: weight gradients have no cross-stage
        consumers (no recv/send) and no activation partial sums to
        reduce (no TP AllReduce) — which is exactly why zero-bubble
        schedules can slide this work into pipeline bubbles. Under CC
        overlap the W nodes carry the tail DP gradient buckets, since
        weight grads are what data parallelism synchronises.
        """
        cfg = self.cfg
        vs = chunk * cfg.pp + stage
        fwd_flops = self._stage_forward_flops(stage, vs)
        multiplier = (
            LORA_BACKWARD_MULTIPLIER if self.opts.lora
            else BACKWARD_MULTIPLIER
        )
        w_spec = ComputeSpec(
            flops=(multiplier - min(1.0, multiplier)) * fwd_flops,
            efficiency=self._gemm_eff,
            activity=self._compute_activity,
        )
        dp_bucket = -1
        if (
            self.opts.cc_overlap
            and cfg.dp > 1
            and cfg.ep == 1
            and not cfg.use_fsdp
            and grad_index >= total_grads - DP_OVERLAP_BUCKETS
        ):
            dp_bucket = grad_index - (total_grads - DP_OVERLAP_BUCKETS)
        for t, rank in self._slice_ranks(dpo, e, stage):
            if dp_bucket >= 0:
                self._emit_dp_bucket(
                    iteration, stage, t, rank, dp_bucket, w_spec,
                    kernel=KernelKind.WGRAD_GEMM,
                )
            else:
                self._append_compute(
                    rank, KernelKind.WGRAD_GEMM, w_spec, iteration, mb,
                    stage,
                )

    # -- iteration tail (gradient sync + optimizer) ---------------------

    def _dense_dp_ranks(self, t: int, stage: int) -> tuple[int, ...]:
        """Full DP group (dense/attention gradients): all (ep, dp_outer)."""
        cfg = self.cfg
        return tuple(
            rank_of(RankCoords(t, e, d, stage), cfg)
            for d in range(cfg.dp_outer)
            for e in range(cfg.ep)
        )

    def _expert_dp_ranks(self, t: int, e: int, stage: int) -> tuple[int, ...]:
        """Outer-DP group (expert gradients): fixed ep, varying dp_outer."""
        cfg = self.cfg
        return tuple(
            rank_of(RankCoords(t, e, d, stage), cfg)
            for d in range(cfg.dp_outer)
        )

    def _emit_iteration_tail(
        self, iteration: int, dpo: int, e: int, stage: int
    ) -> None:
        cfg = self.cfg
        zero1 = self._zero1()
        for t, rank in self._slice_ranks(dpo, e, stage):
            if cfg.use_fsdp:
                # Gradients accumulate locally across microbatches
                # (no_sync) and reduce-scatter once per iteration.
                self._emit_fsdp_reduce_scatter(iteration, stage, t, rank)
            if cfg.dp > 1 and not cfg.use_fsdp and not self.opts.cc_overlap:
                dense_bytes = self._dense_shard * self.model.bytes_per_param
                op = (
                    CollectiveOp.REDUCE_SCATTER if zero1
                    else CollectiveOp.ALLREDUCE
                )
                kind = (
                    KernelKind.GRAD_REDUCE_SCATTER if zero1
                    else KernelKind.DP_ALLREDUCE
                )
                self._append_shared_collective(
                    key=(iteration, "dp_sync", stage, t),
                    rank=rank,
                    op=op,
                    kernel=kind,
                    ranks=self._dense_dp_ranks(t, stage),
                    payload_bytes=dense_bytes,
                    iteration=iteration,
                    stage=stage,
                )
            if (
                self._expert_shard > 0
                and cfg.dp_outer > 1
                and not cfg.use_fsdp
            ):
                self._append_shared_collective(
                    key=(iteration, "dp_expert_sync", stage, t, e),
                    rank=rank,
                    op=CollectiveOp.ALLREDUCE,
                    kernel=KernelKind.DP_ALLREDUCE,
                    ranks=self._expert_dp_ranks(t, e, stage),
                    payload_bytes=self._expert_shard
                    * self.model.bytes_per_param,
                    iteration=iteration,
                    stage=stage,
                )
            self._append_compute(
                rank,
                KernelKind.OPTIMIZER_STEP,
                self._optimizer_spec(),
                iteration,
                -1,
                stage,
            )
            if cfg.dp > 1 and not cfg.use_fsdp and zero1:
                self._append_shared_collective(
                    key=(iteration, "dp_param_ag", stage, t),
                    rank=rank,
                    op=CollectiveOp.ALLGATHER,
                    kernel=KernelKind.PARAM_ALLGATHER,
                    ranks=self._dense_dp_ranks(t, stage),
                    payload_bytes=self._dense_shard
                    * self.model.bytes_per_param,
                    iteration=iteration,
                    stage=stage,
                )

    def _zero1(self) -> bool:
        """Whether the ZeRO-1 distributed optimizer applies.

        The paper enables it for all dense models; MoE models use the
        standard optimizer (NeMo/Megatron limitation), and FSDP shards
        optimizer state by construction.
        """
        return (
            self.opts.distributed_optimizer
            and not self.model.is_moe
            and not self.cfg.use_fsdp
        )

    def _optimizer_spec(self) -> ComputeSpec:
        zero_shard = self.cfg.dp if self._zero1() else 1
        touched = (
            self._trainable_params * OPTIMIZER_BYTES_TOUCHED / zero_shard
        )
        return ComputeSpec(
            flops=0.0,
            activity=OPTIMIZER_ACTIVITY,
            fixed_duration_s=max(20e-6, touched / self._hbm_bw),
        )

    # -- helpers: individual task kinds ----------------------------------

    def _append_compute(
        self,
        rank: int,
        kernel: KernelKind,
        spec: ComputeSpec,
        iteration: int,
        mb: int,
        stage: int,
    ) -> None:
        self.queues[rank].append(
            Task(
                uid=next(self._uid),
                kind=TaskKind.COMPUTE,
                kernel=kernel,
                ranks=(rank,),
                compute=spec,
                iteration=iteration,
                microbatch=mb,
                stage=stage,
            )
        )

    def _append_shared_collective(
        self,
        key: tuple,
        rank: int,
        op: CollectiveOp,
        kernel: KernelKind,
        ranks: tuple[int, ...],
        payload_bytes: float,
        iteration: int,
        stage: int,
        repeat: int = 1,
        mb: int = -1,
        overlap: ComputeSpec | None = None,
        overlap_kernel: KernelKind | None = None,
    ) -> None:
        task = self._shared.get(key)
        if task is None:
            task = Task(
                uid=next(self._uid),
                kind=TaskKind.COLLECTIVE,
                kernel=kernel,
                ranks=ranks,
                collective=CollectiveSpec(
                    op=op,
                    ranks=ranks,
                    payload_bytes=payload_bytes,
                    repeat=repeat,
                ),
                iteration=iteration,
                microbatch=mb,
                stage=stage,
                overlap_compute=overlap,
                overlap_kernel=overlap_kernel,
            )
            self._shared[key] = task
        self.queues[rank].append(task)

    def _rank(self, t: int, e: int, dpo: int, stage: int) -> int:
        """Memoised :func:`rank_of` for a grid position."""
        key = (t, e, dpo, stage)
        rank = self._rank_cache.get(key)
        if rank is None:
            rank = rank_of(RankCoords(t, e, dpo, stage), self.cfg)
            self._rank_cache[key] = rank
        return rank

    def _tp_ranks(self, dpo: int, e: int, stage: int) -> tuple[int, ...]:
        key = (dpo, e, stage)
        ranks = self._tp_ranks_cache.get(key)
        if ranks is None:
            ranks = tuple(
                self._rank(ti, e, dpo, stage) for ti in range(self.cfg.tp)
            )
            self._tp_ranks_cache[key] = ranks
        return ranks

    def _tp_payload(self) -> float:
        return (
            self._tokens * self.model.hidden_size * self.model.bytes_per_param
        )

    def _tp_ops_per_layer(self) -> int:
        # Dense layers: two AllReduces per layer (attention + MLP row-
        # parallel outputs). MoE layers under TP additionally gather and
        # scatter the token stream around the routed experts, doubling
        # the per-layer TP communication.
        return 4 if self.model.moe else 2

    def _tp_single_ar_seconds(self, tp_ranks: tuple[int, ...]) -> float:
        """Uncontended duration of one TP AllReduce (build-time estimate,
        used to size the comm hidden inside overlapped compute)."""
        gpus = tuple(self.mesh.gpus_of(list(tp_ranks)))
        cached = self._ar_duration_cache.get(gpus)
        if cached is None:
            cached = allreduce(
                self.mesh.cluster, list(gpus), self._tp_payload()
            ).duration_s
            self._ar_duration_cache[gpus] = cached
        return cached

    def _tp_overlap_split(
        self, tp_ranks: tuple[int, ...], layers: float
    ) -> tuple[float, int]:
        """(hidden comm seconds, exposed tail op count) for CC-overlap.

        All but the last layer's TP collectives hide behind the stage's
        compute (Megatron pipelines them layer by layer); the final
        layer's ops stay exposed and keep the TP group synchronised."""
        total_ops = max(1, round(self._tp_ops_per_layer() * layers))
        tail_ops = min(self._tp_ops_per_layer(), total_ops)
        hidden_ops = total_ops - tail_ops
        return hidden_ops * self._tp_single_ar_seconds(tp_ranks), tail_ops

    def _emit_tp_allreduce(
        self,
        iteration: int,
        dpo: int,
        e: int,
        stage: int,
        mb: int,
        chunk: int,
        phase: str,
        rank: int,
        layers: float,
        repeat: int | None = None,
        sq: int = 0,
    ) -> None:
        tp_ranks = self._tp_ranks(dpo, e, stage)
        if repeat is None:
            repeat = max(1, round(self._tp_ops_per_layer() * layers))
        self._append_shared_collective(
            key=(iteration, "tp_ar", dpo, e, stage, mb, chunk, phase, sq),
            rank=rank,
            op=CollectiveOp.ALLREDUCE,
            kernel=KernelKind.TP_ALLREDUCE,
            ranks=tp_ranks,
            payload_bytes=self._tp_payload(),
            iteration=iteration,
            stage=stage,
            repeat=repeat,
            mb=mb,
        )

    def _emit_alltoall(
        self,
        iteration: int,
        dpo: int,
        stage: int,
        mb: int,
        chunk: int,
        phase: str,
        t: int,
        rank: int,
        layers: float,
        sq: int = 0,
    ) -> None:
        cfg = self.cfg
        moe = self.model.moe
        ep_ranks = tuple(
            rank_of(RankCoords(t, ei, dpo, stage), cfg)
            for ei in range(cfg.ep)
        )
        payload = (
            self._tokens
            * moe.top_k
            * self.model.hidden_size
            * self.model.bytes_per_param
            * moe.capacity_factor
            / cfg.tp
        )
        self._append_shared_collective(
            key=(iteration, "a2a", dpo, stage, mb, chunk, phase, t, sq),
            rank=rank,
            op=CollectiveOp.ALLTOALL,
            kernel=KernelKind.EP_ALLTOALL,
            ranks=ep_ranks,
            payload_bytes=payload,
            iteration=iteration,
            stage=stage,
            repeat=max(1, round(2 * layers)),
            mb=mb,
        )

    def _emit_dp_bucket(
        self,
        iteration: int,
        stage: int,
        t: int,
        rank: int,
        bucket: int,
        bwd_spec: ComputeSpec,
        kernel: KernelKind = KernelKind.BWD_GEMM,
    ) -> None:
        zero1 = self._zero1()
        payload = (
            self._dense_shard
            * self.model.bytes_per_param
            / DP_OVERLAP_BUCKETS
        )
        self._append_shared_collective(
            key=(iteration, "dp_bucket", stage, t, bucket),
            rank=rank,
            op=(
                CollectiveOp.REDUCE_SCATTER if zero1
                else CollectiveOp.ALLREDUCE
            ),
            kernel=(
                KernelKind.GRAD_REDUCE_SCATTER if zero1
                else KernelKind.DP_ALLREDUCE
            ),
            ranks=self._dense_dp_ranks(t, stage),
            payload_bytes=payload,
            iteration=iteration,
            stage=stage,
            overlap=bwd_spec,
            overlap_kernel=kernel,
        )

    def _emit_fsdp_allgather(
        self,
        iteration: int,
        stage: int,
        mb: int,
        t: int,
        rank: int,
        phase: str,
        sq: int = 0,
    ) -> None:
        gathered_bytes = (
            (self._dense_shard + self._expert_shard)
            * self.cfg.dp
            * self.model.bytes_per_param
        )
        self._append_shared_collective(
            key=(iteration, "fsdp_ag", stage, mb, phase, t, sq),
            rank=rank,
            op=CollectiveOp.ALLGATHER,
            kernel=KernelKind.PARAM_ALLGATHER,
            ranks=self._dense_dp_ranks(t, stage),
            payload_bytes=gathered_bytes,
            iteration=iteration,
            stage=stage,
            mb=mb,
        )

    def _emit_fsdp_reduce_scatter(
        self, iteration: int, stage: int, t: int, rank: int
    ) -> None:
        full_grad_bytes = (
            (self._dense_shard + self._expert_shard)
            * self.cfg.dp
            * self.model.bytes_per_param
        )
        self._append_shared_collective(
            key=(iteration, "fsdp_rs", stage, t),
            rank=rank,
            op=CollectiveOp.REDUCE_SCATTER,
            kernel=KernelKind.GRAD_REDUCE_SCATTER,
            ranks=self._dense_dp_ranks(t, stage),
            payload_bytes=full_grad_bytes,
            iteration=iteration,
            stage=stage,
        )

    # -- helpers: P2P ----------------------------------------------------

    def _pp_payload(self) -> float:
        """Boundary activation/gradient bytes per TP rank.

        NeMo's scatter-gather optimisation splits the boundary tensor
        across TP ranks; the flip side is ``tp`` concurrent small flows.
        """
        return (
            self._tokens
            * self.model.hidden_size
            * self.model.bytes_per_param
            / self.cfg.tp
        )

    def _message_id(self, key: tuple) -> int:
        if key not in self._msg_ids:
            self._msg_ids[key] = next(self._msg_uid)
        return self._msg_ids[key]

    def _owner_rank(self, vs: int, t: int, e: int, dpo: int) -> int:
        """Rank hosting virtual stage ``vs`` for the given grid position."""
        return self._rank(t, e, dpo, vs % self.cfg.pp)

    def _emit_send(
        self,
        rank: int,
        iteration: int,
        phase: str,
        mb: int,
        vs: int,
        t: int,
        e: int,
        dpo: int,
        stage: int,
        sq: int = 0,
    ) -> None:
        direction = 1 if phase == "F" else -1
        dst = self._owner_rank(vs + direction, t, e, dpo)
        msg = self._message_id((iteration, phase, mb, vs, t, e, dpo, sq))
        self.queues[rank].append(
            Task(
                uid=next(self._uid),
                kind=TaskKind.SEND,
                kernel=KernelKind.PP_SEND,
                ranks=(rank,),
                p2p=P2PSpec(
                    src=rank,
                    dst=dst,
                    payload_bytes=self._pp_payload(),
                    chunked=self.cfg.tp == 1,
                    message_id=msg,
                ),
                iteration=iteration,
                microbatch=mb,
                stage=stage,
            )
        )

    def _emit_recv(
        self,
        rank: int,
        iteration: int,
        phase: str,
        mb: int,
        vs: int,
        t: int,
        e: int,
        dpo: int,
        stage: int,
        sq: int = 0,
    ) -> None:
        # The matching send was emitted by the neighbouring virtual stage:
        # forward messages originate at vs-1, backward messages at vs+1.
        src_vs = vs - 1 if phase == "F" else vs + 1
        src = self._owner_rank(src_vs, t, e, dpo)
        msg = self._message_id((iteration, phase, mb, src_vs, t, e, dpo, sq))
        self.queues[rank].append(
            Task(
                uid=next(self._uid),
                kind=TaskKind.RECV,
                kernel=KernelKind.PP_RECV,
                ranks=(rank,),
                p2p=P2PSpec(
                    src=src,
                    dst=rank,
                    payload_bytes=self._pp_payload(),
                    chunked=self.cfg.tp == 1,
                    message_id=msg,
                ),
                iteration=iteration,
                microbatch=mb,
                stage=stage,
            )
        )


def build_training_graph(
    model: ModelConfig,
    mesh: DeviceMesh,
    microbatch_size: int,
    global_batch_size: int,
    opts: OptimizationConfig,
    iterations: int = 2,
    stage_layers: list[int] | None = None,
    num_chunks: int = 2,
    num_seq_splits: int | None = None,
) -> TaskGraph:
    """Build the task graph of a training run (see module docstring)."""
    return GraphBuilder(
        model=model,
        mesh=mesh,
        microbatch_size=microbatch_size,
        global_batch_size=global_batch_size,
        opts=opts,
        iterations=iterations,
        stage_layers=stage_layers,
        num_chunks=num_chunks,
        num_seq_splits=num_seq_splits,
    ).build()


def build_inference_graph(
    model: ModelConfig,
    mesh: DeviceMesh,
    microbatch_size: int,
    global_batch_size: int,
    iterations: int = 2,
    num_seq_splits: int | None = None,
) -> TaskGraph:
    """Forward-only graph for the Section 7.2 inference characterization."""
    return GraphBuilder(
        model=model,
        mesh=mesh,
        microbatch_size=microbatch_size,
        global_batch_size=global_batch_size,
        opts=OptimizationConfig(distributed_optimizer=False),
        iterations=iterations,
        num_seq_splits=num_seq_splits,
        inference=True,
    ).build()
