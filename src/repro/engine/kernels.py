"""Kernel taxonomy and per-kernel hardware pressure model.

Kernel kinds map to the categories the paper's breakdowns use (Figures 3,
7, 8, 11, 15): Compute, AllReduce, SendRecv, AllToAll, AllGather /
ReduceScatter, Optimizer. Each kind also carries the scheduler-pressure
profile (occupancy, warps, threadblocks) behind the Figure 20 analysis:
NCCL-style communication kernels hold high occupancy with few warps, while
compute kernels issue many warps and threadblocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class KernelCategory(Enum):
    """Breakdown buckets used throughout the paper's figures."""

    COMPUTE = "Compute"
    ALLREDUCE = "AllReduce"
    SENDRECV = "SendRecv"
    ALLTOALL = "AllToAll"
    ALLGATHER_RS = "AllGather/ReduceScatter"
    OPTIMIZER = "Optimizer"
    IDLE = "Idle"


class KernelKind(Enum):
    """Concrete kernel types emitted by the task-graph builder."""

    FWD_GEMM = "fwd_gemm"
    BWD_GEMM = "bwd_gemm"
    WGRAD_GEMM = "wgrad_gemm"
    RECOMPUTE_GEMM = "recompute_gemm"
    EMBEDDING = "embedding"
    OPTIMIZER_STEP = "optimizer_step"
    TP_ALLREDUCE = "tp_allreduce"
    DP_ALLREDUCE = "dp_allreduce"
    GRAD_REDUCE_SCATTER = "grad_reduce_scatter"
    PARAM_ALLGATHER = "param_allgather"
    EP_ALLTOALL = "ep_alltoall"
    PP_SEND = "pp_send"
    PP_RECV = "pp_recv"


_CATEGORY: dict[KernelKind, KernelCategory] = {
    KernelKind.FWD_GEMM: KernelCategory.COMPUTE,
    KernelKind.BWD_GEMM: KernelCategory.COMPUTE,
    KernelKind.WGRAD_GEMM: KernelCategory.COMPUTE,
    KernelKind.RECOMPUTE_GEMM: KernelCategory.COMPUTE,
    KernelKind.EMBEDDING: KernelCategory.COMPUTE,
    KernelKind.OPTIMIZER_STEP: KernelCategory.OPTIMIZER,
    KernelKind.TP_ALLREDUCE: KernelCategory.ALLREDUCE,
    KernelKind.DP_ALLREDUCE: KernelCategory.ALLREDUCE,
    KernelKind.GRAD_REDUCE_SCATTER: KernelCategory.ALLGATHER_RS,
    KernelKind.PARAM_ALLGATHER: KernelCategory.ALLGATHER_RS,
    KernelKind.EP_ALLTOALL: KernelCategory.ALLTOALL,
    KernelKind.PP_SEND: KernelCategory.SENDRECV,
    KernelKind.PP_RECV: KernelCategory.SENDRECV,
}


def category_of(kind: KernelKind) -> KernelCategory:
    """Breakdown bucket of a kernel kind."""
    return _CATEGORY[kind]


@dataclass(frozen=True)
class PressureProfile:
    """Scheduler pressure a running kernel exerts (Figure 20 inputs).

    Attributes:
        occupancy: active warps normalised by scheduling limits, [0, 1].
        warps_per_sm: issued warps per SM (work volume indicator).
        threadblocks_per_sm: resident threadblocks per SM.
    """

    occupancy: float
    warps_per_sm: float
    threadblocks_per_sm: float


# Communication kernels (NCCL/RCCL persistent kernels) hold near-full
# occupancy with a handful of warps; dense compute kernels push many
# warps/threadblocks at moderate occupancy (register-bound).
_PRESSURE: dict[KernelCategory, PressureProfile] = {
    KernelCategory.COMPUTE: PressureProfile(
        occupancy=0.62, warps_per_sm=48.0, threadblocks_per_sm=14.0
    ),
    KernelCategory.ALLREDUCE: PressureProfile(
        occupancy=0.92, warps_per_sm=8.0, threadblocks_per_sm=2.0
    ),
    # P2P send/recv (and the wait time folded into it) barely loads the
    # schedulers: a couple of proxy warps.
    KernelCategory.SENDRECV: PressureProfile(
        occupancy=0.20, warps_per_sm=1.5, threadblocks_per_sm=0.5
    ),
    KernelCategory.ALLTOALL: PressureProfile(
        occupancy=0.90, warps_per_sm=6.0, threadblocks_per_sm=2.0
    ),
    KernelCategory.ALLGATHER_RS: PressureProfile(
        occupancy=0.90, warps_per_sm=6.0, threadblocks_per_sm=2.0
    ),
    KernelCategory.OPTIMIZER: PressureProfile(
        occupancy=0.55, warps_per_sm=24.0, threadblocks_per_sm=8.0
    ),
    KernelCategory.IDLE: PressureProfile(
        occupancy=0.0, warps_per_sm=0.0, threadblocks_per_sm=0.0
    ),
}


def pressure_of(kind: KernelKind) -> PressureProfile:
    """Scheduler-pressure profile for a kernel kind."""
    return _PRESSURE[category_of(kind)]


@dataclass(slots=True)
class KernelRecord:
    """One executed kernel on one GPU (Chakra-style trace entry).

    Attributes:
        gpu: physical GPU id.
        rank: logical rank that issued the kernel.
        kind: kernel type.
        start_s / end_s: execution interval in simulation time. For
            communication kernels the interval includes rendezvous wait,
            matching how NCCL kernel time is reported by profilers.
        iteration: training iteration index.
        microbatch: microbatch index, or -1 for per-iteration kernels.
        stage: pipeline stage, or -1 when not stage-bound.
    """

    gpu: int
    rank: int
    kind: KernelKind
    start_s: float
    end_s: float
    iteration: int
    microbatch: int = -1
    stage: int = -1

    @property
    def duration_s(self) -> float:
        """Kernel duration."""
        return self.end_s - self.start_s

    @property
    def category(self) -> KernelCategory:
        """Breakdown bucket."""
        return category_of(self.kind)


def compute_efficiency(
    tokens: float, half_point_tokens: int = 1024
) -> float:
    """GEMM efficiency as a function of effective GEMM granularity.

    Small microbatches leave tensor cores underfed; efficiency follows a
    saturating curve with half of asymptotic efficiency at
    ``half_point_tokens``. This is the "diminishing compute returns" side
    of the paper's microbatch analysis (Section 5).
    """
    if tokens <= 0:
        raise ValueError("tokens must be positive")
    return tokens / (tokens + half_point_tokens)


def stage_gemm_efficiency(
    model, tokens: int, tp: int, half_point_tokens: int
) -> float:
    """Blended GEMM efficiency of one stage's kernels.

    Two granularity effects shrink the effective GEMM size below the
    nominal microbatch token count:

    * tensor parallelism slices every weight matrix ``tp`` ways, cutting
      tile dimensions (modelled as a ``tp**(-1/3)`` token-equivalent
      shrink);
    * MoE expert MLPs each see only ``top_k / num_experts`` of the
      tokens, so their GEMMs are far smaller than a dense MLP's — the
      reason wide-TP MoE configurations lose so much compute efficiency
      (Section 4.2 / Figure 9).

    The stage efficiency blends attention and MLP efficiencies by their
    FLOP shares.
    """
    from repro.models.flops import layer_flops

    if tp < 1:
        raise ValueError("tp must be >= 1")
    tile = tp ** (-1.0 / 3.0)
    attention_eff = compute_efficiency(tokens * tile, half_point_tokens)
    if model.moe is not None:
        expert_tokens = tokens * model.moe.top_k / model.moe.num_experts
        mlp_eff = compute_efficiency(
            max(1.0, expert_tokens * tile), half_point_tokens
        )
    else:
        mlp_eff = attention_eff
    flops = layer_flops(model, tokens)
    attention_share = flops.attention / flops.forward
    return attention_share * attention_eff + (1 - attention_share) * mlp_eff
