"""Task graph: the unit of work the discrete-event simulator executes.

The builder (:mod:`repro.engine.builder`) lowers a training configuration
to one ordered task queue per logical rank. Within a queue, order is the
execution order (as in Megatron's static schedules); across queues,
synchronization happens only through communication tasks:

* :class:`TaskKind.SEND` / :class:`TaskKind.RECV` — eager buffered P2P.
  The sender never blocks on the receiver; the receiver blocks until the
  matching message is delivered. This mirrors NCCL's eager protocol and
  makes the schedule deadlock-free by construction.
* :class:`TaskKind.COLLECTIVE` — rendezvous: every participant must reach
  the task before it starts; all participants finish together. Waiting
  time is charged to the communication kernel, exactly how profilers
  attribute NCCL kernel time (and the source of the paper's cross-rank
  communication skew).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.engine.kernels import KernelKind
from repro.power.model import Activity


class TaskKind(Enum):
    """Execution semantics of a task."""

    COMPUTE = "compute"
    SEND = "send"
    RECV = "recv"
    COLLECTIVE = "collective"


class CollectiveOp(Enum):
    """Logical collective algorithms the cost models implement."""

    ALLREDUCE = "allreduce"
    ALLGATHER = "allgather"
    REDUCE_SCATTER = "reduce_scatter"
    ALLTOALL = "alltoall"


@dataclass(frozen=True, slots=True)
class ComputeSpec:
    """A compute kernel: duration is derived from FLOPs at run time.

    Attributes:
        flops: floating-point operations of the kernel.
        efficiency: fraction of the GPU's sustained throughput this kernel
            achieves (microbatch-size effects, kernel shape).
        activity: power-model activity while the kernel runs.
        min_duration_s: kernel launch floor.
        fixed_duration_s: when set, the kernel is memory-bound: this
            duration is used directly and does not scale with clock.
        overlapped_comm_s: communication time hidden inside this kernel
            (CC-overlap); the simulator stretches the kernel using the
            contended-fusion rule instead of emitting separate comm.
    """

    flops: float
    efficiency: float = 1.0
    activity: Activity = field(default_factory=lambda: Activity(compute=1.0))
    min_duration_s: float = 5e-6
    fixed_duration_s: float | None = None
    overlapped_comm_s: float = 0.0


@dataclass(frozen=True, slots=True)
class CollectiveSpec:
    """A rendezvous collective.

    Attributes:
        op: logical algorithm.
        ranks: participating logical ranks.
        payload_bytes: per-rank payload of a single operation.
        repeat: number of back-to-back operations fused into this task
            (e.g. the per-layer TP AllReduces of one pipeline stage).
    """

    op: CollectiveOp
    ranks: tuple[int, ...]
    payload_bytes: float
    repeat: int = 1


@dataclass(frozen=True, slots=True)
class P2PSpec:
    """One point-to-point message (pipeline-parallel boundary transfer).

    Attributes:
        src / dst: logical ranks.
        payload_bytes: message size.
        chunked: whether the transfer pipelines chunks across path hops
            (False models the paper's sparse unchunked TP+PP SendRecv).
        message_id: matches a SEND task with its RECV counterpart.
    """

    src: int
    dst: int
    payload_bytes: float
    chunked: bool
    message_id: int


@dataclass(slots=True)
class Task:
    """One node of the task graph.

    Attributes:
        uid: unique task id.
        kind: execution semantics.
        kernel: kernel type recorded in traces.
        ranks: logical ranks that execute this task (1 for compute/P2P).
        compute: compute payload (COMPUTE, or fused into a COLLECTIVE for
            compute-communication overlap).
        collective: collective payload (COLLECTIVE only).
        p2p: message payload (SEND/RECV only).
        iteration: training iteration this task belongs to.
        microbatch / stage: trace labels.
        overlap_compute: when set on a COLLECTIVE, the collective runs
            overlapped with this compute kernel (CC-overlap); the task
            occupies max(comm, compute) wall time with both slowed by
            resource contention.
        overlap_kernel: trace label for the fused compute kernel.
    """

    uid: int
    kind: TaskKind
    kernel: KernelKind
    ranks: tuple[int, ...]
    compute: ComputeSpec | None = None
    collective: CollectiveSpec | None = None
    p2p: P2PSpec | None = None
    iteration: int = 0
    microbatch: int = -1
    stage: int = -1
    overlap_compute: ComputeSpec | None = None
    overlap_kernel: KernelKind | None = None

    def __post_init__(self) -> None:
        kind = self.kind
        if kind is TaskKind.COMPUTE:
            if self.compute is None:
                raise ValueError("COMPUTE task needs a ComputeSpec")
        elif kind is TaskKind.COLLECTIVE:
            if self.collective is None:
                raise ValueError("COLLECTIVE task needs a CollectiveSpec")
        elif self.p2p is None:
            raise ValueError("P2P task needs a P2PSpec")
        if not self.ranks:
            raise ValueError("task must have at least one rank")


@dataclass
class TaskGraph:
    """Per-rank ordered task queues plus bookkeeping.

    Attributes:
        queues: ``queues[rank]`` is the ordered task list of that rank.
        num_iterations: iterations the graph covers.
        tokens_per_iteration: tokens processed per iteration (throughput
            denominator).
    """

    queues: list[list[Task]]
    num_iterations: int
    tokens_per_iteration: int

    def __post_init__(self) -> None:
        if not self.queues:
            raise ValueError("task graph needs at least one rank")
        self._validate_collective_consistency()

    @property
    def world_size(self) -> int:
        """Number of ranks."""
        return len(self.queues)

    @property
    def total_tasks(self) -> int:
        """Total task *instances* across queues (collectives counted once
        per participant)."""
        return sum(len(q) for q in self.queues)

    def _validate_collective_consistency(self) -> None:
        """Every collective task must appear in each participant's queue."""
        appearances: dict[int, set[int]] = {}
        tasks: dict[int, Task] = {}
        for rank, queue in enumerate(self.queues):
            for task in queue:
                if task.kind is TaskKind.COLLECTIVE:
                    appearances.setdefault(task.uid, set()).add(rank)
                    tasks[task.uid] = task
        for uid, ranks in appearances.items():
            expected = set(tasks[uid].collective.ranks)
            if ranks != expected:
                raise ValueError(
                    f"collective {uid} appears in queues {sorted(ranks)} "
                    f"but declares ranks {sorted(expected)}"
                )
