"""Legacy pipeline-schedule API, now a thin adapter over
:mod:`repro.schedules`.

Historically this module hardcoded the 1F1B / interleaved / GPipe
per-rank op lists; they now live as :class:`~repro.schedules.base.
PipeSchedule` subclasses behind a registry, and this module only
converts their :class:`~repro.schedules.graph.ScheduledNode` rows to
the original :class:`PipelineOp` form. The public surface is unchanged
(every function, message, and op order is pinned by
tests/test_engine_schedule.py), with one addition: zero-bubble
schedules split the backward, so :class:`Direction` gained ``WEIGHT``
and ``schedule_for`` accepts any registered flavor, not just
``"1f1b"``/``"gpipe"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.schedules import (
    NodeType,
    canonical_schedule_name,
    check_stage_args,
    create_schedule,
)


class Direction(Enum):
    """Forward, (input-grad) backward, or split-off weight-grad pass."""

    FORWARD = "F"
    BACKWARD = "B"
    WEIGHT = "W"


@dataclass(frozen=True)
class PipelineOp:
    """One schedule slot: run ``direction`` for ``microbatch`` on ``chunk``.

    ``chunk`` is the virtual-stage index for interleaved schedules and 0
    for plain 1F1B; ``seq_split`` the sequence chunk for seq-split
    schedules and 0 otherwise.
    """

    direction: Direction
    microbatch: int
    chunk: int = 0
    seq_split: int = 0


_DIRECTIONS = {
    NodeType.FORWARD: Direction.FORWARD,
    NodeType.BACKWARD: Direction.BACKWARD,
    NodeType.WEIGHT: Direction.WEIGHT,
}


def _from_nodes(nodes) -> list[PipelineOp]:
    return [
        PipelineOp(
            _DIRECTIONS[node.type], node.microbatch, node.chunk,
            node.seq_split,
        )
        for node in nodes
    ]


def one_f_one_b(
    stage: int, num_stages: int, num_microbatches: int
) -> list[PipelineOp]:
    """Per-rank op order for the standard (non-interleaved) 1F1B schedule.

    Stage ``s`` admits ``num_stages - s - 1`` warmup forwards, then
    alternates one-forward-one-backward, then drains remaining backwards.
    """
    _check_args(stage, num_stages, num_microbatches)
    schedule = create_schedule("1f1b", num_stages, num_microbatches)
    return _from_nodes(schedule.steps(stage))


def interleaved_1f1b(
    stage: int,
    num_stages: int,
    num_microbatches: int,
    num_chunks: int = 2,
) -> list[PipelineOp]:
    """Per-rank op order for Megatron's interleaved (virtual-stage) 1F1B.

    Each rank hosts ``num_chunks`` virtual stages; microbatches stream
    through virtual stage ``stage + c * num_stages`` for chunk ``c``.
    Requires ``num_microbatches`` to be a multiple of ``num_stages``
    (Megatron's constraint).
    """
    _check_args(stage, num_stages, num_microbatches)
    schedule = create_schedule(
        "interleaved", num_stages, num_microbatches, num_chunks=num_chunks
    )
    return _from_nodes(schedule.steps(stage))


def gpipe(
    stage: int, num_stages: int, num_microbatches: int
) -> list[PipelineOp]:
    """GPipe schedule: all forwards, then all backwards (reverse order)."""
    _check_args(stage, num_stages, num_microbatches)
    schedule = create_schedule("gpipe", num_stages, num_microbatches)
    return _from_nodes(schedule.steps(stage))


def schedule_for(
    stage: int,
    num_stages: int,
    num_microbatches: int,
    interleaved: bool = False,
    num_chunks: int = 2,
    flavor: str = "1f1b",
) -> list[PipelineOp]:
    """Dispatch to the requested schedule flavour.

    Args:
        flavor: any registered schedule name — ``"1f1b"`` (optionally
            interleaved), ``"gpipe"``, ``"zb-h1"``, ``"seq1f1b"``, ...
            Unknown names raise ``ValueError`` with a did-you-mean hint.
    """
    _check_args(stage, num_stages, num_microbatches)
    canonical = canonical_schedule_name(flavor)
    if canonical == "1f1b" and interleaved and num_stages > 1:
        return interleaved_1f1b(
            stage, num_stages, num_microbatches, num_chunks
        )
    if canonical == "interleaved":
        if num_stages <= 1:
            canonical = "1f1b"  # single stage: interleaving is a no-op
        else:
            return interleaved_1f1b(
                stage, num_stages, num_microbatches, num_chunks
            )
    schedule = create_schedule(canonical, num_stages, num_microbatches)
    return _from_nodes(schedule.steps(stage))


def validate_schedule(
    ops: list[PipelineOp], num_microbatches: int, num_chunks: int = 1
) -> None:
    """Sanity-check a per-rank schedule.

    Ensures every (microbatch, chunk) appears exactly once per direction
    and no backward precedes its own forward on the same rank. Weight
    ops (zero-bubble schedules) must follow their backward; full-graph
    structural checks live in ``ScheduleGraph.validate``.

    Raises:
        ValueError: on any violation.
    """
    seen_forward: set[tuple[int, int, int]] = set()
    seen_backward: set[tuple[int, int, int]] = set()
    seen_weight: set[tuple[int, int, int]] = set()
    for op in ops:
        key = (op.microbatch, op.chunk, op.seq_split)
        if op.direction is Direction.FORWARD:
            if key in seen_forward:
                raise ValueError(f"duplicate forward {key[:2]}")
            seen_forward.add(key)
        elif op.direction is Direction.BACKWARD:
            if key in seen_backward:
                raise ValueError(f"duplicate backward {key[:2]}")
            if key not in seen_forward:
                raise ValueError(f"backward before forward for {key[:2]}")
            seen_backward.add(key)
        else:
            if key in seen_weight:
                raise ValueError(f"duplicate weight grad {key[:2]}")
            if key not in seen_backward:
                raise ValueError(f"weight grad before backward for {key[:2]}")
            seen_weight.add(key)
    seq_splits = {op.seq_split for op in ops} or {0}
    expected = {
        (m, c, s)
        for m in range(num_microbatches)
        for c in range(num_chunks)
        for s in seq_splits
    }
    if seen_forward != expected or seen_backward != expected:
        raise ValueError("schedule does not cover every microbatch exactly once")
    if seen_weight and seen_weight != expected:
        raise ValueError("schedule does not cover every microbatch exactly once")


def pipeline_bubble_fraction(
    num_stages: int, num_microbatches: int, num_chunks: int = 1
) -> float:
    """Analytic bubble fraction of (interleaved) 1F1B.

    ``(p - 1) / (m * v)`` of the iteration is idle bubble in the ideal
    balanced case; used by tests and by the projection module.
    """
    if num_stages < 1 or num_microbatches < 1 or num_chunks < 1:
        raise ValueError("all arguments must be >= 1")
    return (num_stages - 1) / (num_microbatches * num_chunks + num_stages - 1)


#: Legacy spelling, re-exported for compatibility.
_check_args = check_stage_args
