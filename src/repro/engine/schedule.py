"""Pipeline-parallel schedules: 1F1B and Megatron's interleaved variant.

A schedule is, per pipeline rank, the ordered list of forward/backward
microbatch executions. Cross-rank timing is *not* prescribed here — the
simulator derives it from P2P message availability — but the per-rank
order determines pipeline bubbles, in-flight activation counts, and the
burstiness the paper links to power excursions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Direction(Enum):
    """Forward or backward pass of one microbatch through one stage."""

    FORWARD = "F"
    BACKWARD = "B"


@dataclass(frozen=True)
class PipelineOp:
    """One schedule slot: run ``direction`` for ``microbatch`` on ``chunk``.

    ``chunk`` is the virtual-stage index for interleaved schedules and 0
    for plain 1F1B.
    """

    direction: Direction
    microbatch: int
    chunk: int = 0


def one_f_one_b(
    stage: int, num_stages: int, num_microbatches: int
) -> list[PipelineOp]:
    """Per-rank op order for the standard (non-interleaved) 1F1B schedule.

    Stage ``s`` admits ``num_stages - s - 1`` warmup forwards, then
    alternates one-forward-one-backward, then drains remaining backwards.
    """
    _check_args(stage, num_stages, num_microbatches)
    warmup = min(num_stages - stage - 1, num_microbatches)
    steady = num_microbatches - warmup

    ops = [
        PipelineOp(Direction.FORWARD, m) for m in range(warmup)
    ]
    for i in range(steady):
        ops.append(PipelineOp(Direction.FORWARD, warmup + i))
        ops.append(PipelineOp(Direction.BACKWARD, i))
    for m in range(steady, num_microbatches):
        ops.append(PipelineOp(Direction.BACKWARD, m))
    return ops


def interleaved_1f1b(
    stage: int,
    num_stages: int,
    num_microbatches: int,
    num_chunks: int = 2,
) -> list[PipelineOp]:
    """Per-rank op order for Megatron's interleaved (virtual-stage) 1F1B.

    Each rank hosts ``num_chunks`` virtual stages; microbatches stream
    through virtual stage ``stage + c * num_stages`` for chunk ``c``.
    Requires ``num_microbatches`` to be a multiple of ``num_stages``
    (Megatron's constraint).
    """
    _check_args(stage, num_stages, num_microbatches)
    if num_chunks < 2:
        raise ValueError("interleaving needs at least 2 chunks")
    if num_microbatches % num_stages:
        raise ValueError(
            "interleaved schedule requires num_microbatches to be a "
            f"multiple of num_stages ({num_microbatches} % {num_stages})"
        )

    total = num_microbatches * num_chunks

    def slot(k: int) -> tuple[int, int]:
        """Virtual microbatch index -> (microbatch, chunk)."""
        group = k // (num_stages * num_chunks)
        within = k % (num_stages * num_chunks)
        chunk = within // num_stages
        microbatch = group * num_stages + within % num_stages
        return microbatch, chunk

    warmup = min(
        (num_stages - stage - 1) * 2 + (num_chunks - 1) * num_stages, total
    )
    ops: list[PipelineOp] = []
    for k in range(warmup):
        mb, chunk = slot(k)
        ops.append(PipelineOp(Direction.FORWARD, mb, chunk))
    steady = total - warmup
    for i in range(steady):
        mb, chunk = slot(warmup + i)
        ops.append(PipelineOp(Direction.FORWARD, mb, chunk))
        mb, chunk = _backward_slot(i, num_stages, num_chunks)
        ops.append(PipelineOp(Direction.BACKWARD, mb, chunk))
    for i in range(steady, total):
        mb, chunk = _backward_slot(i, num_stages, num_chunks)
        ops.append(PipelineOp(Direction.BACKWARD, mb, chunk))
    return ops


def _backward_slot(i: int, num_stages: int, num_chunks: int) -> tuple[int, int]:
    """Backward virtual microbatches drain chunks in reverse order."""
    group = i // (num_stages * num_chunks)
    within = i % (num_stages * num_chunks)
    chunk = num_chunks - 1 - within // num_stages
    microbatch = group * num_stages + within % num_stages
    return microbatch, chunk


def gpipe(
    stage: int, num_stages: int, num_microbatches: int
) -> list[PipelineOp]:
    """GPipe schedule: all forwards, then all backwards (reverse order).

    Simpler than 1F1B but stores activations for *every* microbatch at
    once and synchronises the whole pipeline between the forward and
    backward waves — the synchronized compute bursts raise aggregate
    peak power (the paper's burstiness mechanism, Section 5).
    """
    _check_args(stage, num_stages, num_microbatches)
    ops = [
        PipelineOp(Direction.FORWARD, m) for m in range(num_microbatches)
    ]
    ops.extend(
        PipelineOp(Direction.BACKWARD, m)
        for m in reversed(range(num_microbatches))
    )
    return ops


def schedule_for(
    stage: int,
    num_stages: int,
    num_microbatches: int,
    interleaved: bool = False,
    num_chunks: int = 2,
    flavor: str = "1f1b",
) -> list[PipelineOp]:
    """Dispatch to the requested schedule flavour.

    Args:
        flavor: ``"1f1b"`` (optionally interleaved) or ``"gpipe"``.
    """
    if flavor == "gpipe":
        return gpipe(stage, num_stages, num_microbatches)
    if flavor != "1f1b":
        raise ValueError(f"unknown schedule flavor {flavor!r}")
    if interleaved and num_stages > 1:
        return interleaved_1f1b(stage, num_stages, num_microbatches, num_chunks)
    return one_f_one_b(stage, num_stages, num_microbatches)


def validate_schedule(
    ops: list[PipelineOp], num_microbatches: int, num_chunks: int = 1
) -> None:
    """Sanity-check a per-rank schedule.

    Ensures every (microbatch, chunk) appears exactly once per direction
    and no backward precedes its own forward on the same rank.

    Raises:
        ValueError: on any violation.
    """
    seen_forward: set[tuple[int, int]] = set()
    seen_backward: set[tuple[int, int]] = set()
    for op in ops:
        key = (op.microbatch, op.chunk)
        if op.direction is Direction.FORWARD:
            if key in seen_forward:
                raise ValueError(f"duplicate forward {key}")
            seen_forward.add(key)
        else:
            if key in seen_backward:
                raise ValueError(f"duplicate backward {key}")
            if key not in seen_forward:
                raise ValueError(f"backward before forward for {key}")
            seen_backward.add(key)
    expected = {
        (m, c) for m in range(num_microbatches) for c in range(num_chunks)
    }
    if seen_forward != expected or seen_backward != expected:
        raise ValueError("schedule does not cover every microbatch exactly once")


def pipeline_bubble_fraction(
    num_stages: int, num_microbatches: int, num_chunks: int = 1
) -> float:
    """Analytic bubble fraction of (interleaved) 1F1B.

    ``(p - 1) / (m * v)`` of the iteration is idle bubble in the ideal
    balanced case; used by tests and by the projection module.
    """
    if num_stages < 1 or num_microbatches < 1 or num_chunks < 1:
        raise ValueError("all arguments must be >= 1")
    return (num_stages - 1) / (num_microbatches * num_chunks + num_stages - 1)


def _check_args(stage: int, num_stages: int, num_microbatches: int) -> None:
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    if not 0 <= stage < num_stages:
        raise ValueError(f"stage {stage} out of range [0, {num_stages})")
    if num_microbatches < 1:
        raise ValueError("num_microbatches must be >= 1")
