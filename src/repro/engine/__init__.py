"""Execution engine: task graphs, schedules, and the DES simulator."""

from repro.engine.builder import (
    BACKWARD_MULTIPLIER,
    DP_OVERLAP_BUCKETS,
    GraphBuilder,
    build_inference_graph,
    build_training_graph,
    split_layers,
)
from repro.engine.kernels import (
    KernelCategory,
    KernelKind,
    KernelRecord,
    PressureProfile,
    category_of,
    compute_efficiency,
    pressure_of,
)
from repro.engine.schedule import (
    Direction,
    PipelineOp,
    interleaved_1f1b,
    one_f_one_b,
    pipeline_bubble_fraction,
    schedule_for,
    validate_schedule,
)
from repro.engine.simulator import (
    DeadlockError,
    SimOutcome,
    SimSettings,
    Simulator,
    simulate,
)
from repro.engine.task import (
    CollectiveOp,
    CollectiveSpec,
    ComputeSpec,
    P2PSpec,
    Task,
    TaskGraph,
    TaskKind,
)

__all__ = [
    "BACKWARD_MULTIPLIER",
    "DP_OVERLAP_BUCKETS",
    "CollectiveOp",
    "CollectiveSpec",
    "ComputeSpec",
    "DeadlockError",
    "Direction",
    "GraphBuilder",
    "KernelCategory",
    "KernelKind",
    "KernelRecord",
    "P2PSpec",
    "PipelineOp",
    "PressureProfile",
    "SimOutcome",
    "SimSettings",
    "Simulator",
    "Task",
    "TaskGraph",
    "TaskKind",
    "build_inference_graph",
    "build_training_graph",
    "category_of",
    "compute_efficiency",
    "interleaved_1f1b",
    "one_f_one_b",
    "pipeline_bubble_fraction",
    "pressure_of",
    "schedule_for",
    "simulate",
    "split_layers",
    "validate_schedule",
]
