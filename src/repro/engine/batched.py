"""Batched grid evaluation: one anchor simulation, many vectorized replays.

Characterization sweeps (Figures 2, 4, 9-15, 23 and the powerctl /
inferserve setpoint searches) are grids of closely related configs: the
model, cluster, parallel strategy — and therefore the task graph, the
kernel-latency table, every memoised communication cost and the thermal
propagator — are shared, while only the frequency setpoint (or power
cap) varies. The per-config path still pays the full discrete-event walk
per point. This module evaluates such a grid in three phases:

1. **Anchor**: one real :class:`~repro.engine.simulator.Simulator` run
   (instrumented to log its event pop order) on the shared mesh/graph.
2. **Replay**: the remaining configs are advanced through the anchor's
   event *dependency* order simultaneously, with every event timestamp
   held as a ``(C,)`` numpy vector (one lane per config). Under a
   uniform static clock ceiling ``s`` the governed frequency is known in
   closed form — exactly ``1.0`` before the first physics step and
   exactly ``s`` from then on — so compute durations vectorize without
   stepping physics inside the event loop. Event times are computed with
   order-independent formulas (a collective starts at the elementwise
   max over its members' arrival vectors; a p2p receive completes at
   ``max(arrival, send_end) + EPS``), so lanes whose heap pop order
   differs from the anchor's still get exact times.
3. **Reconstruction + certification**: per config, the lane's true heap
   pop order is derived by sorting event times with the serial heap's
   tie-break (push order, itself recovered from the anchor's causal
   structure), then the real
   :class:`~repro.engine.physics.VectorPhysics` / ``PowerVector`` pair
   is driven over the replayed activity timeline on the shared
   step-boundary grid — bit-for-bit the serial arithmetic. Each lane is
   certified: every event must strictly follow the pop that pushed it,
   NIC-contention operations must keep their per-node order (shares are
   pure functions of per-node counters), each collective's last-arriving
   member and each p2p's rendezvous branch must match the anchor's, and
   the governed clock must equal the closed form after every physics
   step (violated exactly when thermal throttling or a power cap would
   have engaged). Any lane failing any check silently falls back to an
   ordinary per-config simulation, so batched results are
   *field-by-field identical* to the serial path — pinned by
   ``tests/test_batched.py``.

Grids that are not batchable (scalar physics backend, fault timelines,
closed-loop governors, non-uniform per-GPU ceilings) take the ordinary
cached per-config path through the same :func:`evaluate_grid` API; axes
that change the task graph (microbatch, batch size, model, cluster)
split the grid into one anchor+replay group per graph.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Callable, Iterable

import numpy as np

from repro.comm.contention import NicContention
from repro.comm.traffic import TrafficLedger
from repro.core.faults import HEALTHY
from repro.core.results import RunResult
from repro.core.store import persistence_enabled, result_store
from repro.engine.builder import build_inference_graph, build_training_graph
from repro.engine.kernels import KernelKind, KernelRecord
from repro.engine.physics import VectorPhysics
from repro.engine.simulator import EPS, SimOutcome, SimSettings, Simulator
from repro.engine.task import Task, TaskKind
from repro.optimizations.overlap import (
    OVERLAP_COMM_SLOWDOWN,
    OVERLAP_COMPUTE_SLOWDOWN,
)
from repro.parallelism.mapping import DeviceMesh
from repro.parallelism.strategy import OptimizationConfig
from repro.power.model import Activity, gpu_power
from repro.powerctl.config import NO_POWER_CONTROL, freq_for_power_limit
from repro.powerctl.governor import build_runtime
from repro.telemetry.monitor import TelemetryLog

__all__ = ["evaluate_grid", "SetpointSession", "LazyRecords"]


class _ReplayDiverged(Exception):
    """Replay left the anchor's footprint; fall back to per-config runs."""


# ----------------------------------------------------------------------
# Lazy kernel records
# ----------------------------------------------------------------------


class LazyRecords(list):
    """Kernel-record list materialised from columnar replay output.

    Replayed configs share one (gpu, rank, kind, iteration, microbatch,
    stage) column set; only start/end times differ per lane. Building
    tens of thousands of :class:`KernelRecord` objects per config would
    dominate the batched path, so construction is deferred until the
    records are actually read (trace analysis, breakdowns). Pickling
    reduces to a plain ``list``, so persisted cache entries round-trip
    identically to serial ones.
    """

    def __init__(self, builder: Callable[[], list]) -> None:
        super().__init__()
        self._builder = builder

    def _materialise(self) -> "LazyRecords":
        if self._builder is not None:
            builder, self._builder = self._builder, None
            self.extend(builder())
        return self

    def __len__(self) -> int:
        self._materialise()
        return list.__len__(self)

    def __iter__(self):
        self._materialise()
        return list.__iter__(self)

    def __getitem__(self, index):
        self._materialise()
        return list.__getitem__(self, index)

    def __contains__(self, item) -> bool:
        self._materialise()
        return list.__contains__(self, item)

    def __eq__(self, other):
        if isinstance(other, LazyRecords):
            other = other._materialise()
        self._materialise()
        return list.__eq__(self, other)

    def __ne__(self, other):
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None

    def __repr__(self) -> str:
        self._materialise()
        return list.__repr__(self)

    def __reduce__(self):
        return (list, (list(self._materialise()),))


# ----------------------------------------------------------------------
# Anchor: a real Simulator that logs its pop order
# ----------------------------------------------------------------------


class _RecordingSimulator(Simulator):
    """A :class:`Simulator` that records its event pop sequence.

    The wrapper only appends to a log before delegating to the original
    handler — no float operation is added or reordered, so the anchor's
    own outcome is exactly what a plain ``Simulator`` produces.
    """

    def __init__(self, mesh, graph, settings=None) -> None:
        super().__init__(mesh, graph, settings)
        self.pop_log: list[tuple[str, int]] = []
        log = self.pop_log

        def wrap(name, fn):
            if name == "collective":
                def handler(now, task):
                    log.append((name, task.uid))
                    fn(now, task)
            else:
                def handler(now, task, rank, *rest):
                    log.append((name, rank))
                    fn(now, task, rank, *rest)
            return handler

        self._handlers = {
            name: wrap(name, fn) for name, fn in self._handlers.items()
        }


# ----------------------------------------------------------------------
# Vectorized replay
# ----------------------------------------------------------------------


def _fused_vec(compute, comm_s: float):
    """Elementwise :func:`repro.optimizations.overlap.fused_duration`."""
    comm_slowed = comm_s * OVERLAP_COMM_SLOWDOWN
    contended = np.minimum(compute, comm_slowed)
    compute_slowed = compute + (OVERLAP_COMPUTE_SLOWDOWN - 1) * contended
    return np.maximum(compute_slowed, comm_slowed)


class _VectorReplay:
    """Re-executes the anchor's event DAG for ``C`` configs at once.

    Every event timestamp is a ``(C,)`` vector. The replay walks the
    anchor's pop sequence — a valid topological order of the dependency
    DAG — evaluating order-independent time formulas elementwise, walks
    its own scalar :class:`NicContention` (pure counters — shares are
    certified per lane before being trusted), and looks communication
    costs up in the anchor's memo. Activity/PCIe transitions, kernel
    records and traffic calls are logged columnar, each tagged with its
    enclosing pop (``pop1``: 0 = the pre-heap prelude, ``i + 1`` = the
    i-th anchor pop), for later per-lane reordering.
    """

    def __init__(self, anchor: _RecordingSimulator,
                 setpoints: Iterable[float]) -> None:
        self._a = anchor
        self._s = np.array(list(setpoints), dtype=float)
        self.C = len(self._s)
        self._dt = anchor.settings.physics_dt_s
        self._sustained = anchor._sustained
        self._gpu_of = anchor._gpu_of
        self._queues = anchor._queues
        self._world = anchor.world
        self._comm_cache = anchor._comm_cache
        self._group_cache = anchor._group_cache
        self._contention = NicContention(
            num_nodes=anchor.cluster.num_nodes
        )

        self._times: list[np.ndarray] = []
        self._opctr = itertools.count()
        self._cur_pop1 = 0  # 0 = prelude; anchor pop i runs as i + 1
        self._pos = [0] * self._world
        self._pending: list[tuple | None] = [None] * self._world
        self._pending_coll: dict[int, tuple] = {}
        self._delivery: dict[int, int] = {}
        self._send_pop1: dict[int, int] = {}
        self._waiting: dict[int, tuple[Task, int, int, int]] = {}
        self._collectives: dict[int, dict] = {}
        self._iter_end: dict[int, np.ndarray] = {}

        # Per anchor pop: popped event's time id, the pop during which
        # it was pushed (its heap tie-breaker lives there) and the push
        # counter within that pop.
        self.pop_tids: list[int] = []
        self.pop_trig1: list[int] = []
        self.pop_intra: list[int] = []
        # Activity transitions: (tid, gpu, d_compute, d_comm, d_memory).
        # Transition times equal the enclosing pop's time and are
        # causally ordered per GPU (exactly one rank per GPU), so no pop
        # tag is needed.
        self.act_tid: list[int] = []
        self.act_gpu: list[int] = []
        self.act_dc: list[float] = []
        self.act_dm: list[float] = []
        self.act_dmem: list[float] = []
        # PCIe rate transitions: ends clamp at zero (matching
        # ``Simulator._end_pcie_rates``), so this is an order-sensitive
        # fold, replayed per lane in the lane's true pop order.
        self.pcie_tid: list[int] = []
        self.pcie_gpu: list[int] = []
        self.pcie_rate: list = []
        self.pcie_end: list[bool] = []
        self.pcie_pop1: list[int] = []
        # Kernel records, columnar; start/end are time ids.
        self.rec_gpu: list[int] = []
        self.rec_rank: list[int] = []
        self.rec_kind: list[KernelKind] = []
        self.rec_iter: list[int] = []
        self.rec_mb: list[int] = []
        self.rec_stage: list[int] = []
        self.rec_start: list[int] = []
        self.rec_end: list[int] = []
        self.rec_pop1: list[int] = []
        # NIC-contention ops in anchor execution order (begin and end),
        # for the per-node order certificate.
        self.con_pop1: list[int] = []
        self.con_nodes: list[tuple[int, ...]] = []
        # Collective rendezvous bookkeeping: each member's arrival pop
        # plus the anchor's start pop (= its last arriver's pop).
        self.coll_member_pop1: list[int] = []
        self.coll_seg_len: list[int] = []
        self.coll_anchor_pop1: list[int] = []
        # P2P rendezvous branch bookkeeping: (send-start pop, recv
        # arrival pop) per matched pair.
        self.p2p_send_pop1: list[int] = []
        self.p2p_recv_pop1: list[int] = []
        # Traffic calls: folded per cost object (as the serial
        # ``_record_scaled_traffic`` does, keyed by id) but flushed per
        # lane in the lane's first-use order.
        self.traf_cost_id: list[int] = []
        self.traf_cost: list = []
        self.traf_repeat: list[int] = []
        self.traf_pop1: list[int] = []

    # -- low-level helpers ---------------------------------------------

    def _tid(self, vec) -> int:
        self._times.append(vec)
        return len(self._times) - 1

    def _log_act(self, tid: int, gpu: int, activity: Activity,
                 delta: float) -> None:
        self.act_tid.append(tid)
        self.act_gpu.append(gpu)
        self.act_dc.append(activity.compute * delta)
        self.act_dm.append(activity.comm * delta)
        self.act_dmem.append(activity.memory * delta)

    def _log_comm(self, tid: int, gpu: int, delta: float) -> None:
        self.act_tid.append(tid)
        self.act_gpu.append(gpu)
        self.act_dc.append(0.0)
        self.act_dm.append(delta)
        self.act_dmem.append(0.0)

    def _log_pcie(self, tid: int, gpu: int, rate, end: bool) -> None:
        self.pcie_tid.append(tid)
        self.pcie_gpu.append(gpu)
        self.pcie_rate.append(rate)
        self.pcie_end.append(end)
        self.pcie_pop1.append(self._cur_pop1)

    def _log_con(self, nodes: tuple[int, ...]) -> None:
        self.con_pop1.append(self._cur_pop1)
        self.con_nodes.append(nodes)

    def _log_traffic(self, cost, repeat: int) -> None:
        self.traf_cost_id.append(id(cost))
        self.traf_cost.append(cost)
        self.traf_repeat.append(repeat)
        self.traf_pop1.append(self._cur_pop1)

    def _rec(self, task: Task, gpu: int, rank: int, start_tid: int,
             end_tid: int, kind: KernelKind) -> None:
        self.rec_gpu.append(gpu)
        self.rec_rank.append(rank)
        self.rec_kind.append(kind)
        self.rec_iter.append(task.iteration)
        self.rec_mb.append(task.microbatch)
        self.rec_stage.append(task.stage)
        self.rec_start.append(start_tid)
        self.rec_end.append(end_tid)
        self.rec_pop1.append(self._cur_pop1)

    def _compute_duration(self, spec, now):
        # Mirrors Simulator._compute_duration under the closed-form
        # frequency: 1.0 before the first physics step (event time
        # < dt), the uniform setpoint after it. Certification rejects
        # lanes where throttling/capping would have bent the clock away.
        if spec.fixed_duration_s is not None:
            return max(spec.fixed_duration_s, spec.min_duration_s)
        freq = np.where(now >= self._dt, self._s, 1.0)
        duration = spec.flops / (self._sustained * spec.efficiency * freq)
        if spec.overlapped_comm_s > 0:
            duration = _fused_vec(duration, spec.overlapped_comm_s)
        return np.maximum(duration, spec.min_duration_s)

    # -- task starts ----------------------------------------------------

    def _try_start(self, rank: int, now_tid: int) -> None:
        queue = self._queues[rank]
        pos = self._pos[rank]
        if pos >= len(queue):
            return
        task = queue[pos]
        now = self._times[now_tid]
        if task.kind is TaskKind.COMPUTE:
            gpu = self._gpu_of[rank]
            duration = self._compute_duration(task.compute, now)
            self._log_act(now_tid, gpu, task.compute.activity, 1.0)
            self._pending[rank] = (
                "compute", self._tid(now + duration), self._cur_pop1,
                next(self._opctr), task, now_tid,
            )
        elif task.kind is TaskKind.SEND:
            self._start_send(task, rank, now_tid)
        elif task.kind is TaskKind.RECV:
            self._start_recv(task, rank, now_tid)
        else:
            self._arrive_collective(task, rank, now_tid)

    def _start_send(self, task: Task, rank: int, now_tid: int) -> None:
        spec = task.p2p
        src_gpu = self._gpu_of[spec.src]
        dst_gpu = self._gpu_of[spec.dst]
        nodes = self._a._nic_nodes_for((src_gpu, dst_gpu))
        if nodes:
            share = self._contention.begin(nodes)
            self._log_con(nodes)
        else:
            share = 1.0
        key = ("p2p", src_gpu, dst_gpu, spec.payload_bytes, spec.chunked,
               share)
        cost = self._comm_cache.get(key)
        if cost is None:
            raise _ReplayDiverged(f"p2p cost miss: {key}")
        duration = max(cost.duration_s, EPS)
        self._log_traffic(cost, 1)
        rates = []
        for gpu, pcie in self._a._pcie_entries(cost):
            rate = pcie * 1 / duration
            self._log_pcie(now_tid, gpu, rate, end=False)
            rates.append((gpu, rate))
        self._log_comm(now_tid, src_gpu, 1.0)
        now = self._times[now_tid]
        end = now + duration
        end_tid = self._tid(end)
        self._delivery[spec.message_id] = end_tid
        self._send_pop1[spec.message_id] = self._cur_pop1
        self._pending[rank] = (
            "send", end_tid, self._cur_pop1, next(self._opctr), task,
            now_tid, nodes, rates,
        )
        waiting = self._waiting.pop(spec.message_id, None)
        if waiting is not None:
            wtask, wrank, wstart_tid, wpop1 = waiting
            if self._pending[wrank] is not None:
                raise _ReplayDiverged("receiver already pending")
            # Order-independent completion: the serial waiting branch's
            # ``send_end + EPS`` equals ``max(arrival, send_end) + EPS``
            # because the arrival preceded the send start there; in a
            # lane where the rendezvous flips, the delivery branch
            # computes this same max. (The flip still moves the push —
            # the heap tie-breaker — so it is certified away.)
            done = np.maximum(self._times[wstart_tid], end) + EPS
            self._pending[wrank] = (
                "recv", self._tid(done), self._cur_pop1,
                next(self._opctr), wtask, wstart_tid,
            )
            self.p2p_send_pop1.append(self._cur_pop1)
            self.p2p_recv_pop1.append(wpop1)

    def _start_recv(self, task: Task, rank: int, now_tid: int) -> None:
        gpu = self._gpu_of[rank]
        msg = task.p2p.message_id
        self._log_comm(now_tid, gpu, 1.0)
        delivery_tid = self._delivery.get(msg)
        if delivery_tid is not None:
            now = self._times[now_tid]
            done = np.maximum(now, self._times[delivery_tid]) + EPS
            self._pending[rank] = (
                "recv", self._tid(done), self._cur_pop1,
                next(self._opctr), task, now_tid,
            )
            self.p2p_send_pop1.append(self._send_pop1[msg])
            self.p2p_recv_pop1.append(self._cur_pop1)
        else:
            self._waiting[msg] = (task, rank, now_tid, self._cur_pop1)

    def _arrive_collective(self, task: Task, rank: int,
                           now_tid: int) -> None:
        state = self._collectives.get(task.uid)
        if state is None:
            state = {"arrivals": {}, "arrival_pop1": {}}
            self._collectives[task.uid] = state
        state["arrivals"][rank] = now_tid
        state["arrival_pop1"][rank] = self._cur_pop1
        gpu = self._gpu_of[rank]
        self._log_comm(now_tid, gpu, 1.0)
        if len(state["arrivals"]) == len(task.collective.ranks):
            self._start_collective(task, state)

    def _start_collective(self, task: Task, state: dict) -> None:
        spec = task.collective
        group = self._group_cache.get(spec.ranks)
        if group is None:
            raise _ReplayDiverged(f"group miss: {spec.ranks}")
        gpus, nodes = group
        if nodes:
            share = self._contention.begin(nodes)
            self._log_con(nodes)
        else:
            share = 1.0
        key = (spec.op, spec.ranks, spec.payload_bytes, share)
        cost = self._comm_cache.get(key)
        if cost is None:
            raise _ReplayDiverged(f"collective cost miss: {key}")
        comm_duration = cost.duration_s * spec.repeat
        # Order-independent start: the serial collective starts at its
        # last arrival — the elementwise max over arrival vectors, since
        # the anchor's last arriver need not be the last in every lane.
        arrival_vecs = [
            self._times[state["arrivals"][m]] for m in spec.ranks
        ]
        now = (
            arrival_vecs[0] if len(arrival_vecs) == 1
            else np.maximum.reduce(arrival_vecs)
        )
        start_tid = self._tid(now)
        self._log_traffic(cost, spec.repeat)

        duration = comm_duration
        if task.overlap_compute is not None:
            # All member GPUs share the closed-form frequency, so the
            # serial per-GPU max() collapses to one vector.
            compute_d = self._compute_duration(task.overlap_compute, now)
            duration = _fused_vec(compute_d, comm_duration)
            for gpu in gpus:
                self._log_act(
                    start_tid, gpu, task.overlap_compute.activity, 1.0
                )
        duration = np.maximum(duration, EPS)

        rates = []
        for gpu, pcie in self._a._pcie_entries(cost):
            rate = pcie * spec.repeat / duration
            self._log_pcie(start_tid, gpu, rate, end=False)
            rates.append((gpu, rate))
        state["gs_tid"] = start_tid
        state["nodes"] = nodes
        state["pcie"] = rates
        state["comm_duration"] = comm_duration
        self._pending_coll[task.uid] = (
            self._tid(now + duration), self._cur_pop1,
            next(self._opctr), task, state,
        )
        self.coll_anchor_pop1.append(self._cur_pop1)
        self.coll_seg_len.append(len(spec.ranks))
        self.coll_member_pop1.extend(
            state["arrival_pop1"][m] for m in spec.ranks
        )

    # -- completions ----------------------------------------------------

    def _advance(self, task: Task, rank: int, now_tid: int) -> None:
        self._pos[rank] += 1
        now = self._times[now_tid]
        previous = self._iter_end.get(task.iteration)
        self._iter_end[task.iteration] = (
            now if previous is None else np.maximum(previous, now)
        )
        self._try_start(rank, now_tid)

    def run(self) -> None:
        zero_tid = self._tid(np.zeros(self.C))
        for rank in range(self._world):
            self._try_start(rank, zero_tid)
        pending = self._pending
        for index, (name, key) in enumerate(self._a.pop_log):
            self._cur_pop1 = index + 1
            if name == "collective":
                entry = self._pending_coll.pop(key, None)
                if entry is None:
                    raise _ReplayDiverged(f"collective {key} not pending")
                tid, trig1, intra, task, state = entry
                self.pop_tids.append(tid)
                self.pop_trig1.append(trig1)
                self.pop_intra.append(intra)
                self._finish_collective(task, state, tid)
            else:
                entry = pending[key]
                if entry is None or entry[0] != name:
                    raise _ReplayDiverged(f"rank {key}: expected {name}")
                pending[key] = None
                tid, trig1, intra, task = entry[1:5]
                self.pop_tids.append(tid)
                self.pop_trig1.append(trig1)
                self.pop_intra.append(intra)
                if name == "compute":
                    self._finish_compute(task, key, entry[5], tid)
                elif name == "send":
                    self._finish_send(task, key, entry[5], entry[6],
                                      entry[7], tid)
                else:
                    self._finish_recv(task, key, entry[5], tid)
        if any(entry is not None for entry in pending) or self._pending_coll:
            raise _ReplayDiverged("events left pending after anchor log")

    def _finish_compute(self, task, rank, start_tid, tid) -> None:
        gpu = self._gpu_of[rank]
        self._log_act(tid, gpu, task.compute.activity, -1.0)
        self._rec(task, gpu, rank, start_tid, tid, task.kernel)
        self._advance(task, rank, tid)

    def _finish_send(self, task, rank, start_tid, nodes, rates,
                     tid) -> None:
        gpu = self._gpu_of[rank]
        self._log_comm(tid, gpu, -1.0)
        for pcie_gpu, rate in rates:
            self._log_pcie(tid, pcie_gpu, rate, end=True)
        if nodes:
            self._contention.end(nodes)
            self._log_con(nodes)
        self._rec(task, gpu, rank, start_tid, tid, task.kernel)
        self._advance(task, rank, tid)

    def _finish_recv(self, task, rank, wait_start_tid, tid) -> None:
        gpu = self._gpu_of[rank]
        self._log_comm(tid, gpu, -1.0)
        self._rec(task, gpu, rank, wait_start_tid, tid, task.kernel)
        self._advance(task, rank, tid)

    def _finish_collective(self, task, state, tid) -> None:
        if state["nodes"]:
            self._contention.end(state["nodes"])
            self._log_con(state["nodes"])
        for pcie_gpu, rate in state["pcie"]:
            self._log_pcie(tid, pcie_gpu, rate, end=True)
        now = self._times[tid]
        comm_end_tid = None
        for member in task.collective.ranks:
            gpu = self._gpu_of[member]
            self._log_comm(tid, gpu, -1.0)
            if task.overlap_compute is None:
                self._rec(task, gpu, member, state["arrivals"][member],
                          tid, task.kernel)
            else:
                if comm_end_tid is None:
                    comm_end = np.minimum(
                        now,
                        self._times[state["gs_tid"]]
                        + state["comm_duration"] * OVERLAP_COMM_SLOWDOWN,
                    )
                    comm_end_tid = self._tid(comm_end)
                self._rec(task, gpu, member, state["gs_tid"],
                          comm_end_tid, task.kernel)
                self._log_act(tid, gpu, task.overlap_compute.activity, -1.0)
                self._rec(task, gpu, member, state["gs_tid"], tid,
                          task.overlap_kernel or KernelKind.FWD_GEMM)
        for member in task.collective.ranks:
            self._advance(task, member, tid)

    # -- certification + reconstruction ---------------------------------

    def finalize(self) -> "_ReplayOutput":
        return _ReplayOutput(self)


class _ReplayOutput:
    """Shared (config-invariant) arrays + per-config reconstruction.

    Everything order-sensitive in a serial run — the heap pop order,
    per-node NIC-contention counter walks, per-GPU activity folds, the
    clamped PCIe-rate fold, kernel-record append order and traffic
    first-use order — is reconstructed per lane from the lane's *true*
    pop order, derived by sorting event times with the serial heap's
    exact tie-break: push order, i.e. (position of the pushing pop,
    push counter within it). Certificates reject any lane whose
    divergence this reconstruction cannot represent.
    """

    def __init__(self, replay: _VectorReplay) -> None:
        r = self._r = replay
        self._anchor = replay._a
        self.times = np.stack(replay._times) if replay._times else (
            np.zeros((0, replay.C))
        )
        self._P = P = len(r.pop_tids)
        pop_tids = np.asarray(r.pop_tids, dtype=np.int64)
        self._pop_times = (
            self.times[pop_tids] if P else np.zeros((0, replay.C))
        )
        self._trig1 = np.asarray(r.pop_trig1, dtype=np.int64)
        self._intra = np.asarray(r.pop_intra, dtype=np.int64)
        num_gpus = self._num_gpus = self._anchor.cluster.total_gpus

        # Certificate: every event strictly after the pop that pushed it
        # (makes the tie-break recursion on the lane's pop order
        # well-founded). Prelude pushes (trig1 == 0) precede t=0 pops
        # trivially.
        mask = self._trig1 > 0
        if P and mask.any():
            self.strict_ok = np.all(
                self._pop_times[mask] > self._pop_times[self._trig1[mask] - 1],
                axis=0,
            )
        else:
            self.strict_ok = np.ones(replay.C, dtype=bool)

        # Activity transitions, bucketed per GPU. Exactly one rank per
        # GPU means each GPU's transitions are its own rank's causal
        # chain: their times are nondecreasing in every lane and their
        # values lane-invariant, so the serial per-GPU running sums are
        # these per-GPU prefix arrays, sampled per lane by searchsorted.
        act_gpu = np.asarray(r.act_gpu, dtype=np.int64)
        self._act_tids = np.asarray(r.act_tid, dtype=np.int64)
        order = np.argsort(act_gpu, kind="stable")
        self._act_order = order
        self._act_seg = np.searchsorted(
            act_gpu[order], np.arange(num_gpus + 1)
        )

        def prefixes(values: list[float]) -> list[np.ndarray]:
            flat = np.asarray(values, dtype=float)[order]
            out = []
            for g in range(num_gpus):
                seg = flat[self._act_seg[g]:self._act_seg[g + 1]]
                out.append(np.concatenate(([0.0], np.cumsum(seg))))
            return out

        self._prefix_c = prefixes(r.act_dc)
        self._prefix_m = prefixes(r.act_dm)
        self._prefix_mem = prefixes(r.act_dmem)

        # PCIe ops bucketed per GPU (order within a bucket is the anchor
        # execution order; per lane they are re-sorted by true pop
        # position before folding).
        pcie_gpu = np.asarray(r.pcie_gpu, dtype=np.int64)
        self._pcie_tids = np.asarray(r.pcie_tid, dtype=np.int64)
        self._pcie_pop1 = np.asarray(r.pcie_pop1, dtype=np.int64)
        porder = np.argsort(pcie_gpu, kind="stable")
        self._pcie_order = porder
        self._pcie_seg = np.searchsorted(
            pcie_gpu[porder], np.arange(num_gpus + 1)
        )
        # Signed rates for the unclamped cumsum fast path: scalar rates
        # baked in, lane-dependent (vector) rates patched in per lane.
        n_pcie = len(r.pcie_rate)
        pcie_sgn = np.where(
            np.asarray(r.pcie_end, dtype=bool), -1.0, 1.0
        )
        signed_base = np.zeros(n_pcie)
        dep_idx: list[int] = []
        dep_rows: list[np.ndarray] = []
        for i, rate in enumerate(r.pcie_rate):
            if isinstance(rate, np.ndarray):
                dep_idx.append(i)
                dep_rows.append(rate)
            else:
                signed_base[i] = pcie_sgn[i] * rate
        self._pcie_signed_base = signed_base
        self._pcie_dep_idx = np.asarray(dep_idx, dtype=np.int64)
        self._pcie_dep = (
            np.stack(dep_rows) if dep_rows
            else np.zeros((0, replay.C))
        )
        self._pcie_dep_sgn = pcie_sgn[self._pcie_dep_idx]
        self._pcie_gpu_of = pcie_gpu

        # Contention ops per node, in anchor execution order.
        node_ops: dict[int, list[int]] = {}
        for k, nodes in enumerate(r.con_nodes):
            for node in nodes:
                node_ops.setdefault(node, []).append(r.con_pop1[k])
        self._node_ops = [
            np.asarray(ops, dtype=np.int64) for ops in node_ops.values()
        ]

        # Collective last-arriver / p2p branch certificates.
        self._coll_members = np.asarray(
            r.coll_member_pop1, dtype=np.int64
        )
        self._coll_anchor = (
            np.repeat(
                np.asarray(r.coll_anchor_pop1, dtype=np.int64),
                np.asarray(r.coll_seg_len, dtype=np.int64),
            )
            if r.coll_anchor_pop1 else np.zeros(0, dtype=np.int64)
        )
        self._p2p_send = np.asarray(r.p2p_send_pop1, dtype=np.int64)
        self._p2p_recv = np.asarray(r.p2p_recv_pop1, dtype=np.int64)
        self._p2p_sign = np.sign(self._p2p_send - self._p2p_recv)

        self._rec_start = np.asarray(r.rec_start, dtype=np.int64)
        self._rec_end = np.asarray(r.rec_end, dtype=np.int64)
        self._rec_pop1 = np.asarray(r.rec_pop1, dtype=np.int64)

        # Traffic calls folded per cost object (serial semantics); the
        # per-lane flush order is each cost's first use in lane order.
        group_of: dict[int, int] = {}
        self._traf_costs: list = []
        self._traf_repeats: list[int] = []
        traf_group = []
        for cost_id, cost, repeat in zip(
            r.traf_cost_id, r.traf_cost, r.traf_repeat
        ):
            g = group_of.get(cost_id)
            if g is None:
                g = group_of[cost_id] = len(self._traf_costs)
                self._traf_costs.append(cost)
                self._traf_repeats.append(0)
            self._traf_repeats[g] += repeat
            traf_group.append(g)
        self._traf_group = np.asarray(traf_group, dtype=np.int64)
        self._traf_pop1 = np.asarray(r.traf_pop1, dtype=np.int64)

        # Shared physics boundary grid (sequential float accumulation,
        # exactly the serial ``_phys_time += dt`` chain) and the sample
        # schedule along it.
        dt = replay._dt
        self.makespans = (
            self._pop_times.max(axis=0) if P else np.zeros(replay.C)
        )
        boundaries = [0.0]
        max_makespan = float(self.makespans.max()) if replay.C else 0.0
        while max_makespan - boundaries[-1] >= dt:
            boundaries.append(boundaries[-1] + dt)
        self._boundaries = np.asarray(boundaries)
        interval = self._anchor.settings.telemetry_interval_s
        self._sample_flags: list[bool] = []
        self._next_samples: list[float] = []
        next_sample = 0.0
        for j in range(1, len(boundaries)):
            fired = boundaries[j] >= next_sample
            if fired:
                next_sample += interval
            self._sample_flags.append(fired)
            self._next_samples.append(next_sample)
        self._prep: dict | None = None

    # -- lane pop order --------------------------------------------------

    def _lane_order(self, lane: int) -> np.ndarray | None:
        """Positions of anchor pops in this lane's true heap pop order.

        The serial heap pops by (time, push seq); push seq order is
        (position of the pushing pop, push counter within it). Sorting
        by lane time and resolving ties with that key — well-founded
        because every pusher strictly precedes its pushee (certified) —
        reproduces the serial order exactly.
        """
        P = self._P
        lane_times = self._pop_times[:, lane]
        srt = np.argsort(lane_times, kind="stable")
        pos = np.empty(P, dtype=np.int64)
        pos[srt] = np.arange(P)
        if P <= 1:
            return pos
        # Fixpoint of (time, pusher position, intra) lexsort. Pushing
        # pops are strictly earlier in time (certified), so after
        # iteration k every tie group whose pusher chains thread at most
        # k earlier tie groups is final; untied positions are final from
        # the time-major sort alone. Convergence is detected by pos
        # stability; the recursion depth bound is a safety net.
        trig1 = self._trig1
        intra = self._intra
        has = trig1 > 0
        safe = np.where(has, trig1 - 1, 0)
        arange = np.arange(P)
        for _ in range(64):
            key = np.where(has, pos[safe], -1)
            order = np.lexsort((intra, key, lane_times))
            new_pos = np.empty(P, dtype=np.int64)
            new_pos[order] = arange
            if np.array_equal(new_pos, pos):
                return pos
            pos = new_pos
        return self._lane_order_slow(lane_times, pos)

    def _lane_order_slow(self, lane_times: np.ndarray,
                         pos: np.ndarray) -> np.ndarray:
        """Exact recursive tie-break (reference path, rarely taken)."""
        P = self._P
        srt = np.empty(P, dtype=np.int64)
        srt[pos] = np.arange(P)
        st = lane_times[srt]
        starts = np.flatnonzero(
            np.concatenate(([True], st[1:] != st[:-1]))
        )
        ends = np.append(starts[1:], P)
        multi = np.flatnonzero(ends - starts > 1)
        trig1 = self._trig1
        intra = self._intra
        for run in multi:
            a, b = int(starts[run]), int(ends[run])
            members = srt[a:b].tolist()
            # Pushing pops are strictly earlier in time, so their
            # positions are already final when their run is reached.
            members.sort(
                key=lambda m: (
                    pos[trig1[m] - 1] if trig1[m] > 0 else -1,
                    intra[m],
                )
            )
            srt[a:b] = members
            pos[members] = np.arange(a, b)
        return pos

    # -- lane-batched physics -------------------------------------------

    def prepare(self, settings_list: list[SimSettings]) -> None:
        """One lane-batched physics pass shared by every reconstruct.

        The thermal propagator, node power cap and governor chain are
        elementwise numpy (plus a per-slice matmul, which evaluates each
        lane's rows through the identical dgemm), so prepending a lane
        axis advances the whole grid together while every lane's floats
        stay bit-identical to a serial :class:`VectorPhysics` walk. The
        serial governor's lazy-stats settle timing (fold on full-path
        steps only, skip while the hold is empty) is replicated per
        lane, so throttle/mean-frequency integrals also match bitwise.
        Lanes where the governed clock leaves the effective ceiling —
        a power cap or thermal throttle engaging, which the closed-form
        event times cannot represent — are flagged; reconstruct rejects
        them and the caller falls back to a plain per-config run.
        """
        r = self._r
        C = r.C
        cluster = self._anchor.cluster
        gpu = cluster.node.gpu
        G = self._num_gpus
        settings0 = settings_list[0] if settings_list else SimSettings()
        dt = settings0.physics_dt_s
        template = VectorPhysics(cluster, settings0.faults)
        n, g = template._n, template._g
        preheat_t = template._preheat_matrix.T
        inlet_base = template._inlet_base
        r_total = template._r_total
        r_sink = template._r_sink_air
        budget = template._budget
        ceiling = template._ceiling
        floor = template._floor
        t_throttle = template._throttle_temp
        pv_idle = gpu.idle_watts
        pv_span = gpu.tdp_watts - gpu.idle_watts

        ok = np.ones(C, dtype=bool)

        # Per-lane effective ceilings/floors (uniform static setpoints).
        runtimes = [
            build_runtime(s.power_control, cluster) for s in settings_list
        ]
        effc = np.empty((C, n, g))
        efff = np.empty((C, n, g))
        for lane, runtime in enumerate(runtimes):
            initial = (
                runtime.initial_setpoints() if runtime is not None else None
            )
            if initial is not None:
                sp = np.asarray(initial, dtype=float).reshape(n, g)
                effc[lane] = np.minimum(ceiling, sp)
            else:
                effc[lane] = np.broadcast_to(ceiling, (n, g))
            efff[lane] = np.minimum(floor, effc[lane])

        # Initial temperatures (prewarm steady state per lane).
        die = np.empty((C, n, g))
        sink = np.empty((C, n, g))
        if settings0.thermal_prewarm:
            busy = Activity(compute=settings0.prewarm_busy_fraction)
            for lane, runtime in enumerate(runtimes):
                freq0 = 1.0
                if runtime is not None:
                    freq0 = float(np.mean(runtime.setpoints))
                watts = gpu_power(gpu, busy, freq0)
                powers2 = np.full((n, g), watts)
                inlets = inlet_base + powers2 @ preheat_t
                die[lane] = inlets + powers2 * r_total
                sink[lane] = inlets + powers2 * r_sink
        else:
            idle = np.broadcast_to(inlet_base, (n, g))
            die[:] = idle
            sink[:] = idle

        boundaries = self._boundaries
        steps_arr = (
            np.sum(
                self.makespans[:, None] - boundaries[None, :-1] >= dt,
                axis=1,
            ).astype(np.int64)
            if len(boundaries) > 1 else np.zeros(C, dtype=np.int64)
        )
        S = int(steps_arr.max()) if C else 0

        # Per-lane activity timelines, all lanes at once: ordered per
        # GPU (self._act_order), monotonicity-checked (searchsorted
        # silently misreads unsorted input), then sampled at the step
        # boundaries through one offset-packed searchsorted per lane.
        N = len(self._act_tids)
        comp = np.zeros((C, S, G))
        comm = np.zeros((C, S, G))
        mem = np.zeros((C, S, G))
        seg = self._act_seg
        if N:
            A = self.times[self._act_tids][self._act_order]  # (N, C)
            if N > 1:
                diffs = np.diff(A, axis=0)
                inner = seg[1:-1]
                boundary_mask = np.zeros(N - 1, dtype=bool)
                boundary_mask[
                    inner[(inner > 0) & (inner <= N - 1)] - 1
                ] = True
                ok &= ~np.any(diffs[~boundary_mask] < 0, axis=0)
            if S:
                span = float(self._boundaries[-1]) + 1.0
                gpu_of_op = np.repeat(
                    np.arange(G), np.diff(seg)
                ).astype(float)
                base = A + gpu_of_op[:, None] * span
                queries = (
                    boundaries[1:S + 1][None, :]
                    + np.arange(G)[:, None] * span
                ).ravel()
                row_g = np.repeat(np.arange(G), S)
                big_c = np.concatenate(self._prefix_c)
                big_m = np.concatenate(self._prefix_m)
                big_mem = np.concatenate(self._prefix_mem)
                # Concatenated prefixes carry one extra leading zero per
                # GPU, so the global prefix index is cut + gpu.
                for lane in range(C):
                    if not ok[lane]:
                        continue
                    cuts = np.searchsorted(
                        base[:, lane], queries, side="left"
                    )
                    idx = cuts + row_g
                    comp[lane] = big_c[idx].reshape(G, S).T
                    comm[lane] = big_m[idx].reshape(G, S).T
                    mem[lane] = big_mem[idx].reshape(G, S).T
        final_c = np.asarray([p[-1] for p in self._prefix_c])
        final_m = np.asarray([p[-1] for p in self._prefix_m])
        final_mem = np.asarray([p[-1] for p in self._prefix_mem])

        sample_j = np.flatnonzero(
            np.asarray(self._sample_flags[:S], dtype=bool)
        )
        sample_times = boundaries[sample_j + 1] if S else np.zeros(0)
        SP = len(sample_j)
        stash_pow = np.empty((C, SP, G))
        stash_die = np.empty((C, SP, G))
        stash_freq = np.empty((C, SP, G))
        # Sampled steps strictly below a lane's step count belong to it.
        cnt = (
            np.searchsorted(sample_j, steps_arr, side="left")
            if SP else np.zeros(C, dtype=np.int64)
        )

        freq = np.ones((C, n, g))
        freq_seen = np.ones((C, G))
        freq_pow = np.ones((C, G))
        at_ceiling = np.zeros(C, dtype=bool)
        hold = np.zeros(C)
        integral = np.zeros((C, n, g))
        thr_time = np.zeros((C, n, g))
        thr_mask = np.zeros((C, n, g))

        def clamp01(values):
            return np.minimum(np.maximum(values, 0.0), 1.0)

        from repro.engine.physics import (
            COMM_INTENSITY,
            COMPUTE_INTENSITY,
            FREQ_POWER_EXP,
            HYSTERESIS_C,
            MEMORY_INTENSITY,
            RECOVERY_STEP,
            THROTTLE_GAIN_PER_C,
        )

        si = 0
        for j in range(S):
            intensity = clamp01(
                COMPUTE_INTENSITY * clamp01(comp[:, j])
                + COMM_INTENSITY * clamp01(comm[:, j])
                + MEMORY_INTENSITY * clamp01(mem[:, j])
            )
            flat = freq.reshape(C, G)
            changed = flat != freq_seen
            if changed.any():
                freq_pow[changed] = flat[changed] ** FREQ_POWER_EXP
                freq_seen = flat.copy()
            powers = pv_idle + pv_span * intensity * freq_pow
            p3 = powers.reshape(C, n, g)
            inlets = inlet_base + p3 @ preheat_t
            die_eq = inlets + p3 * r_total
            sink_eq = inlets + p3 * r_sink
            total = p3.sum(axis=2)
            over = total > budget
            cap = np.where(
                over, budget / np.maximum(total, 1e-12), 1.0
            )[:, :, None]
            capped = over.any(axis=1)
            p00, p01, p10, p11 = template._propagator(dt)
            die_dev = die - die_eq
            sink_dev = sink - sink_eq
            die = die_eq + p00 * die_dev + p01 * sink_dev
            sink = sink_eq + p10 * die_dev + p11 * sink_dev
            hot = (die > t_throttle).any(axis=(1, 2))
            active = j < steps_arr
            full = active & ~(at_ceiling & ~capped & ~hot)
            if full.any():
                fold = full & (hold != 0.0)
                if fold.any():
                    integral[fold] += freq[fold] * hold[fold, None, None]
                    thr_time[fold] += (
                        thr_mask[fold] * hold[fold, None, None]
                    )
                    hold[fold] = 0.0
                excess = die - t_throttle
                ratio = np.where(
                    excess > 0,
                    freq - THROTTLE_GAIN_PER_C * excess,
                    np.where(
                        die < t_throttle - HYSTERESIS_C,
                        freq + RECOVERY_STEP,
                        freq,
                    ),
                )
                ratio = np.minimum(
                    np.maximum(ratio * cap, efff), effc
                )
                freq[full] = ratio[full]
                at_ceiling[full] = np.all(
                    ratio == effc, axis=(1, 2)
                )[full]
                thr_mask[full] = (ratio < 1.0 - 1e-9)[full]
            hold[active] += dt
            ok &= ~(active & np.any(freq != effc, axis=(1, 2)))
            if si < SP and sample_j[si] == j:
                stash_pow[:, si] = powers
                stash_die[:, si] = die.reshape(C, G)
                stash_freq[:, si] = freq.reshape(C, G)
                si += 1

        # Serial observed-time accumulation: one += dt per step.
        seq = np.empty(S + 1)
        seq[0] = 0.0
        acc = 0.0
        for k in range(S):
            acc += dt
            seq[k + 1] = acc

        # Final partial step, stats settle and ratios, per lane.
        final_inten = clamp01(
            COMPUTE_INTENSITY * clamp01(final_c)
            + COMM_INTENSITY * clamp01(final_m)
            + MEMORY_INTENSITY * clamp01(final_mem)
        )
        final_rows: dict[int, tuple] = {}
        throttle: list[list[float] | None] = [None] * C
        mean_freq: list[list[float] | None] = [None] * C
        for lane in range(C):
            if not ok[lane]:
                continue
            sl = int(steps_arr[lane])
            phys_time = float(boundaries[sl])
            observed = seq[sl]
            remaining = float(self.makespans[lane]) - phys_time
            if remaining > 1e-9:
                flat = freq[lane].reshape(-1)
                ch = flat != freq_seen[lane]
                if ch.any():
                    freq_pow[lane][ch] = flat[ch] ** FREQ_POWER_EXP
                    freq_seen[lane] = flat.copy()
                powers1 = pv_idle + pv_span * final_inten * freq_pow[lane]
                p2 = powers1.reshape(n, g)
                inlets = inlet_base + p2 @ preheat_t
                die_eq = inlets + p2 * r_total
                sink_eq = inlets + p2 * r_sink
                total = p2.sum(axis=1)
                over = total > budget
                capped = bool(over.any())
                cap = np.where(
                    over, budget / np.maximum(total, 1e-12), 1.0
                )[:, None]
                p00, p01, p10, p11 = template._propagator(remaining)
                die_dev = die[lane] - die_eq
                sink_dev = sink[lane] - sink_eq
                die[lane] = die_eq + p00 * die_dev + p01 * sink_dev
                sink[lane] = sink_eq + p10 * die_dev + p11 * sink_dev
                hot = bool((die[lane] > t_throttle).any())
                if not (at_ceiling[lane] and not capped and not hot):
                    if hold[lane]:
                        integral[lane] += freq[lane] * hold[lane]
                        thr_time[lane] += thr_mask[lane] * hold[lane]
                        hold[lane] = 0.0
                    excess = die[lane] - t_throttle
                    ratio = np.where(
                        excess > 0,
                        freq[lane] - THROTTLE_GAIN_PER_C * excess,
                        np.where(
                            die[lane] < t_throttle - HYSTERESIS_C,
                            freq[lane] + RECOVERY_STEP,
                            freq[lane],
                        ),
                    )
                    ratio = np.minimum(
                        np.maximum(ratio * cap, efff[lane]), effc[lane]
                    )
                    freq[lane] = ratio
                    at_ceiling[lane] = bool((ratio == effc[lane]).all())
                    thr_mask[lane] = ratio < 1.0 - 1e-9
                phys_time += remaining
                observed = observed + remaining
                hold[lane] += remaining
                if np.any(freq[lane] != effc[lane]):
                    ok[lane] = False
                    continue
                next_sample = self._next_samples[sl - 1] if sl else 0.0
                if phys_time >= next_sample:
                    final_rows[lane] = (
                        phys_time,
                        powers1,
                        die[lane].reshape(-1).copy(),
                        freq[lane].reshape(-1).copy(),
                    )
            if observed == 0.0:
                throttle[lane] = [0.0] * G
                mean_freq[lane] = [1.0] * G
                continue
            if hold[lane]:
                integral[lane] += freq[lane] * hold[lane]
                thr_time[lane] += thr_mask[lane] * hold[lane]
                hold[lane] = 0.0
            throttle[lane] = (
                thr_time[lane] / observed
            ).reshape(-1).tolist()
            mean_freq[lane] = (
                integral[lane] / observed
            ).reshape(-1).tolist()

        self._prep = {
            "ok": ok,
            "steps": steps_arr,
            "cnt": cnt,
            "sample_j": sample_j,
            "sample_times": sample_times,
            "pow": stash_pow,
            "die": stash_die,
            "freq": stash_freq,
            "comp": comp,
            "comm": comm,
            "final_c": final_c,
            "final_m": final_m,
            "final": final_rows,
            "throttle": throttle,
            "mean_freq": mean_freq,
            "runtimes": runtimes,
        }

    # -- per-config reconstruction --------------------------------------

    def reconstruct(self, lane: int, settings: SimSettings,
                    graph) -> SimOutcome | None:
        """Rebuild one lane's :class:`SimOutcome`; None if uncertified."""
        if not self.strict_ok[lane]:
            return None
        pos = self._lane_order(lane)
        P = self._P
        # pos1[p1]: lane pop position of pop tag p1 (prelude -> -1).
        pos1 = np.empty(P + 1, dtype=np.int64)
        pos1[0] = -1
        if P:
            pos1[1:] = pos

        # Certificate: each collective still starts at the anchor's
        # last-arriving member's pop (so its start-side ops keep their
        # anchor enclosing pop and intra-pop position).
        if self._coll_members.size and np.any(
            pos1[self._coll_members] > pos1[self._coll_anchor]
        ):
            return None
        # Certificate: each p2p rendezvous resolves on the same side
        # (the completion push — the heap tie-breaker — moves pops when
        # the branch flips).
        if self._p2p_send.size and not np.array_equal(
            np.sign(pos1[self._p2p_send] - pos1[self._p2p_recv]),
            self._p2p_sign,
        ):
            return None
        # Certificate: NIC-contention ops keep their per-node order, so
        # every begin sees the anchor's counter state and the shares
        # (hence comm costs) used for this lane's times are exact.
        # Distinct pops have distinct positions; ops within one pop keep
        # their anchor execution order.
        for ops in self._node_ops:
            if ops.size > 1 and np.any(np.diff(pos1[ops]) < 0):
                return None

        prep = self._prep
        if prep is None or not prep["ok"][lane]:
            return None
        num_gpus = self._num_gpus
        makespan = float(self.makespans[lane])
        runtime = prep["runtimes"][lane]

        # Telemetry rows come from the shared lane-batched physics pass
        # (bit-identical to the serial VectorPhysics walk); only the
        # order-sensitive PCIe fold is per-lane.
        cnt = int(prep["cnt"][lane])
        sampled = prep["sample_times"][:cnt].tolist()
        pcie_states = self._pcie_lane_states(lane, pos1, sampled)

        telemetry = TelemetryLog(
            num_gpus=num_gpus,
            sample_interval_s=settings.telemetry_interval_s,
        )
        row_time = sampled
        pow_rows = list(prep["pow"][lane, :cnt])
        die_rows = list(prep["die"][lane, :cnt])
        freq_rows = list(prep["freq"][lane, :cnt])
        jj = prep["sample_j"][:cnt]
        comp_rows = [
            (prep["comp"][lane, j] > 0).astype(float) for j in jj
        ]
        comm_rows = [
            (prep["comm"][lane, j] > 0).astype(float) for j in jj
        ]
        pcie_rows = [
            np.maximum(pcie_states[i], 0.0) for i in range(cnt)
        ]
        final = prep["final"].get(lane)
        if final is not None:
            t_final, pow_final, die_final, freq_final = final
            row_time = row_time + [t_final]
            pow_rows.append(pow_final)
            die_rows.append(die_final)
            freq_rows.append(freq_final)
            comp_rows.append((prep["final_c"] > 0).astype(float))
            comm_rows.append((prep["final_m"] > 0).astype(float))
            pcie_rows.append(np.maximum(pcie_states[-1], 0.0))
        telemetry._row_time = row_time
        telemetry._rows = [
            pow_rows, die_rows, freq_rows,
            comp_rows, comm_rows, pcie_rows,
        ]

        traffic = TrafficLedger(num_gpus=num_gpus)
        if self._traf_pop1.size:
            flush_order = np.argsort(
                pos1[self._traf_pop1], kind="stable"
            )
            seen = np.zeros(len(self._traf_costs), dtype=bool)
            for call in flush_order:
                g = self._traf_group[call]
                if not seen[g]:
                    seen[g] = True
                    traffic.record(
                        self._traf_costs[g], self._traf_repeats[g]
                    )

        r = self._r
        lane_times = self.times[:, lane]
        rec_perm = np.argsort(pos1[self._rec_pop1], kind="stable")
        rec_kind, rec_gpu = r.rec_kind, r.rec_gpu
        rec_rank, rec_iter = r.rec_rank, r.rec_iter
        rec_mb, rec_stage = r.rec_mb, r.rec_stage
        starts, ends = self._rec_start, self._rec_end

        def build_records() -> list[KernelRecord]:
            order = rec_perm.tolist()
            start_times = lane_times[starts].tolist()
            end_times = lane_times[ends].tolist()
            return [
                KernelRecord(
                    rec_gpu[i], rec_rank[i], rec_kind[i],
                    start_times[i], end_times[i],
                    rec_iter[i], rec_mb[i], rec_stage[i],
                )
                for i in order
            ]

        return SimOutcome(
            records=LazyRecords(build_records),
            makespan_s=makespan,
            iteration_end_s=[
                float(r._iter_end[i][lane])
                for i in range(graph.num_iterations)
            ],
            telemetry=telemetry,
            traffic=traffic,
            throttle_ratio=prep["throttle"][lane],
            mean_freq_ratio=prep["mean_freq"][lane],
            tokens_per_iteration=graph.tokens_per_iteration,
            num_iterations=graph.num_iterations,
            power_control=runtime.trace if runtime is not None else None,
            fault_trace=None,
        )

    def _pcie_lane_states(self, lane: int, pos1: np.ndarray,
                          sampled: list[float]) -> np.ndarray:
        """Clamped PCIe-rate fold states at each sampled boundary + end.

        The serial fold ``rate = max(0.0, rate - delta)`` is
        order-sensitive, so each GPU's ops are folded in the lane's true
        pop order; states are captured at boundaries (which never split
        a pop: ops at a boundary's exact time belong to pops at or after
        it and are excluded by the strict ``<`` cut).

        Fast path: ``np.cumsum`` over signed rates is the same
        sequential fold without the clamp; whenever no running prefix is
        strictly negative the clamp never binds and the cumsum states
        are the serial states (``max(0.0, -0.0)`` only flips a zero
        sign, which compares equal everywhere downstream). A GPU whose
        prefix dips below zero takes the exact python walk instead.
        """
        r = self._r
        num_gpus = self._num_gpus
        out = np.zeros((len(sampled) + 1, num_gpus))
        if not len(r.pcie_tid):
            return out
        op_times = self.times[self._pcie_tids, lane]
        keys = pos1[self._pcie_pop1]
        rates = r.pcie_rate
        is_end = r.pcie_end
        porder = self._pcie_order
        seg = self._pcie_seg
        signed = self._pcie_signed_base
        if self._pcie_dep_idx.size:
            signed = signed.copy()
            signed[self._pcie_dep_idx] = (
                self._pcie_dep_sgn * self._pcie_dep[:, lane]
            )
        # One composite argsort orders every GPU's bucket by true pop
        # position at once (buckets are contiguous in porder, so
        # offsetting keys by gpu * span keeps them disjoint).
        span = self._P + 1
        composite = keys[porder] + self._pcie_gpu_of[porder] * span
        ordered_all = porder[np.argsort(composite, kind="stable")]
        sampled_arr = np.asarray(sampled)
        for g in range(num_gpus):
            ordered = ordered_all[seg[g]:seg[g + 1]]
            if not ordered.size:
                continue
            run = np.cumsum(signed[ordered])
            times_g = op_times[ordered]
            cuts = np.searchsorted(times_g, sampled_arr, side="left")
            if run.min() >= 0.0:
                runz = np.concatenate(([0.0], run))
                out[:len(sampled), g] = runz[cuts]
                out[len(sampled), g] = runz[-1]
                continue
            state = 0.0
            k = 0
            ops = ordered.tolist()
            for w, stop in enumerate(cuts.tolist()):
                while k < stop:
                    i = ops[k]
                    rate = rates[i]
                    if isinstance(rate, np.ndarray):
                        rate = rate[lane]
                    if is_end[i]:
                        state = max(0.0, state - rate)
                    else:
                        state += rate
                    k += 1
                out[w, g] = state
            while k < len(ops):
                i = ops[k]
                rate = rates[i]
                if isinstance(rate, np.ndarray):
                    rate = rate[lane]
                if is_end[i]:
                    state = max(0.0, state - rate)
                else:
                    state += rate
                k += 1
            out[len(sampled), g] = state
        return out


# ----------------------------------------------------------------------
# Grid batching: grouping, caching, sessions
# ----------------------------------------------------------------------


def _resolve_settings(kwargs: dict) -> SimSettings:
    return kwargs.get("settings") or SimSettings()


def _uniform_setpoint(settings: SimSettings, cluster) -> float | None:
    """Effective uniform static clock ceiling, or None if not static."""
    control = settings.power_control
    if not control.active:
        return 1.0
    if control.governor != "static":
        return None
    if control.power_limit_w is not None:
        return freq_for_power_limit(cluster.node.gpu, control.power_limit_w)
    if control.gpu_freq_setpoints:
        values = control.gpu_freq_setpoints
        if len(values) != cluster.total_gpus:
            return None
        first = values[0]
        if any(v != first for v in values):
            return None
        return first
    return control.freq_setpoint


@dataclass
class _Member:
    """One grid point routed through a batch group."""

    kind: str
    kwargs: dict
    settings: SimSettings
    setpoint: float


def _batchable(kind: str, kwargs: dict) -> _Member | None:
    """A :class:`_Member` if this payload can join an anchor+replay group."""
    if kind not in ("train", "infer"):
        return None
    settings = _resolve_settings(kwargs)
    if not settings.fast_path:
        return None
    if settings.faults != HEALTHY:
        return None
    if settings.fault_timeline.events:
        return None
    from repro.core.experiment import _resolve_cluster

    try:
        cluster = _resolve_cluster(kwargs["cluster"])
    except Exception:
        return None
    setpoint = _uniform_setpoint(settings, cluster)
    if setpoint is None:
        return None
    return _Member(kind, kwargs, settings, setpoint)


def _group_key(member: _Member):
    """Graph-group identity: everything but the power-control axis."""
    from repro.core.sweep import freeze

    rest = {k: v for k, v in member.kwargs.items() if k != "settings"}
    neutral = replace(member.settings, power_control=NO_POWER_CONTROL)
    return (member.kind, freeze(rest), freeze(neutral))


class _BatchGroup:
    """One shared-graph group: anchor once, replay every other member.

    The anchor (mesh, graph, instrumented simulator, comm-cost memo) is
    retained, so a :class:`SetpointSession` can keep refining setpoints
    against it across calls — each refinement is a single replay instead
    of a full simulation.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._model = None
        self._cluster = None
        self._strategy = None
        self._opts = None
        self._mesh = None
        self._graph = None
        self._anchor: _RecordingSimulator | None = None

    def _build(self, kwargs: dict) -> None:
        from repro.core.experiment import (
            _resolve_cluster,
            _resolve_model,
            _resolve_strategy,
        )

        self._model = _resolve_model(kwargs["model"])
        self._cluster = _resolve_cluster(kwargs["cluster"])
        self._strategy = _resolve_strategy(
            kwargs["parallelism"], self._cluster
        )
        # Mirror execute_training/execute_inference: an explicit
        # pipeline_schedule kwarg overrides the strategy's. The schedule
        # is part of the frozen kwargs in _group_key, so each schedule
        # forms its own anchor+replay group.
        if kwargs.get("pipeline_schedule") is not None:
            self._strategy = replace(
                self._strategy,
                pipeline_schedule=kwargs["pipeline_schedule"],
            )
        if self.kind == "train":
            self._opts = kwargs.get("optimizations") or OptimizationConfig()
            placement = kwargs.get("placement")
            self._mesh = DeviceMesh(
                cluster=self._cluster,
                config=self._strategy,
                placement=tuple(placement) if placement else (),
            )
            self._graph = build_training_graph(
                model=self._model,
                mesh=self._mesh,
                microbatch_size=kwargs.get("microbatch_size", 1),
                global_batch_size=kwargs.get("global_batch_size", 128),
                opts=self._opts,
                iterations=kwargs.get("iterations", 2),
                stage_layers=kwargs.get("stage_layers"),
                num_seq_splits=kwargs.get("seq_splits"),
            )
        else:
            self._opts = OptimizationConfig(distributed_optimizer=False)
            self._mesh = DeviceMesh(
                cluster=self._cluster, config=self._strategy
            )
            self._graph = build_inference_graph(
                model=self._model,
                mesh=self._mesh,
                microbatch_size=kwargs.get("microbatch_size", 1),
                global_batch_size=kwargs.get("global_batch_size", 128),
                iterations=kwargs.get("iterations", 2),
                num_seq_splits=kwargs.get("seq_splits"),
            )

    def _wrap(self, member: _Member, outcome: SimOutcome) -> RunResult:
        return RunResult(
            model=self._model,
            cluster=self._cluster,
            parallelism=self._strategy,
            optimizations=self._opts,
            microbatch_size=member.kwargs.get("microbatch_size", 1),
            warmup_iterations=member.kwargs.get("warmup_iterations", 1),
            outcome=outcome,
            placement=self._mesh.placement,
        )

    def evaluate(self, members: list[_Member]) -> list[RunResult]:
        """Run every member, anchoring/replaying where possible."""
        results: list[RunResult | None] = [None] * len(members)
        start = 0
        if self._anchor is None and members:
            anchor_member = members[0]
            self._build(anchor_member.kwargs)
            simulator = _RecordingSimulator(
                self._mesh, self._graph,
                anchor_member.kwargs.get("settings"),
            )
            results[0] = self._wrap(anchor_member, simulator.run())
            self._anchor = simulator
            start = 1
        rest = members[start:]
        if rest:
            outputs = self._replay(rest)
            for offset, outcome in enumerate(outputs):
                index = start + offset
                if outcome is None:
                    results[index] = _plain_run(
                        members[index].kind, members[index].kwargs
                    )
                else:
                    results[index] = self._wrap(members[index], outcome)
        return results

    def _replay(self, members: list[_Member]) -> list[SimOutcome | None]:
        try:
            replay = _VectorReplay(
                self._anchor, [m.setpoint for m in members]
            )
            replay.run()
            output = replay.finalize()
            output.prepare([m.settings for m in members])
            return [
                output.reconstruct(lane, member.settings, self._graph)
                for lane, member in enumerate(members)
            ]
        except _ReplayDiverged:
            return [None] * len(members)


def _plain_run(kind: str, kwargs: dict) -> RunResult:
    # Resolved through the sweep module (not imported directly) so the
    # batched path sees the same runners ``cached_run`` would — test
    # doubles patched there keep working.
    from repro.core import sweep

    if kind == "train":
        return sweep.execute_training(**kwargs)
    if kind == "infer":
        return sweep.execute_inference(**kwargs)
    if kind == "serve":
        from repro.inferserve.engine import execute_serving

        return execute_serving(**kwargs)
    from repro.suggest import unknown_name_message

    raise ValueError(
        unknown_name_message("run kind", kind, ("train", "infer", "serve"))
    )


def _probe(kind: str, kwargs: dict, store):
    """Memo, then store — the same probe order as ``cached_run``."""
    from repro.core.sweep import key_digest, lookup_memo

    hit = lookup_memo(kind, kwargs)
    if hit is not None or store is None:
        return hit
    from repro.core.sweep import cache_key

    return store.get(key_digest(cache_key(kind, kwargs)))


def _install(kind: str, kwargs: dict, result: RunResult, store,
             computed: bool) -> None:
    from repro.core.sweep import cache_key, key_digest, seed_memo

    if computed and store is not None:
        store.put(key_digest(cache_key(kind, kwargs)), result)
    seed_memo(kind, kwargs, result)


def evaluate_grid(
    payloads: list[tuple[str, dict]], cache: bool = True
) -> list[RunResult]:
    """Evaluate a grid of run payloads, batching where graphs are shared.

    The drop-in batched equivalent of calling
    :func:`repro.core.sweep.cached_run` per payload: identical memo /
    persistent-store cooperation (probe order, seeding, digests) and
    identical results — batchable subsets of the grid are grouped by
    task graph and evaluated anchor+replay, everything else runs the
    ordinary per-config path. Duplicate payloads collapse to one run and
    return the same object.

    Args:
        payloads: ``(kind, kwargs)`` pairs as accepted by ``cached_run``.
        cache: consult/fill the persistent store (the in-process memo is
            always used, mirroring the serial path).
    """
    from repro.core.sweep import cache_key

    store = result_store() if (cache and persistence_enabled()) else None
    results: dict[tuple, RunResult] = {}
    order: list[tuple] = []
    seen: set[tuple] = set()
    groups: dict[tuple, list[tuple[tuple, _Member]]] = {}
    singles: list[tuple[tuple, str, dict]] = []

    for kind, kwargs in payloads:
        key = cache_key(kind, kwargs)
        order.append(key)
        if key in seen:
            continue
        seen.add(key)
        hit = _probe(kind, kwargs, store)
        if hit is not None:
            _install(kind, kwargs, hit, store, computed=False)
            results[key] = hit
            continue
        member = _batchable(kind, kwargs)
        if member is None:
            singles.append((key, kind, kwargs))
        else:
            groups.setdefault(_group_key(member), []).append((key, member))

    for key, kind, kwargs in singles:
        result = _plain_run(kind, kwargs)
        _install(kind, kwargs, result, store, computed=True)
        results[key] = result

    for pairs in groups.values():
        if len(pairs) == 1:
            key, member = pairs[0]
            result = _plain_run(member.kind, member.kwargs)
            _install(member.kind, member.kwargs, result, store,
                     computed=True)
            results[key] = result
            continue
        group = _BatchGroup(pairs[0][1].kind)
        outputs = group.evaluate([member for _, member in pairs])
        for (key, member), result in zip(pairs, outputs):
            _install(member.kind, member.kwargs, result, store,
                     computed=True)
            results[key] = result

    return [results[key] for key in order]


class SetpointSession:
    """Batched evaluator over static-setpoint variants of one workload.

    Setpoint searches (:func:`repro.optimize.optimize_setpoint`
    and friends) probe many static clock ceilings of the *same* run.
    A session keeps the anchor simulation and its task graph alive
    between calls, so the opening bracket batches into one anchor plus
    replays and every later golden-section refinement is a single replay
    instead of a full simulation. Results are cached exactly like
    ``cached_run`` (same keys, memo, and store writes).
    """

    def __init__(self, kind: str,
                 kwargs_for: Callable[[float], dict]) -> None:
        self._kind = kind
        self._kwargs_for = kwargs_for
        self._group: _BatchGroup | None = None

    def evaluate(self, setpoints: Iterable[float],
                 cache: bool = True) -> dict[float, RunResult]:
        """Evaluate (and cache) each distinct setpoint; returns a map."""
        ordered: list[float] = []
        for setpoint in setpoints:
            if setpoint not in ordered:
                ordered.append(setpoint)
        store = result_store() if (cache and persistence_enabled()) else None
        out: dict[float, RunResult] = {}
        misses: list[tuple[float, _Member]] = []
        for setpoint in ordered:
            kwargs = self._kwargs_for(setpoint)
            hit = _probe(self._kind, kwargs, store)
            if hit is not None:
                _install(self._kind, kwargs, hit, store, computed=False)
                out[setpoint] = hit
                continue
            member = _batchable(self._kind, kwargs)
            if member is None:
                result = _plain_run(self._kind, kwargs)
                _install(self._kind, kwargs, result, store, computed=True)
                out[setpoint] = result
                continue
            misses.append((setpoint, member))
        if misses:
            if self._group is None:
                self._group = _BatchGroup(self._kind)
            outputs = self._group.evaluate([m for _, m in misses])
            for (setpoint, member), result in zip(misses, outputs):
                _install(self._kind, member.kwargs, result, store,
                         computed=True)
                out[setpoint] = result
        return out
