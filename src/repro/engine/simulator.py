"""Discrete-event simulator with power/thermal co-simulation.

The simulator executes every rank's task queue. Cross-rank timing comes
only from communication semantics (eager P2P, rendezvous collectives; see
:mod:`repro.engine.task`). Concurrently, a fixed-step physics loop
integrates each node's RC thermal model and DVFS governor; compute-kernel
durations are divided by the issuing GPU's current clock ratio, closing
the loop the paper highlights: heat -> throttling -> stragglers ->
synchronisation skew.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.comm.collectives import (
    CommCost,
    allgather,
    allreduce,
    alltoall,
    reduce_scatter,
    send_recv,
)
from repro.comm.contention import NicContention
from repro.comm.traffic import TrafficLedger
from repro.core.faults import EMPTY_TIMELINE, HEALTHY, FaultSpec, FaultTimeline
from repro.engine.kernels import KernelKind, KernelRecord
from repro.engine.physics import (
    PowerVector,
    ScalarPhysics,
    VectorPhysics,
    reference_activity,
)
from repro.engine.task import CollectiveOp, ComputeSpec, Task, TaskGraph, TaskKind
from repro.hardware.interconnect import LinkKind
from repro.optimizations.overlap import OVERLAP_COMM_SLOWDOWN, fused_duration
from repro.parallelism.mapping import DeviceMesh
from repro.power.model import Activity, gpu_power
from repro.powerctl.config import NO_POWER_CONTROL, PowerControlConfig
from repro.powerctl.governor import (
    PowerControlTrace,
    PowerCtlObservation,
    build_runtime,
)
from repro.resilience.runtime import FaultTrace, build_fault_runtime
from repro.telemetry.monitor import GpuSample, TelemetryLog

EPS = 2e-6

_COLLECTIVE_FNS = {
    CollectiveOp.ALLREDUCE: allreduce,
    CollectiveOp.ALLGATHER: allgather,
    CollectiveOp.REDUCE_SCATTER: reduce_scatter,
    CollectiveOp.ALLTOALL: alltoall,
}


class DeadlockError(RuntimeError):
    """Raised when the event queue drains with unfinished rank queues."""


@dataclass(frozen=True)
class SimSettings:
    """Simulation fidelity knobs.

    Attributes:
        physics_dt_s: thermal/governor integration step.
        telemetry_interval_s: telemetry sampling period (Zeus poll rate).
        thermal_prewarm: start from the thermal steady state of a busy
            cluster instead of cold metal (stands in for the paper's 10
            discarded warm-up iterations).
        prewarm_busy_fraction: assumed duty cycle for the prewarm
            equilibrium estimate.
        faults: node degradations active for the whole run (power
            failures, pinned clocks) — the paper's straggler incident.
        fast_path: use the vectorized physics backend and the collective
            cost memo (default). ``False`` selects the scalar reference
            implementation — bit-for-bit the original code path — which
            the differential tests and the perf-regression benchmark
            use as their oracle/baseline. Results agree to floating-
            point noise.
        power_control: closed-loop GPU power management
            (:mod:`repro.powerctl`). The default disables it entirely:
            no runtime is built and both physics backends follow the
            exact pre-powerctl code path, bit for bit.
        fault_timeline: transient mid-run fault events
            (:mod:`repro.resilience`). The empty default builds no
            fault runtime at all: both physics backends follow the
            exact pre-resilience code path, bit for bit.
        collective_timeout_s: NCCL-style watchdog — a rendezvous
            collective whose arrival skew exceeds this is recorded as a
            hang on the fault trace (only consulted when a fault
            timeline is active).
    """

    physics_dt_s: float = 0.05
    telemetry_interval_s: float = 0.1
    thermal_prewarm: bool = True
    prewarm_busy_fraction: float = 0.75
    faults: FaultSpec = HEALTHY
    fast_path: bool = True
    power_control: PowerControlConfig = NO_POWER_CONTROL
    fault_timeline: FaultTimeline = EMPTY_TIMELINE
    collective_timeout_s: float = 30.0


@dataclass
class SimOutcome:
    """Everything one simulated run produced.

    Attributes:
        records: Chakra-style kernel records across all GPUs.
        makespan_s: completion time of the last task.
        iteration_end_s: per-iteration completion times.
        telemetry: sampled per-GPU time series.
        traffic: per-GPU fabric byte counters.
        throttle_ratio: per-physical-GPU fraction of time throttled.
        mean_freq_ratio: per-physical-GPU time-weighted clock ratio.
        tokens_per_iteration / num_iterations: workload geometry.
        power_control: setpoint timeline and decision log of the active
            :mod:`repro.powerctl` governor (None when power control was
            off).
        fault_trace: applied fault transitions and detected hangs of the
            run's :class:`~repro.core.faults.FaultTimeline` (None when
            the timeline was empty).
    """

    records: list[KernelRecord]
    makespan_s: float
    iteration_end_s: list[float]
    telemetry: TelemetryLog
    traffic: TrafficLedger
    throttle_ratio: list[float]
    mean_freq_ratio: list[float]
    tokens_per_iteration: int
    num_iterations: int
    power_control: PowerControlTrace | None = None
    fault_trace: FaultTrace | None = None


@dataclass(slots=True)
class _RunningCollective:
    """Book-keeping of an in-flight rendezvous collective."""

    group_start_s: float = 0.0
    arrivals: dict[int, float] = field(default_factory=dict)
    nic_nodes: tuple[int, ...] = ()
    pcie_rates: list[tuple[int, float]] = field(default_factory=list)
    comm_duration_s: float = 0.0


class Simulator:
    """Executes a :class:`TaskGraph` on a :class:`DeviceMesh`."""

    def __init__(
        self,
        mesh: DeviceMesh,
        graph: TaskGraph,
        settings: SimSettings | None = None,
    ) -> None:
        self.mesh = mesh
        self.graph = graph
        self.settings = settings or SimSettings()
        self.cluster = mesh.cluster
        self.world = graph.world_size
        if self.world != self.cluster.total_gpus:
            raise ValueError("task graph and cluster size mismatch")

        num_gpus = self.cluster.total_gpus
        self._pos = [0] * self.world
        self._heap: list[tuple[float, int, str, tuple]] = []
        self._seq = itertools.count()

        self._compute_active = [0.0] * num_gpus
        self._comm_active = [0.0] * num_gpus
        self._memory_active = [0.0] * num_gpus
        self._pcie_rate = [0.0] * num_gpus

        node = self.cluster.node
        self._fast = self.settings.fast_path
        if self._fast:
            self._physics = VectorPhysics(self.cluster, self.settings.faults)
            self._power_vec = PowerVector(self.cluster)
            self._activity_dirty = True
            self._last_power = [node.gpu.idle_watts] * num_gpus
        else:
            self._physics = ScalarPhysics(self.cluster, self.settings.faults)
            self._last_power = [node.gpu.idle_watts] * num_gpus
            self._physics.bind_power_out(self._last_power)
            self._activity_of_ref = reference_activity(
                self._compute_active, self._comm_active, self._memory_active
            )

        # Closed-loop power control (repro.powerctl). Everything below
        # is guarded on self._powerctl so the default stays a strict
        # no-op on both backends.
        self._powerctl = build_runtime(
            self.settings.power_control, self.cluster
        )
        self._next_control = 0.0
        self._control_elapsed = 0.0
        self._busy_time = (
            np.zeros(num_gpus)
            if self._powerctl is not None
            and self._powerctl.needs_busy_fraction
            else None
        )

        # Transient fault injection (repro.resilience). Everything it
        # touches is guarded on self._faultrt, so the empty-timeline
        # default stays a strict no-op on both backends.
        self._faultrt = build_fault_runtime(
            self.settings.fault_timeline,
            self.cluster,
            collective_timeout_s=self.settings.collective_timeout_s,
        )

        # Precomputed rank/GPU index tables (hot-path: avoids repeated
        # method dispatch through mesh/cluster per event).
        self._gpu_of = [self.mesh.gpu_of(r) for r in range(self.world)]
        per_node = node.gpus_per_node
        self._node_of = [g // per_node for g in range(num_gpus)]
        self._local_of = [g % per_node for g in range(num_gpus)]
        self._sustained = node.gpu.sustained_flops
        # Collective cost memo: (op/kind, group, payload, bandwidth
        # scale) -> CommCost, shared across microbatches and iterations.
        self._comm_cache: dict[tuple, CommCost] = {}
        self._group_cache: dict[tuple[int, ...], tuple] = {}
        self._nic_cache: dict[tuple[int, ...], tuple[int, ...]] = {}
        # Fast path folds the (heavily repeated, memoized) comm costs
        # into the traffic ledger once at the end of the run instead of
        # walking the ledger dicts on every send/collective.
        self._traffic_pending: dict[int, list] = {}
        self._pcie_memo: dict[int, list[tuple[int, float]]] = {}
        self._queues = graph.queues

        self.telemetry = TelemetryLog(
            num_gpus=num_gpus,
            sample_interval_s=self.settings.telemetry_interval_s,
        )
        self.traffic = TrafficLedger(num_gpus=num_gpus)
        self._contention = NicContention(num_nodes=self.cluster.num_nodes)

        self._delivery: dict[int, float] = {}
        self._waiting: dict[int, tuple[Task, int, float]] = {}
        self._collectives: dict[int, _RunningCollective] = {}
        self._records: list[KernelRecord] = []
        self._append_record = self._records.append
        self._iteration_end: dict[int, float] = {}

        self._phys_time = 0.0
        self._next_sample = 0.0
        self._now = 0.0

        self._handlers = {
            "compute": self._on_compute_done,
            "send": self._on_send_done,
            "recv": self._on_recv_done,
            "collective": self._on_collective_done,
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self) -> SimOutcome:
        """Execute the full graph and return the collected outcome."""
        if self._powerctl is not None:
            initial = self._powerctl.initial_setpoints()
            if initial is not None:
                self._physics.set_setpoints(initial)
            self._next_control = self._powerctl.config.control_interval_s
        if self.settings.thermal_prewarm:
            self._prewarm()
        for rank in range(self.world):
            self._try_start(rank, 0.0)
        while self._heap:
            time_s, _, name, payload = heapq.heappop(self._heap)
            self._now = time_s
            self._advance_physics(time_s)
            self._handlers[name](time_s, *payload)
        makespan = self._now
        self._flush_physics(makespan)
        self._flush_traffic()
        self._check_finished()
        return SimOutcome(
            records=self._records,
            makespan_s=makespan,
            iteration_end_s=[
                self._iteration_end[i]
                for i in range(self.graph.num_iterations)
            ],
            telemetry=self.telemetry,
            traffic=self.traffic,
            throttle_ratio=self._physics.throttle_ratios(),
            mean_freq_ratio=self._physics.mean_freq_ratios(),
            tokens_per_iteration=self.graph.tokens_per_iteration,
            num_iterations=self.graph.num_iterations,
            power_control=(
                self._powerctl.trace if self._powerctl is not None else None
            ),
            fault_trace=(
                self._faultrt.trace if self._faultrt is not None else None
            ),
        )

    # ------------------------------------------------------------------
    # Task dispatch
    # ------------------------------------------------------------------

    def _try_start(self, rank: int, now: float) -> None:
        queue = self._queues[rank]
        pos = self._pos[rank]
        if pos >= len(queue):
            return
        task = queue[pos]
        if task.kind is TaskKind.COMPUTE:
            self._start_compute(task, rank, now)
        elif task.kind is TaskKind.SEND:
            self._start_send(task, rank, now)
        elif task.kind is TaskKind.RECV:
            self._start_recv(task, rank, now)
        else:
            self._arrive_collective(task, rank, now)

    def _start_compute(self, task: Task, rank: int, now: float) -> None:
        gpu = self._gpu_of[rank]
        duration = self._compute_duration(task.compute, gpu, now)
        self._set_activity(gpu, task.compute.activity, +1)
        self._push(now + duration, "compute", (task, rank, now))

    def _start_send(self, task: Task, rank: int, now: float) -> None:
        spec = task.p2p
        src_gpu = self._gpu_of[spec.src]
        dst_gpu = self._gpu_of[spec.dst]
        nodes = self._nic_nodes_for((src_gpu, dst_gpu))
        share = self._contention.begin(nodes) if nodes else 1.0
        if nodes and self._faultrt is not None:
            share *= self._faultrt.link_scale(nodes, now)
        key = ("p2p", src_gpu, dst_gpu, spec.payload_bytes, spec.chunked,
               share)
        cost = self._comm_cache.get(key) if self._fast else None
        if cost is None:
            cost = send_recv(
                self.cluster,
                src_gpu,
                dst_gpu,
                spec.payload_bytes,
                chunked=spec.chunked,
                bandwidth_scale=share,
            )
            if self._fast:
                self._comm_cache[key] = cost
        duration = max(cost.duration_s, EPS)
        self._record_scaled_traffic(cost, 1)
        rates = self._begin_pcie_rates(cost, duration, repeat=1)
        self._comm_active[src_gpu] += 1
        self._activity_dirty = True
        self._delivery[spec.message_id] = now + duration
        self._push(now + duration, "send", (task, rank, now, nodes, rates))
        waiting = self._waiting.pop(spec.message_id, None)
        if waiting is not None:
            wtask, wrank, wstart = waiting
            self._push(
                now + duration + EPS, "recv", (wtask, wrank, wstart)
            )

    def _start_recv(self, task: Task, rank: int, now: float) -> None:
        gpu = self._gpu_of[rank]
        msg = task.p2p.message_id
        self._comm_active[gpu] += 1
        self._activity_dirty = True
        if msg in self._delivery:
            done = max(now, self._delivery[msg]) + EPS
            self._push(done, "recv", (task, rank, now))
        else:
            self._waiting[msg] = (task, rank, now)

    def _arrive_collective(self, task: Task, rank: int, now: float) -> None:
        state = self._collectives.setdefault(task.uid, _RunningCollective())
        state.arrivals[rank] = now
        gpu = self._gpu_of[rank]
        self._comm_active[gpu] += 1
        self._activity_dirty = True
        if len(state.arrivals) == len(task.collective.ranks):
            self._start_collective(task, state, now)

    def _group_of(self, ranks: tuple[int, ...]) -> tuple:
        """Memoised (gpus, nic_nodes) of a collective's rank group."""
        group = self._group_cache.get(ranks)
        if group is None:
            gpus = self.mesh.gpus_of(list(ranks))
            group = (gpus, self._nic_nodes_for(tuple(gpus)))
            self._group_cache[ranks] = group
        return group

    def _start_collective(
        self, task: Task, state: _RunningCollective, now: float
    ) -> None:
        spec = task.collective
        gpus, nodes = self._group_of(spec.ranks)
        share = self._contention.begin(nodes) if nodes else 1.0
        if self._faultrt is not None:
            if nodes:
                share *= self._faultrt.link_scale(nodes, now)
            self._faultrt.observe_rendezvous(
                task.uid, min(state.arrivals.values()), now
            )
        key = (spec.op, spec.ranks, spec.payload_bytes, share)
        cost = self._comm_cache.get(key) if self._fast else None
        if cost is None:
            cost = _COLLECTIVE_FNS[spec.op](
                self.cluster, gpus, spec.payload_bytes, bandwidth_scale=share
            )
            if self._fast:
                self._comm_cache[key] = cost
        comm_duration = cost.duration_s * spec.repeat
        self._record_scaled_traffic(cost, spec.repeat)

        duration = comm_duration
        if task.overlap_compute is not None:
            compute_durations = [
                self._compute_duration(task.overlap_compute, g, now)
                for g in gpus
            ]
            duration = fused_duration(max(compute_durations), comm_duration)
            for g in gpus:
                self._set_activity(g, task.overlap_compute.activity, +1)
        duration = max(duration, EPS)

        state.group_start_s = now
        state.nic_nodes = nodes
        state.pcie_rates = self._begin_pcie_rates(cost, duration, spec.repeat)
        state.comm_duration_s = comm_duration
        self._push(now + duration, "collective", (task,))

    # ------------------------------------------------------------------
    # Completion handlers
    # ------------------------------------------------------------------

    def _on_compute_done(
        self, now: float, task: Task, rank: int, start: float
    ) -> None:
        gpu = self._gpu_of[rank]
        self._set_activity(gpu, task.compute.activity, -1)
        self._record(task, gpu, rank, start, now, task.kernel)
        self._advance(task, rank, now)

    def _on_send_done(
        self,
        now: float,
        task: Task,
        rank: int,
        start: float,
        nodes: tuple[int, ...],
        rates: list[tuple[int, float]],
    ) -> None:
        gpu = self._gpu_of[rank]
        self._comm_active[gpu] -= 1
        self._activity_dirty = True
        self._end_pcie_rates(rates)
        if nodes:
            self._contention.end(nodes)
        self._record(task, gpu, rank, start, now, task.kernel)
        self._advance(task, rank, now)

    def _on_recv_done(
        self, now: float, task: Task, rank: int, wait_start: float
    ) -> None:
        gpu = self._gpu_of[rank]
        self._comm_active[gpu] -= 1
        self._activity_dirty = True
        self._record(task, gpu, rank, wait_start, now, task.kernel)
        self._advance(task, rank, now)

    def _on_collective_done(self, now: float, task: Task) -> None:
        state = self._collectives.pop(task.uid)
        if state.nic_nodes:
            self._contention.end(state.nic_nodes)
        self._end_pcie_rates(state.pcie_rates)
        for member in task.collective.ranks:
            gpu = self._gpu_of[member]
            self._comm_active[gpu] -= 1
            self._activity_dirty = True
            if task.overlap_compute is None:
                # Rendezvous wait is charged to the comm kernel, as NCCL
                # profilers report it.
                self._record(
                    task, gpu, member, state.arrivals[member], now,
                    task.kernel,
                )
            else:
                # Overlapped: the comm kernel spans only its own (slowed)
                # duration; the fused compute kernel spans the full task.
                comm_end = min(
                    now,
                    state.group_start_s
                    + state.comm_duration_s * OVERLAP_COMM_SLOWDOWN,
                )
                self._record(
                    task, gpu, member, state.group_start_s, comm_end,
                    task.kernel,
                )
                self._set_activity(gpu, task.overlap_compute.activity, -1)
                self._record(
                    task,
                    gpu,
                    member,
                    state.group_start_s,
                    now,
                    task.overlap_kernel or KernelKind.FWD_GEMM,
                )
        for member in task.collective.ranks:
            self._advance(task, member, now)

    def _advance(self, task: Task, rank: int, now: float) -> None:
        self._pos[rank] += 1
        previous = self._iteration_end.get(task.iteration, 0.0)
        self._iteration_end[task.iteration] = max(previous, now)
        self._try_start(rank, now)

    # ------------------------------------------------------------------
    # Durations, activity, traffic helpers
    # ------------------------------------------------------------------

    def _compute_duration(
        self, spec: ComputeSpec, gpu: int, now: float
    ) -> float:
        if spec.fixed_duration_s is not None:
            duration = max(spec.fixed_duration_s, spec.min_duration_s)
        else:
            freq = self._physics.freq_of(gpu)
            duration = spec.flops / (
                self._sustained * spec.efficiency * freq
            )
            if spec.overlapped_comm_s > 0:
                duration = fused_duration(duration, spec.overlapped_comm_s)
            duration = max(duration, spec.min_duration_s)
        if self._faultrt is not None:
            delay, stretch = self._faultrt.compute_penalty(
                self._node_of[gpu], now
            )
            if delay or stretch != 1.0:
                duration = duration * stretch + delay
        return duration

    def _set_activity(self, gpu: int, activity: Activity, delta: int) -> None:
        """Stack (or unstack) a kernel's fractional activity on a GPU."""
        self._compute_active[gpu] += delta * activity.compute
        self._comm_active[gpu] += delta * activity.comm
        self._memory_active[gpu] += delta * activity.memory
        self._activity_dirty = True
        if min(
            self._compute_active[gpu],
            self._comm_active[gpu],
            self._memory_active[gpu],
        ) < -1e-9:
            raise RuntimeError(f"negative activity level on GPU {gpu}")

    def _nic_nodes_for(self, gpus: tuple[int, ...]) -> tuple[int, ...]:
        cached = self._nic_cache.get(gpus)
        if cached is None:
            node_of = self._node_of
            nodes = sorted({node_of[g] for g in gpus})
            cached = tuple(nodes) if len(nodes) > 1 else ()
            self._nic_cache[gpus] = cached
        return cached

    def _begin_pcie_rates(
        self, cost: CommCost, duration: float, repeat: int
    ) -> list[tuple[int, float]]:
        entries = self._pcie_entries(cost) if self._fast else None
        if entries is None:
            entries = [
                (gpu, pcie)
                for gpu, by_kind in cost.link_bytes.items()
                if (pcie := by_kind.get(LinkKind.PCIE, 0.0)) > 0
            ]
        rates = []
        for gpu, pcie in entries:
            rate = pcie * repeat / duration
            self._pcie_rate[gpu] += rate
            rates.append((gpu, rate))
        return rates

    def _pcie_entries(self, cost: CommCost) -> list[tuple[int, float]]:
        """Memoised (gpu, PCIe bytes) pairs of a (memoized) comm cost."""
        entries = self._pcie_memo.get(id(cost))
        if entries is None:
            entries = [
                (gpu, pcie)
                for gpu, by_kind in cost.link_bytes.items()
                if (pcie := by_kind.get(LinkKind.PCIE, 0.0)) > 0
            ]
            self._pcie_memo[id(cost)] = entries
        return entries

    def _end_pcie_rates(self, rates: list[tuple[int, float]]) -> None:
        for gpu, rate in rates:
            self._pcie_rate[gpu] = max(0.0, self._pcie_rate[gpu] - rate)

    def _record_scaled_traffic(self, cost: CommCost, repeat: int) -> None:
        if not self._fast:
            self.traffic.record(cost, repeat)
            return
        entry = self._traffic_pending.get(id(cost))
        if entry is None:
            # The cost object is held by the value (and the comm memo),
            # so its id stays unique for the life of the run.
            self._traffic_pending[id(cost)] = [cost, repeat]
        else:
            entry[1] += repeat

    def _flush_traffic(self) -> None:
        for cost, repeat in self._traffic_pending.values():
            self.traffic.record(cost, repeat)
        self._traffic_pending.clear()

    def _record(
        self,
        task: Task,
        gpu: int,
        rank: int,
        start: float,
        end: float,
        kind: KernelKind,
    ) -> None:
        self._append_record(
            KernelRecord(
                gpu, rank, kind, start, end,
                task.iteration, task.microbatch, task.stage,
            )
        )

    # ------------------------------------------------------------------
    # Physics loop
    # ------------------------------------------------------------------

    def _prewarm(self) -> None:
        """Initialise die temperatures at a busy-cluster steady state."""
        node = self.cluster.node
        busy = Activity(compute=self.settings.prewarm_busy_fraction)
        freq = 1.0
        if self._powerctl is not None:
            # Prewarm stands in for earlier governed iterations, so the
            # equilibrium estimate runs at the governed clock.
            freq = float(np.mean(self._powerctl.setpoints))
        self._physics.prewarm(gpu_power(node.gpu, busy, freq))

    def _advance_physics(self, to_time: float) -> None:
        dt = self.settings.physics_dt_s
        while to_time - self._phys_time >= dt:
            self._physics_step(dt)

    def _flush_physics(self, end_time: float) -> None:
        remaining = end_time - self._phys_time
        if remaining > 1e-9:
            self._physics_step(remaining)

    def _physics_step(self, dt: float) -> None:
        if self._faultrt is not None:
            self._faultrt.apply_boundaries(self._phys_time, self._physics)
        if self._fast:
            if self._activity_dirty:
                self._power_vec.refresh_intensity(
                    self._compute_active,
                    self._comm_active,
                    self._memory_active,
                )
                self._activity_dirty = False
            physics = self._physics
            powers = self._power_vec.powers(physics.freq_flat)
            physics.step(dt, powers)
            self._last_power = powers
        else:
            # ScalarPhysics writes per-GPU powers into the bound
            # self._last_power list as a side effect.
            self._physics.step(dt, self._activity_of_ref)
        self._phys_time += dt
        if self._phys_time >= self._next_sample:
            self._sample_telemetry(self._phys_time)
            self._next_sample += self.settings.telemetry_interval_s
        if self._powerctl is not None:
            self._powerctl_tick(dt)

    def _powerctl_tick(self, dt: float) -> None:
        """Accrue governor inputs; actuate every control interval."""
        if self._busy_time is not None:
            self._busy_time += dt * (np.asarray(self._compute_active) > 0)
        self._control_elapsed += dt
        if self._phys_time + 1e-9 < self._next_control:
            return
        runtime = self._powerctl
        if self._fast:
            temps = self._physics.die_c.reshape(-1)
            freqs = self._physics.freq_flat
        else:
            num = self.cluster.total_gpus
            temps = np.array(
                [self._physics.temp_of(g) for g in range(num)]
            )
            freqs = np.array(
                [self._physics.freq_of(g) for g in range(num)]
            )
        busy = None
        if self._busy_time is not None and self._control_elapsed > 0:
            busy = self._busy_time / self._control_elapsed
        new = runtime.control(
            PowerCtlObservation(
                time_s=self._phys_time,
                temps_c=temps,
                freq_ratio=freqs,
                power_w=np.asarray(self._last_power),
                busy_fraction=busy,
                dt_s=self._control_elapsed,
            )
        )
        if new is not None:
            self._physics.set_setpoints(new)
        if self._busy_time is not None:
            self._busy_time[:] = 0.0
        self._control_elapsed = 0.0
        self._next_control = (
            self._phys_time + runtime.config.control_interval_s
        )

    def _sample_telemetry(self, time_s: float) -> None:
        if self._fast:
            physics = self._physics
            self.telemetry.record_step(
                time_s,
                self._last_power,
                physics.die_c.reshape(-1),
                physics.freq_flat,
                np.asarray(self._compute_active) > 0,
                np.asarray(self._comm_active) > 0,
                np.maximum(np.asarray(self._pcie_rate), 0.0),
            )
            return
        for gpu in range(self.cluster.total_gpus):
            self.telemetry.record(
                gpu,
                GpuSample(
                    time_s=time_s,
                    power_w=self._last_power[gpu],
                    temp_c=self._physics.temp_of(gpu),
                    freq_ratio=self._physics.freq_of(gpu),
                    compute_util=(
                        1.0 if self._compute_active[gpu] > 0 else 0.0
                    ),
                    comm_util=1.0 if self._comm_active[gpu] > 0 else 0.0,
                    pcie_bytes_per_s=max(0.0, self._pcie_rate[gpu]),
                ),
            )

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def _push(self, time_s: float, name: str, payload: tuple) -> None:
        heapq.heappush(self._heap, (time_s, next(self._seq), name, payload))

    def _check_finished(self) -> None:
        stuck = [
            rank
            for rank in range(self.world)
            if self._pos[rank] < len(self.graph.queues[rank])
        ]
        if stuck:
            details = []
            for rank in stuck[:8]:
                task = self.graph.queues[rank][self._pos[rank]]
                details.append(
                    f"rank {rank} stuck at task {task.uid} "
                    f"({task.kind.value}/{task.kernel.value})"
                )
            raise DeadlockError(
                f"{len(stuck)} ranks never finished: " + "; ".join(details)
            )


def simulate(
    mesh: DeviceMesh, graph: TaskGraph, settings: SimSettings | None = None
) -> SimOutcome:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(mesh, graph, settings).run()
