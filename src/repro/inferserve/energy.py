"""Deprecated home of the serving setpoint search.

The search engine moved to :mod:`repro.optimize.serving` when it
became the serving refinement stage of the joint optimizer
(``repro.api.OptimizeRequest`` with ``kind='serving'``). The
dataclasses are re-exported here unchanged;
``search_serving_setpoint`` remains as a warn-once
:class:`DeprecationWarning` shim over
:func:`repro.optimize.optimize_serving_setpoint` with identical
behaviour and cache keys (docs/api.md has the migration table).
"""

from __future__ import annotations

from repro.optimize.serving import (
    GOLDEN,
    ServingSearchOutcome,
    ServingSearchSettings,
    ServingSetpointProbe,
    optimize_serving_setpoint,
)

__all__ = [
    "GOLDEN",
    "ServingSearchOutcome",
    "ServingSearchSettings",
    "ServingSetpointProbe",
    "search_serving_setpoint",
]


def search_serving_setpoint(*args, **kwargs) -> ServingSearchOutcome:
    """Deprecated alias for
    :func:`repro.optimize.optimize_serving_setpoint`.

    Same signature, behaviour, and cache addressing; emits a one-time
    :class:`DeprecationWarning`.
    """
    from repro import api

    api.warn_deprecated("inferserve.search_serving_setpoint")
    return optimize_serving_setpoint(*args, **kwargs)
