"""Configuration schema for the serving simulator.

One frozen, JSON-round-trippable :class:`ServingConfig` describes a
deployment: the arrival trace, the batching engine, SLO targets, the
autoscaler, and the DVFS setpoint. It is the payload behind
``SimRequest(kind="serving")`` and the unit the result cache addresses.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.inferserve.traces import TraceConfig
from repro.suggest import normalize_name, unknown_name_message

__all__ = [
    "SCHEDULERS",
    "AutoscaleConfig",
    "BatcherConfig",
    "ServingConfig",
    "SloConfig",
]

#: Batching disciplines: iteration-level continuous batching (requests
#: join and leave the running batch every decode step) vs. the
#: run-to-completion baseline (a batch admits once and drains fully).
SCHEDULERS = ("continuous", "run_to_completion")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def _from_mapping(cls, data: Mapping[str, Any], label: str):
    known = {spec.name for spec in fields(cls)}
    for key in data:
        if key not in known:
            raise ValueError(
                f"{label}: "
                + unknown_name_message(f"{label} field", key, sorted(known))
            )
    return cls(**dict(data))


@dataclass(frozen=True)
class BatcherConfig:
    """Continuous-batching engine parameters.

    Attributes:
        scheduler: batching discipline (see :data:`SCHEDULERS`).
        gpus_per_replica: tensor-parallel width of one replica.
        max_batch_requests: in-flight request ceiling per replica.
        decode_quantum_tokens: decode steps folded into one scheduling
            round; admission happens at round boundaries (iteration-
            level scheduling with a coarser clock keeps long traces
            cheap without changing steady-state behaviour).
        kv_headroom_fraction: share of post-weights HBM granted to the
            KV cache.
        admission_queue_limit: pending-queue depth beyond which new
            arrivals are rejected (0 disables rejection).
        disaggregated: split replicas into a prefill pool and a decode
            pool (Splitwise-style) instead of colocating both phases.
        prefill_replica_fraction: share of replicas in the prefill pool
            when disaggregated.
    """

    scheduler: str = "continuous"
    gpus_per_replica: int = 4
    max_batch_requests: int = 64
    decode_quantum_tokens: int = 8
    kv_headroom_fraction: float = 0.9
    admission_queue_limit: int = 0
    disaggregated: bool = False
    prefill_replica_fraction: float = 0.25

    def __post_init__(self) -> None:
        scheduler = normalize_name(str(self.scheduler)).replace("-", "_")
        if scheduler not in SCHEDULERS:
            raise ValueError(
                unknown_name_message("scheduler", self.scheduler, SCHEDULERS)
            )
        object.__setattr__(self, "scheduler", scheduler)
        _require(self.gpus_per_replica >= 1,
                 "gpus_per_replica must be >= 1")
        _require(self.max_batch_requests >= 1,
                 "max_batch_requests must be >= 1")
        _require(self.decode_quantum_tokens >= 1,
                 "decode_quantum_tokens must be >= 1")
        _require(0 < self.kv_headroom_fraction <= 1,
                 f"kv_headroom_fraction must be in (0, 1], got "
                 f"{self.kv_headroom_fraction:g}")
        _require(self.admission_queue_limit >= 0,
                 "admission_queue_limit must be >= 0 (0 disables)")
        _require(0 < self.prefill_replica_fraction < 1,
                 f"prefill_replica_fraction must be in (0, 1), got "
                 f"{self.prefill_replica_fraction:g}")
        _require(not (self.disaggregated
                      and scheduler == "run_to_completion"),
                 "disaggregated mode implies continuous batching "
                 "(run_to_completion is the colocated baseline)")


@dataclass(frozen=True)
class SloConfig:
    """Latency objectives goodput is measured against.

    Attributes:
        ttft_p99_s: time-to-first-token target; a request is "good"
            only if its TTFT is within this bound.
        tpot_p99_s: time-per-output-token target over the decode phase.
    """

    ttft_p99_s: float = 2.0
    tpot_p99_s: float = 0.2

    def __post_init__(self) -> None:
        _require(self.ttft_p99_s > 0 and self.tpot_p99_s > 0,
                 "SLO targets must be positive")


@dataclass(frozen=True)
class AutoscaleConfig:
    """Reactive queue-depth autoscaler parameters.

    Attributes:
        enabled: scale the replica count at runtime; when off the
            deployment stays at ``ServingConfig.replicas``.
        min_replicas / max_replicas: scaling bounds (``max_replicas``
            additionally clips to what the cluster can host).
        interval_s: evaluation cadence.
        queue_high / queue_low: pending requests per active replica
            that trigger scale-up / allow scale-down (hysteresis band).
        scaleup_delay_s: provisioning delay before a new replica
            starts serving (model load, KV-cache warmup).
    """

    enabled: bool = False
    min_replicas: int = 1
    max_replicas: int = 64
    interval_s: float = 30.0
    queue_high: float = 4.0
    queue_low: float = 0.5
    scaleup_delay_s: float = 60.0

    def __post_init__(self) -> None:
        _require(self.min_replicas >= 1, "min_replicas must be >= 1")
        _require(self.max_replicas >= self.min_replicas,
                 "max_replicas must be >= min_replicas")
        _require(self.interval_s > 0, "interval_s must be positive")
        _require(self.queue_high > self.queue_low >= 0,
                 "need queue_high > queue_low >= 0 (hysteresis band)")
        _require(self.scaleup_delay_s >= 0,
                 "scaleup_delay_s must be >= 0")


@dataclass(frozen=True)
class ServingConfig:
    """One serving deployment: trace + batcher + SLO + autoscaler.

    Attributes:
        trace: arrival process (see :class:`TraceConfig`).
        batcher: batching engine knobs.
        slo: latency targets.
        autoscale: autoscaler; disabled by default (static provisioning
            at ``replicas``).
        replicas: initial replica count.
        freq_setpoint: DVFS clock cap in (0, 1] applied to every
            serving GPU (the axis the energy search optimises).
        sample_interval_s: telemetry sampling cadence.
    """

    trace: TraceConfig = field(default_factory=TraceConfig)
    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    slo: SloConfig = field(default_factory=SloConfig)
    autoscale: AutoscaleConfig = field(default_factory=AutoscaleConfig)
    replicas: int = 2
    freq_setpoint: float = 1.0
    sample_interval_s: float = 10.0

    def __post_init__(self) -> None:
        _require(isinstance(self.trace, TraceConfig),
                 "trace must be a TraceConfig")
        _require(isinstance(self.batcher, BatcherConfig),
                 "batcher must be a BatcherConfig")
        _require(isinstance(self.slo, SloConfig),
                 "slo must be an SloConfig")
        _require(isinstance(self.autoscale, AutoscaleConfig),
                 "autoscale must be an AutoscaleConfig")
        _require(self.replicas >= 1, "replicas must be >= 1")
        if self.autoscale.enabled:
            _require(
                self.autoscale.min_replicas <= self.replicas
                <= self.autoscale.max_replicas,
                "replicas must start inside "
                "[min_replicas, max_replicas]",
            )
        _require(0 < self.freq_setpoint <= 1.0,
                 f"freq_setpoint must be in (0, 1], got "
                 f"{self.freq_setpoint:g}")
        _require(self.sample_interval_s > 0,
                 "sample_interval_s must be positive")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServingConfig":
        known = {spec.name for spec in fields(cls)}
        kwargs: dict = {}
        for key, value in dict(data).items():
            if key not in known:
                raise ValueError(
                    "serving: "
                    + unknown_name_message(
                        "serving field", key, sorted(known)
                    )
                )
            kwargs[key] = value
        if isinstance(kwargs.get("trace"), Mapping):
            kwargs["trace"] = TraceConfig.from_dict(kwargs["trace"])
        if isinstance(kwargs.get("batcher"), Mapping):
            kwargs["batcher"] = _from_mapping(
                BatcherConfig, kwargs["batcher"], "batcher"
            )
        if isinstance(kwargs.get("slo"), Mapping):
            kwargs["slo"] = _from_mapping(SloConfig, kwargs["slo"], "slo")
        if isinstance(kwargs.get("autoscale"), Mapping):
            kwargs["autoscale"] = _from_mapping(
                AutoscaleConfig, kwargs["autoscale"], "autoscale"
            )
        return cls(**kwargs)
