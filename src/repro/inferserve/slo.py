"""Serving latency metrics: TTFT / TPOT / E2E percentiles and goodput.

Definitions follow the serving literature:

* **TTFT** (time to first token): arrival to the first decoded token —
  queueing plus prefill plus the first decode step.
* **TPOT** (time per output token): decode-phase time divided by
  tokens generated; the streaming cadence the user perceives.
* **E2E**: arrival to last token.
* **Goodput**: completed requests whose TTFT *and* TPOT meet the SLO,
  per second of trace — throughput that actually counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.inferserve.config import SloConfig

__all__ = ["LatencyStats", "SloReport", "build_slo_report", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (nearest-rank) of ``values``; 0 if empty."""
    if not values:
        return 0.0
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q:g}")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, math.ceil(q / 100.0 * len(ordered)) - 1)
    return ordered[max(0, rank)]


@dataclass(frozen=True)
class LatencyStats:
    """p50/p90/p99 summary of one latency population (seconds)."""

    p50: float
    p90: float
    p99: float
    mean: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "LatencyStats":
        mean = sum(values) / len(values) if values else 0.0
        return cls(
            p50=percentile(values, 50),
            p90=percentile(values, 90),
            p99=percentile(values, 99),
            mean=mean,
        )


@dataclass(frozen=True)
class SloReport:
    """SLO attainment over one serving run.

    Attributes:
        ttft / tpot / e2e: percentile summaries of the completed
            requests.
        completed: requests that finished inside the horizon.
        good: completed requests meeting both SLO targets.
        goodput_per_s: good requests per second of trace.
        attainment: good / completed (1.0 when nothing completed,
            so an idle deployment is not "failing" its SLO).
    """

    ttft: LatencyStats
    tpot: LatencyStats
    e2e: LatencyStats
    completed: int
    good: int
    goodput_per_s: float
    attainment: float


def build_slo_report(
    ttft_s: Sequence[float],
    tpot_s: Sequence[float],
    e2e_s: Sequence[float],
    slo: SloConfig,
    duration_s: float,
) -> SloReport:
    """Summarise per-request latencies against the SLO targets."""
    if not len(ttft_s) == len(tpot_s) == len(e2e_s):
        raise ValueError("latency populations must align per request")
    good = sum(
        1
        for ttft, tpot in zip(ttft_s, tpot_s)
        if ttft <= slo.ttft_p99_s and tpot <= slo.tpot_p99_s
    )
    completed = len(ttft_s)
    return SloReport(
        ttft=LatencyStats.of(ttft_s),
        tpot=LatencyStats.of(tpot_s),
        e2e=LatencyStats.of(e2e_s),
        completed=completed,
        good=good,
        goodput_per_s=good / duration_s if duration_s > 0 else 0.0,
        attainment=good / completed if completed else 1.0,
    )
