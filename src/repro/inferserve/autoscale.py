"""Reactive replica autoscaling driven by queue depth.

The scaler evaluates on a fixed cadence: when pending requests per
active replica cross ``queue_high`` it requests one more replica
(subject to a provisioning delay — model load is not free); when the
queue drains below ``queue_low`` it retires one. The hysteresis band
between the thresholds prevents flapping on diurnal shoulders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.inferserve.config import AutoscaleConfig

__all__ = ["Autoscaler", "ScaleEvent"]


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling decision.

    Attributes:
        time_s: when the decision took effect (scale-ups land after
            the provisioning delay).
        direction: ``+1`` for scale-up, ``-1`` for scale-down.
        replicas: active replica count after the event.
        queue_depth: pending requests observed at decision time.
    """

    time_s: float
    direction: int
    replicas: int
    queue_depth: int


class Autoscaler:
    """Queue-depth autoscaler state machine.

    Drive it from the simulation loop: :meth:`next_eval_s` says when to
    call :meth:`evaluate`, which returns the new *target* active-replica
    count; pending scale-ups mature via :meth:`pending_activation_s`.
    """

    def __init__(self, config: AutoscaleConfig, initial_replicas: int,
                 capacity: int) -> None:
        self.config = config
        self.active = initial_replicas
        self.capacity = min(capacity, config.max_replicas)
        self.events: list[ScaleEvent] = []
        self._next_eval_s = config.interval_s
        self._activation_due_s: float | None = None

    @property
    def next_eval_s(self) -> float:
        return self._next_eval_s

    def pending_activation_s(self) -> float | None:
        """When the in-flight scale-up lands (None when none pending)."""
        return self._activation_due_s

    def complete_activation(self, now_s: float,
                            queue_depth: int) -> int:
        """Mature the pending scale-up; returns the new active count."""
        if self._activation_due_s is None:
            return self.active
        self.active += 1
        self._activation_due_s = None
        self.events.append(ScaleEvent(
            time_s=now_s, direction=1, replicas=self.active,
            queue_depth=queue_depth,
        ))
        return self.active

    def evaluate(self, now_s: float, queue_depth: int) -> int:
        """One scaling decision; returns the active replica count.

        Scale-downs apply immediately (draining is modelled as free:
        the retired replica finishes its in-flight work but admits no
        more). Scale-ups are deferred by the provisioning delay.
        """
        self._next_eval_s = now_s + self.config.interval_s
        if not self.config.enabled:
            return self.active
        per_replica = queue_depth / max(1, self.active)
        scaling_up = self._activation_due_s is not None
        if (per_replica > self.config.queue_high
                and not scaling_up
                and self.active < self.capacity):
            if self.config.scaleup_delay_s == 0:
                self.active += 1
                self.events.append(ScaleEvent(
                    time_s=now_s, direction=1, replicas=self.active,
                    queue_depth=queue_depth,
                ))
            else:
                self._activation_due_s = (
                    now_s + self.config.scaleup_delay_s
                )
        elif (per_replica < self.config.queue_low
                and not scaling_up
                and self.active > self.config.min_replicas):
            self.active -= 1
            self.events.append(ScaleEvent(
                time_s=now_s, direction=-1, replicas=self.active,
                queue_depth=queue_depth,
            ))
        return self.active
