"""Result types of one serving simulation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.store import register_result_type
from repro.inferserve.autoscale import ScaleEvent
from repro.inferserve.config import ServingConfig
from repro.inferserve.slo import SloReport

__all__ = [
    "EnergyReport",
    "ReplicaStats",
    "RequestRecord",
    "ServingMetrics",
    "ServingOutcome",
    "ServingSample",
]


@dataclass(frozen=True)
class RequestRecord:
    """Fate of one request through the batcher.

    Attributes:
        index: position in the arrival trace.
        arrival_s / prompt_tokens / decode_tokens: the request itself.
        replica: replica that completed it (-1 when rejected).
        ttft_s: arrival to first decoded token.
        tpot_s: decode-phase seconds per output token.
        e2e_s: arrival to last token.
        finish_s: absolute completion time.
        preemptions: times the request was evicted under KV pressure.
        rejected: dropped at admission (queue overflow).
    """

    index: int
    arrival_s: float
    prompt_tokens: int
    decode_tokens: int
    replica: int = -1
    ttft_s: float = 0.0
    tpot_s: float = 0.0
    e2e_s: float = 0.0
    finish_s: float = 0.0
    preemptions: int = 0
    rejected: bool = False


@dataclass(frozen=True)
class ServingSample:
    """One telemetry sample of deployment state.

    ``arrived == completed + rejected + queued + in_flight`` holds at
    every sample (request conservation).
    """

    time_s: float
    arrived: int
    completed: int
    rejected: int
    queued: int
    in_flight: int
    active_replicas: int
    kv_utilization: float
    energy_j: float
    power_w: float


@dataclass(frozen=True)
class ReplicaStats:
    """Aggregate load of one replica over the run."""

    index: int
    pool: str
    served: int
    busy_prefill_s: float
    busy_decode_s: float
    active_s: float
    kv_peak_fraction: float


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting joined with the power model.

    Attributes:
        energy_j: total deployment energy over the makespan.
        idle_energy_j: baseline draw of active (provisioned) GPUs.
        dynamic_energy_j: above-idle draw of busy phases; exactly zero
            for an empty trace.
        tokens_prefilled / tokens_decoded: useful token work.
        energy_per_token_j: energy over all processed tokens (inf when
            no tokens moved).
        mean_power_w: energy over the makespan.
        mean_temp_c / peak_temp_c: steady-state die-temperature
            estimates from the thermal resistance model.
    """

    energy_j: float
    idle_energy_j: float
    dynamic_energy_j: float
    tokens_prefilled: int
    tokens_decoded: int
    energy_per_token_j: float
    mean_power_w: float
    mean_temp_c: float
    peak_temp_c: float


@dataclass(frozen=True)
class ServingMetrics:
    """Flat, JSON-friendly summary (the broker serialises this)."""

    arrived: int
    completed: int
    rejected: int
    preemptions: int
    goodput_per_s: float
    slo_attainment: float
    ttft_p50_s: float
    ttft_p99_s: float
    tpot_p99_s: float
    e2e_p99_s: float
    tokens_decoded: int
    energy_j: float
    energy_per_token_j: float
    mean_power_w: float
    active_replica_seconds: float


@register_result_type
@dataclass(frozen=True)
class ServingOutcome:
    """Everything one serving simulation produced.

    Registered with the persistent result store: ``"serve"`` runs cache
    whole outcomes on disk, same as ``"train"``/``"infer"`` cache
    :class:`~repro.core.results.RunResult`.

    Attributes:
        model / cluster: catalog names of the deployment.
        config: the full request (trace, batcher, SLO, autoscaler).
        arrived / completed / rejected / preemptions: request counters.
        slo: latency percentiles and goodput (completed requests).
        energy: energy-per-token accounting.
        requests: per-request records, trace order.
        samples: telemetry timeline.
        replicas: per-replica load summaries.
        scale_events: autoscaler decisions.
        duration_s: trace horizon.
        makespan_s: horizon extended to the last completion (drain).
    """

    model: str
    cluster: str
    config: ServingConfig
    arrived: int
    completed: int
    rejected: int
    preemptions: int
    slo: SloReport
    energy: EnergyReport
    requests: tuple[RequestRecord, ...]
    samples: tuple[ServingSample, ...]
    replicas: tuple[ReplicaStats, ...]
    scale_events: tuple[ScaleEvent, ...]
    duration_s: float
    makespan_s: float

    def metrics(self) -> ServingMetrics:
        """Flat summary for tables, JSON output, and the broker."""
        return ServingMetrics(
            arrived=self.arrived,
            completed=self.completed,
            rejected=self.rejected,
            preemptions=self.preemptions,
            goodput_per_s=self.slo.goodput_per_s,
            slo_attainment=self.slo.attainment,
            ttft_p50_s=self.slo.ttft.p50,
            ttft_p99_s=self.slo.ttft.p99,
            tpot_p99_s=self.slo.tpot.p99,
            e2e_p99_s=self.slo.e2e.p99,
            tokens_decoded=self.energy.tokens_decoded,
            energy_j=self.energy.energy_j,
            energy_per_token_j=self.energy.energy_per_token_j,
            mean_power_w=self.energy.mean_power_w,
            active_replica_seconds=sum(
                r.active_s for r in self.replicas
            ),
        )
