"""Seeded request-arrival traces for the serving simulator.

Three arrival processes cover the serving regimes the efficiency
literature cares about:

* ``poisson`` — memoryless arrivals at a constant mean rate, the
  baseline for queueing analysis;
* ``diurnal`` — a sinusoidal day/night cycle scaled from a
  users-per-day figure (production traffic from millions of users peaks
  near mid-day at roughly twice the trough), sampled by thinning;
* ``bursty`` — a two-state Markov-modulated Poisson process (calm /
  burst) reproducing the correlated request storms autoscalers have to
  absorb.

Every generator is deterministic for a seed, and a generated
:class:`RequestTrace` round-trips losslessly through JSON, so traces
can be archived next to results the way fault timelines are.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, fields
from typing import Any, Iterator, Mapping

from repro.suggest import normalize_name, unknown_name_message

__all__ = [
    "TRACE_KINDS",
    "Request",
    "RequestTrace",
    "TraceConfig",
    "generate_trace",
    "rate_from_daily_users",
]

TRACE_KINDS = ("poisson", "diurnal", "bursty")

SECONDS_PER_DAY = 86400.0


def rate_from_daily_users(
    daily_users: float, requests_per_user: float = 1.0
) -> float:
    """Mean request rate (req/s) for a daily active-user count."""
    if daily_users <= 0 or requests_per_user <= 0:
        raise ValueError("user and request counts must be positive")
    return daily_users * requests_per_user / SECONDS_PER_DAY


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of one arrival trace.

    Attributes:
        kind: arrival process (see :data:`TRACE_KINDS`).
        duration_s: trace horizon.
        mean_rate_per_s: long-run mean arrival rate.
        seed: RNG seed; same seed, same trace.
        prompt_tokens_mean / decode_tokens_mean: geometric means of the
            per-request prompt and decode lengths (floors of 1 token).
        diurnal_amplitude: peak-to-mean swing of the day cycle in
            [0, 1); 0.5 gives the canonical 2:1 peak-to-trough ratio.
        diurnal_period_s: cycle length (a day unless compressed).
        burst_rate_multiplier: burst-state rate over the calm rate.
        burst_mean_s / calm_mean_s: mean sojourn in each MMPP state.
    """

    kind: str = "poisson"
    duration_s: float = 600.0
    mean_rate_per_s: float = 1.0
    seed: int = 0
    prompt_tokens_mean: int = 512
    decode_tokens_mean: int = 128
    diurnal_amplitude: float = 0.5
    diurnal_period_s: float = SECONDS_PER_DAY
    burst_rate_multiplier: float = 4.0
    burst_mean_s: float = 30.0
    calm_mean_s: float = 120.0

    def __post_init__(self) -> None:
        kind = normalize_name(str(self.kind))
        if kind not in TRACE_KINDS:
            raise ValueError(
                unknown_name_message("trace kind", self.kind, TRACE_KINDS)
            )
        object.__setattr__(self, "kind", kind)
        _require(self.duration_s > 0, "duration_s must be positive")
        _require(self.mean_rate_per_s > 0,
                 "mean_rate_per_s must be positive")
        _require(self.prompt_tokens_mean >= 1 and self.decode_tokens_mean >= 1,
                 "token means must be >= 1")
        _require(0 <= self.diurnal_amplitude < 1,
                 f"diurnal_amplitude must be in [0, 1), got "
                 f"{self.diurnal_amplitude:g}")
        _require(self.diurnal_period_s > 0,
                 "diurnal_period_s must be positive")
        _require(self.burst_rate_multiplier >= 1,
                 "burst_rate_multiplier must be >= 1")
        _require(self.burst_mean_s > 0 and self.calm_mean_s > 0,
                 "MMPP sojourn means must be positive")

    def to_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceConfig":
        known = {spec.name for spec in fields(cls)}
        for key in data:
            if key not in known:
                raise ValueError(
                    "trace: "
                    + unknown_name_message("trace field", key, sorted(known))
                )
        return cls(**dict(data))


@dataclass(frozen=True)
class Request:
    """One inference request: when it arrives and how big it is."""

    arrival_s: float
    prompt_tokens: int
    decode_tokens: int

    def __post_init__(self) -> None:
        _require(self.arrival_s >= 0, "arrival_s must be >= 0")
        _require(self.prompt_tokens >= 1 and self.decode_tokens >= 1,
                 "token counts must be >= 1")

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.decode_tokens


@dataclass(frozen=True)
class RequestTrace:
    """An immutable, time-ordered request stream plus its provenance."""

    config: TraceConfig
    requests: tuple[Request, ...]

    def __post_init__(self) -> None:
        arrivals = [r.arrival_s for r in self.requests]
        _require(arrivals == sorted(arrivals),
                 "requests must be time-ordered")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    @property
    def total_tokens(self) -> int:
        return sum(r.total_tokens for r in self.requests)

    @property
    def mean_rate_per_s(self) -> float:
        return len(self.requests) / self.config.duration_s

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "requests": [
                [r.arrival_s, r.prompt_tokens, r.decode_tokens]
                for r in self.requests
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RequestTrace":
        config = TraceConfig.from_dict(data["config"])
        requests = tuple(
            Request(arrival_s=row[0], prompt_tokens=row[1],
                    decode_tokens=row[2])
            for row in data["requests"]
        )
        return cls(config=config, requests=requests)

    @classmethod
    def from_json(cls, text: str) -> "RequestTrace":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"invalid trace JSON: {error}") from None
        if not isinstance(data, dict):
            raise ValueError("trace JSON must be an object")
        return cls.from_dict(data)


def _draw_tokens(rng: random.Random, mean: int) -> int:
    """Geometric-ish request length: exponential with a 1-token floor."""
    return max(1, int(round(rng.expovariate(1.0 / mean))))


def _poisson_arrivals(config: TraceConfig,
                      rng: random.Random) -> list[float]:
    arrivals: list[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(config.mean_rate_per_s)
        if t >= config.duration_s:
            return arrivals
        arrivals.append(t)


def _diurnal_arrivals(config: TraceConfig,
                      rng: random.Random) -> list[float]:
    # Thinning against the cycle's peak rate; the sinusoid's mean is
    # exactly mean_rate_per_s, peaking mid-period.
    peak = config.mean_rate_per_s * (1.0 + config.diurnal_amplitude)
    omega = 2.0 * math.pi / config.diurnal_period_s
    arrivals: list[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(peak)
        if t >= config.duration_s:
            return arrivals
        rate = config.mean_rate_per_s * (
            1.0 - config.diurnal_amplitude * math.cos(omega * t)
        )
        if rng.random() < rate / peak:
            arrivals.append(t)


def _bursty_arrivals(config: TraceConfig,
                     rng: random.Random) -> list[float]:
    # Two-state MMPP whose time-weighted mean matches mean_rate_per_s.
    calm_frac = config.calm_mean_s / (config.calm_mean_s +
                                      config.burst_mean_s)
    burst_frac = 1.0 - calm_frac
    calm_rate = config.mean_rate_per_s / (
        calm_frac + burst_frac * config.burst_rate_multiplier
    )
    burst_rate = calm_rate * config.burst_rate_multiplier
    arrivals: list[float] = []
    t = 0.0
    in_burst = False
    state_end = rng.expovariate(1.0 / config.calm_mean_s)
    while t < config.duration_s:
        rate = burst_rate if in_burst else calm_rate
        t += rng.expovariate(rate)
        while t >= state_end:
            in_burst = not in_burst
            mean = (config.burst_mean_s if in_burst
                    else config.calm_mean_s)
            state_end += rng.expovariate(1.0 / mean)
        if t < config.duration_s:
            arrivals.append(t)
    return arrivals


_GENERATORS = {
    "poisson": _poisson_arrivals,
    "diurnal": _diurnal_arrivals,
    "bursty": _bursty_arrivals,
}


def generate_trace(config: TraceConfig) -> RequestTrace:
    """Generate the seeded request stream ``config`` describes."""
    rng = random.Random(config.seed)
    arrivals = _GENERATORS[config.kind](config, rng)
    requests = tuple(
        Request(
            arrival_s=t,
            prompt_tokens=_draw_tokens(rng, config.prompt_tokens_mean),
            decode_tokens=_draw_tokens(rng, config.decode_tokens_mean),
        )
        for t in arrivals
    )
    return RequestTrace(config=config, requests=requests)
