"""Canonical serving execution: one deployment simulation.

:func:`execute_serving` is the single place a serving simulation is
assembled and run — the ``"serve"`` kind behind
:func:`repro.core.sweep.cached_run` and
``SimRequest(kind="serving")``, mirroring how
:func:`repro.core.experiment.execute_training` backs ``"train"``.
"""

from __future__ import annotations

from repro.hardware.cluster import ClusterSpec, get_cluster
from repro.inferserve.batcher import simulate_serving_deployment
from repro.inferserve.config import ServingConfig
from repro.inferserve.outcome import ServingOutcome
from repro.models.catalog import get_model
from repro.models.config import ModelConfig

__all__ = ["execute_serving"]


def execute_serving(
    model: ModelConfig | str,
    cluster: ClusterSpec | str,
    config: ServingConfig | None = None,
) -> ServingOutcome:
    """Simulate an LLM serving deployment and return its outcome.

    Args:
        model: catalog name or :class:`ModelConfig` being served.
        cluster: catalog name or :class:`ClusterSpec` hosting it.
        config: deployment description (trace, batcher, SLO,
            autoscaler, DVFS setpoint); defaults apply when omitted.

    Returns:
        A :class:`ServingOutcome` with SLO percentiles, goodput,
        energy-per-token, and per-request/per-replica detail.
    """
    if isinstance(model, str):
        model = get_model(model)
    if isinstance(cluster, str):
        cluster = get_cluster(cluster)
    if config is None:
        config = ServingConfig()
    if not isinstance(config, ServingConfig):
        raise TypeError(
            f"config must be a ServingConfig, got "
            f"{type(config).__name__}"
        )
    return simulate_serving_deployment(model, cluster, config)
