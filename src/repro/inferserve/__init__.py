"""Inference serving as a first-class workload.

Continuous batching with KV-cache pressure, prefill/decode
disaggregation, diurnal request traces, SLO goodput, reactive
autoscaling, and energy-per-token under DVFS — the serving-side
counterpart of the training simulator, sharing the same hardware,
power, and thermal models. See docs/inferserve.md.
"""

from repro.inferserve.autoscale import Autoscaler, ScaleEvent
from repro.inferserve.batcher import (
    serving_capacity_replicas,
    simulate_serving_deployment,
)
from repro.inferserve.config import (
    SCHEDULERS,
    AutoscaleConfig,
    BatcherConfig,
    ServingConfig,
    SloConfig,
)
from repro.inferserve.energy import (
    ServingSearchOutcome,
    ServingSearchSettings,
    ServingSetpointProbe,
    search_serving_setpoint,
)
from repro.inferserve.engine import execute_serving
from repro.inferserve.outcome import (
    EnergyReport,
    ReplicaStats,
    RequestRecord,
    ServingMetrics,
    ServingOutcome,
    ServingSample,
)
from repro.inferserve.slo import (
    LatencyStats,
    SloReport,
    build_slo_report,
    percentile,
)
from repro.inferserve.static_router import (
    ROUTERS,
    RouterOutcome,
    StaticRouterConfig,
    compare_routers,
    simulate_static_routing,
)
from repro.inferserve.traces import (
    TRACE_KINDS,
    Request,
    RequestTrace,
    TraceConfig,
    generate_trace,
    rate_from_daily_users,
)

__all__ = [
    "ROUTERS",
    "SCHEDULERS",
    "TRACE_KINDS",
    "Autoscaler",
    "AutoscaleConfig",
    "BatcherConfig",
    "EnergyReport",
    "LatencyStats",
    "ReplicaStats",
    "Request",
    "RequestRecord",
    "RequestTrace",
    "RouterOutcome",
    "ScaleEvent",
    "ServingConfig",
    "ServingMetrics",
    "ServingOutcome",
    "ServingSample",
    "ServingSearchOutcome",
    "ServingSearchSettings",
    "ServingSetpointProbe",
    "SloConfig",
    "SloReport",
    "StaticRouterConfig",
    "TraceConfig",
    "build_slo_report",
    "compare_routers",
    "execute_serving",
    "generate_trace",
    "percentile",
    "rate_from_daily_users",
    "search_serving_setpoint",
    "serving_capacity_replicas",
    "simulate_serving_deployment",
    "simulate_static_routing",
]
