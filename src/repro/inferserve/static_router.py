"""Static replica routing: the thermal-aware baseline scheduler.

This is the pre-batching serving model (paper Section 7.2's proposal),
folded into :mod:`repro.inferserve` as the ``static`` baseline: a
cluster is partitioned into fixed replicas, batched requests arrive on
a seeded Poisson process, and a router assigns each batch whole to a
replica — no continuous batching, no KV accounting. Every replica
carries its own thermal state (two-node RC per GPU) and DVFS governor,
so hot replicas serve slower.

Routers:

* ``round_robin`` — the thermally oblivious baseline;
* ``least_loaded`` — shortest queue first (classic load balancing);
* ``thermal_aware`` — shortest *expected completion*: queue depth plus
  the thermally degraded service time (hot, throttled replicas serve
  slower) — the paper's proposal made concrete.

The ablation benchmark compares them on tail latency and thermal
spread. The historical spellings (``repro.inference.serving`` with
``ServingConfig`` / ``simulate_serving``) remain importable as
deprecation shims.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.hardware.cluster import ClusterSpec
from repro.power.model import Activity, gpu_power
from repro.thermal.rc_model import NodeThermalState
from repro.thermal.throttle import DvfsGovernor

__all__ = [
    "ROUTERS",
    "RouterOutcome",
    "StaticRouterConfig",
    "compare_routers",
    "simulate_static_routing",
]

ROUTERS = ("round_robin", "least_loaded", "thermal_aware")


@dataclass(frozen=True)
class StaticRouterConfig:
    """Static-routing simulation parameters.

    Attributes:
        num_replicas: independent model replicas; GPUs per replica is
            ``cluster.total_gpus / num_replicas`` (must divide).
        base_service_s: batch service time at boost clock (cool replica).
        arrival_rate_per_s: mean batch arrival rate (Poisson, seeded).
        duration_s: simulated horizon.
        router: routing policy name (see :data:`ROUTERS`).
        seed: RNG seed (arrivals are identical across routers for a
            given seed, enabling paired comparisons).
    """

    num_replicas: int
    base_service_s: float
    arrival_rate_per_s: float
    duration_s: float
    router: str = "round_robin"
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ValueError("need at least one replica")
        if self.base_service_s <= 0 or self.arrival_rate_per_s <= 0:
            raise ValueError("service time and arrival rate must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.router not in ROUTERS:
            raise ValueError(f"unknown router {self.router!r}; {ROUTERS}")


@dataclass
class RouterOutcome:
    """Aggregate results of one static-routing simulation.

    Attributes:
        completed: batches served within the horizon.
        mean_latency_s / p99_latency_s: queueing + service latency.
        mean_temp_c / peak_temp_c: replica-GPU die temperatures.
        temp_spread_c: hottest minus coolest replica mean temperature.
        per_replica_served: load distribution across replicas.
    """

    completed: int
    mean_latency_s: float
    p99_latency_s: float
    mean_temp_c: float
    peak_temp_c: float
    temp_spread_c: float
    per_replica_served: list[int]


@dataclass
class _Replica:
    """One model replica: a set of GPUs in one node with thermal state."""

    index: int
    node: int
    locals_: list[int]
    thermal: NodeThermalState
    governor: DvfsGovernor
    busy_until_s: float = 0.0
    served: int = 0
    temp_samples: list[float] = field(default_factory=list)

    def mean_clock(self) -> float:
        ratios = [self.governor.freq_of(i) for i in self.locals_]
        return sum(ratios) / len(ratios)

    def mean_temp(self) -> float:
        temps = [self.thermal.temps_c[i] for i in self.locals_]
        return sum(temps) / len(temps)


def _build_replicas(cluster: ClusterSpec, num_replicas: int) -> list[_Replica]:
    per_node = cluster.node.gpus_per_node
    total = cluster.total_gpus
    if total % num_replicas:
        raise ValueError(
            f"{num_replicas} replicas do not divide {total} GPUs"
        )
    gpus_per_replica = total // num_replicas
    if gpus_per_replica > per_node:
        raise ValueError("replicas larger than a node are not supported")
    # One thermal state / governor per node, shared by its replicas.
    node_thermal = [
        NodeThermalState(cluster.node) for _ in range(cluster.num_nodes)
    ]
    node_governor = [
        DvfsGovernor(cluster.node) for _ in range(cluster.num_nodes)
    ]
    replicas = []
    for index in range(num_replicas):
        first_gpu = index * gpus_per_replica
        node = cluster.node_of(first_gpu)
        locals_ = [
            cluster.local_index(first_gpu + k)
            for k in range(gpus_per_replica)
        ]
        replicas.append(
            _Replica(
                index=index,
                node=node,
                locals_=locals_,
                thermal=node_thermal[node],
                governor=node_governor[node],
            )
        )
    return replicas


def _pick_replica(
    router: str,
    replicas: list[_Replica],
    now: float,
    rr_state: list[int],
    base_service_s: float,
) -> _Replica:
    if router == "round_robin":
        choice = replicas[rr_state[0] % len(replicas)]
        rr_state[0] += 1
        return choice
    queue_depth = {
        r.index: max(0.0, r.busy_until_s - now) for r in replicas
    }
    if router == "least_loaded":
        return min(replicas, key=lambda r: (queue_depth[r.index], r.index))

    # thermal_aware: minimise expected completion time — the queue plus
    # this replica's thermally degraded service time.
    def expected_completion(replica: _Replica) -> float:
        service = base_service_s / max(0.05, replica.mean_clock())
        return queue_depth[replica.index] + service

    return min(
        replicas, key=lambda r: (expected_completion(r), r.index)
    )


def simulate_static_routing(
    cluster: ClusterSpec, config: StaticRouterConfig
) -> RouterOutcome:
    """Run the static-routing simulation and return aggregate metrics."""
    rng = random.Random(config.seed)
    replicas = _build_replicas(cluster, config.num_replicas)
    per_node = cluster.node.gpus_per_node

    # Pre-generate arrivals so every router sees the same trace.
    arrivals: list[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(config.arrival_rate_per_s)
        if t >= config.duration_s:
            break
        arrivals.append(t)

    # Physics advances on a fixed grid; busy replicas dissipate at full
    # compute intensity, idle ones at idle power.
    dt = 0.1
    physics_time = 0.0

    def advance_physics(to_time: float) -> None:
        nonlocal physics_time
        gpu_spec = cluster.node.gpu
        while physics_time + dt <= to_time:
            for node_index in range(cluster.num_nodes):
                node_replicas = [
                    r for r in replicas if r.node == node_index
                ]
                if not node_replicas:
                    continue
                thermal = node_replicas[0].thermal
                governor = node_replicas[0].governor
                powers = [gpu_spec.idle_watts] * per_node
                for replica in node_replicas:
                    busy = replica.busy_until_s > physics_time
                    activity = (
                        Activity(compute=0.9, memory=0.3) if busy
                        else Activity()
                    )
                    for local in replica.locals_:
                        powers[local] = gpu_power(
                            gpu_spec, activity, governor.freq_of(local)
                        )
                temps = thermal.step(dt, powers)
                governor.update(dt, temps, powers)
            for replica in replicas:
                replica.temp_samples.append(replica.mean_temp())
            physics_time += dt

    latencies: list[float] = []
    rr_state = [0]
    for arrival in arrivals:
        advance_physics(arrival)
        replica = _pick_replica(
            config.router, replicas, arrival, rr_state,
            config.base_service_s,
        )
        start = max(arrival, replica.busy_until_s)
        # Hot replicas serve slower: service scales with 1/clock.
        service = config.base_service_s / max(0.05, replica.mean_clock())
        finish = start + service
        if finish <= config.duration_s:
            replica.busy_until_s = finish
            replica.served += 1
            latencies.append(finish - arrival)
    advance_physics(config.duration_s)

    if not latencies:
        raise ValueError("no batches completed; lower the service time")
    latencies.sort()
    p99 = latencies[min(len(latencies) - 1,
                        math.ceil(0.99 * len(latencies)) - 1)]
    all_temps = [t for r in replicas for t in r.temp_samples]
    replica_means = [r.mean_temp() for r in replicas]
    return RouterOutcome(
        completed=len(latencies),
        mean_latency_s=sum(latencies) / len(latencies),
        p99_latency_s=p99,
        mean_temp_c=sum(all_temps) / len(all_temps),
        peak_temp_c=max(all_temps),
        temp_spread_c=max(replica_means) - min(replica_means),
        per_replica_served=[r.served for r in replicas],
    )


def compare_routers(
    cluster: ClusterSpec, config: StaticRouterConfig
) -> dict[str, RouterOutcome]:
    """Run the same arrival trace through every router."""
    from dataclasses import replace

    return {
        router: simulate_static_routing(
            cluster, replace(config, router=router)
        )
        for router in ROUTERS
    }
