"""Continuous-batching serving engine with KV-cache pressure.

The simulator is event-driven: replicas pull work from a shared
admission queue and advance in *scheduling rounds* of
``decode_quantum_tokens`` decode steps, so a day-long trace costs
O(total tokens / quantum) rather than O(wall-clock / dt). Two
disciplines are modelled:

* ``continuous`` — iteration-level scheduling: requests join the
  running batch at round boundaries (paying their prefill inline) and
  leave the moment their last token decodes, vLLM/Orca-style;
* ``run_to_completion`` — the static-batching baseline: a batch admits
  once, every slot waits for the longest decode in the batch.

KV-cache accounting uses the models-layer memory math: a replica's
token capacity is what remains of HBM after the resident weights.
Admission reserves the prompt (plus the full decode for the first
request, guaranteeing progress); when projected in-round growth would
overflow, the newest request is preempted back to the queue and its
generated tokens are recomputed later (vLLM's recompute preemption).

``disaggregated`` mode splits the replicas into a prefill pool and a
decode pool (Splitwise-style): prompts batch on prefill replicas, then
hand their KV cache to a decode replica over the inter-node fabric.

Timing comes from :mod:`repro.inference.latency` — prefill is
compute-bound (scales with ``1/freq_setpoint``), decode streams the
active weights (clock-insensitive until the batch crosses the
arithmetic-intensity knee) — and power from :mod:`repro.power.model`,
so DVFS moves energy-per-token and TTFT exactly the way the paper's
power model says it should.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field

from repro.hardware.cluster import ClusterSpec
from repro.inference.latency import (
    decode_seconds_per_token,
    prefill_seconds,
)
from repro.inferserve.autoscale import Autoscaler
from repro.inferserve.config import ServingConfig
from repro.inferserve.outcome import (
    EnergyReport,
    ReplicaStats,
    RequestRecord,
    ServingOutcome,
    ServingSample,
)
from repro.inferserve.slo import build_slo_report
from repro.inferserve.traces import RequestTrace, generate_trace
from repro.models.config import ModelConfig
from repro.models.memory import (
    kv_cache_bytes_per_token,
    serving_kv_capacity_tokens,
)
from repro.power.model import Activity, gpu_power

__all__ = ["simulate_serving_deployment", "serving_capacity_replicas"]

#: Board activity by phase: prefill saturates the tensor cores, decode
#: is dominated by the HBM weight stream.
PREFILL_ACTIVITY = Activity(compute=1.0)
DECODE_ACTIVITY = Activity(compute=0.2, memory=1.0)

# Request lifecycle states (parallel arrays in the simulation).
_QUEUED, _RUNNING, _READY, _DONE, _REJECTED = range(5)


def serving_capacity_replicas(cluster: ClusterSpec,
                              gpus_per_replica: int) -> int:
    """How many replicas of the given width the cluster can host."""
    return cluster.total_gpus // gpus_per_replica


class _ServiceModel:
    """Phase timings of one replica at a DVFS setpoint."""

    def __init__(self, model: ModelConfig, cluster: ClusterSpec,
                 gpus_per_replica: int, freq_setpoint: float) -> None:
        gpu = cluster.node.gpu
        self.model = model
        self.gpu = gpu
        self.g = gpus_per_replica
        self.freq = freq_setpoint
        self._mem_step_s = decode_seconds_per_token(
            model, gpu, gpus_per_replica, 1
        )
        self._compute_per_token_s = (
            2.0 * model.active_params_per_token
            / (gpus_per_replica * gpu.sustained_flops)
        )
        link = cluster.inter_node_link
        self._handoff_bw = (
            link.bandwidth_bytes_per_s * link.efficiency
        )
        self._handoff_latency_s = link.latency_s
        self._kv_bytes_per_token = kv_cache_bytes_per_token(model)

    def prefill_s(self, tokens: int) -> float:
        """Prompt-processing time; compute-bound, scales with 1/f."""
        if tokens <= 0:
            return 0.0
        return prefill_seconds(
            self.model, self.gpu, self.g, 1, tokens, tp=self.g
        ) / self.freq

    def decode_step_s(self, batch: int) -> float:
        """One decode iteration over ``batch`` requests.

        Memory-bound (one weight stream serves the whole batch) until
        per-step compute at the capped clock catches up.
        """
        return max(
            self._mem_step_s,
            batch * self._compute_per_token_s / self.freq,
        )

    def handoff_s(self, prompt_tokens: int) -> float:
        """Prefill-to-decode KV-cache transfer time (disaggregation)."""
        bytes_moved = prompt_tokens * self._kv_bytes_per_token
        return self._handoff_latency_s + bytes_moved / self._handoff_bw


@dataclass
class _Replica:
    """Mutable state of one replica during simulation."""

    index: int
    pool: str  # "mixed", "prefill", or "decode"
    kv_capacity: int
    active: bool = False
    draining: bool = False
    in_flight: list = field(default_factory=list)  # [request, tokens_left]
    kv_tokens: int = 0
    step_end_s: float = math.inf
    step_kind: str = ""
    step_decode_start_s: float = 0.0
    step_token_s: float = 0.0
    step_quantum: int = 0
    served: int = 0
    busy_prefill_s: float = 0.0
    busy_decode_s: float = 0.0
    active_s: float = 0.0
    kv_peak: int = 0

    @property
    def idle(self) -> bool:
        return self.step_end_s == math.inf


class _Simulation:
    """One serving run; see :func:`simulate_serving_deployment`."""

    def __init__(self, model: ModelConfig, cluster: ClusterSpec,
                 config: ServingConfig, trace: RequestTrace) -> None:
        self.model = model
        self.cluster = cluster
        self.config = config
        self.trace = trace
        batcher = config.batcher
        self.svc = _ServiceModel(
            model, cluster, batcher.gpus_per_replica, config.freq_setpoint
        )
        capacity = serving_capacity_replicas(
            cluster, batcher.gpus_per_replica
        )
        if capacity < 1:
            raise ValueError(
                f"gpus_per_replica={batcher.gpus_per_replica} exceeds "
                f"cluster {cluster.name!r} ({cluster.total_gpus} GPUs)"
            )
        if config.replicas > capacity:
            raise ValueError(
                f"{config.replicas} replicas x "
                f"{batcher.gpus_per_replica} GPUs exceed cluster "
                f"{cluster.name!r} ({cluster.total_gpus} GPUs)"
            )
        if batcher.disaggregated and config.replicas < 2:
            raise ValueError(
                "disaggregated mode needs >= 2 replicas "
                "(one per pool)"
            )
        kv_capacity = serving_kv_capacity_tokens(
            model,
            cluster.node.gpu.memory_bytes,
            batcher.gpus_per_replica,
            batcher.kv_headroom_fraction,
        )
        prefill_pool = 0
        if batcher.disaggregated:
            prefill_pool = min(
                config.replicas - 1,
                max(1, round(
                    batcher.prefill_replica_fraction * config.replicas
                )),
            )
        self.prefill_pool = prefill_pool
        self.replicas = [
            _Replica(
                index=i,
                pool=(
                    "mixed" if not batcher.disaggregated
                    else "prefill" if i < prefill_pool
                    else "decode"
                ),
                kv_capacity=kv_capacity,
            )
            for i in range(capacity)
        ]
        for replica in self.replicas[:config.replicas]:
            replica.active = True
        self.scaler = Autoscaler(
            config.autoscale, config.replicas, capacity
        )

        # Request-parallel state arrays.
        n = len(trace)
        self.arrival = [r.arrival_s for r in trace]
        self.prompt = [r.prompt_tokens for r in trace]
        self.decode = [r.decode_tokens for r in trace]
        self.state = [_QUEUED] * n
        self.tokens_out = [0] * n
        self.ttft_abs = [0.0] * n
        self.finish_abs = [0.0] * n
        self.replica_of = [-1] * n
        self.preempts = [0] * n

        self.queue: deque[int] = deque()
        self.ready: list[tuple[float, int, int]] = []  # disaggregation
        self._ready_seq = 0
        self.now = 0.0
        self.next_arrival = 0
        self.arrived = 0
        self.completed = 0
        self.rejected = 0
        self.preemptions = 0
        self.resident = 0  # requests inside replica batches
        self.tokens_prefilled = 0
        self.tokens_decoded = 0
        self.dynamic_energy_j = 0.0
        self.active_integral_s = 0.0  # replica-seconds powered
        self.samples: list[ServingSample] = []
        self._next_sample_s = config.sample_interval_s
        self._last_sample = (0.0, 0.0)  # (time, cumulative energy)

        idle_w = cluster.node.gpu.idle_watts
        g = batcher.gpus_per_replica
        self._idle_rate_w = idle_w * g
        self._prefill_extra_w = (
            gpu_power(cluster.node.gpu, PREFILL_ACTIVITY,
                      config.freq_setpoint) - idle_w
        ) * g
        self._decode_extra_w = (
            gpu_power(cluster.node.gpu, DECODE_ACTIVITY,
                      config.freq_setpoint) - idle_w
        ) * g

    # -- request bookkeeping --------------------------------------------

    def _active_count(self) -> int:
        return sum(1 for r in self.replicas if r.active)

    def _energy_j(self) -> float:
        return (self._idle_rate_w * self.active_integral_s
                + self.dynamic_energy_j)

    def _backlog(self) -> int:
        return len(self.queue) + len(self.ready)

    def _complete(self, rid: int, replica: _Replica,
                  finish_s: float) -> None:
        self.state[rid] = _DONE
        self.finish_abs[rid] = finish_s
        self.replica_of[rid] = replica.index
        self.completed += 1
        self.resident -= 1
        replica.served += 1
        if self.ttft_abs[rid] == 0.0:  # single-token decode edge
            self.ttft_abs[rid] = finish_s

    # -- admission ------------------------------------------------------

    def _admit_mixed(self, replica: _Replica) -> list[int]:
        batcher = self.config.batcher
        admitted: list[int] = []
        while (not replica.draining and self.queue
               and len(replica.in_flight) < batcher.max_batch_requests):
            rid = self.queue[0]
            need = self.prompt[rid]
            if not replica.in_flight:
                # First request reserves its full footprint: progress
                # is guaranteed even at minimum capacity.
                need += self.decode[rid]
            if replica.kv_tokens + need > replica.kv_capacity:
                break
            self.queue.popleft()
            replica.kv_tokens += self.prompt[rid]
            replica.in_flight.append([rid, self.decode[rid]])
            self.state[rid] = _RUNNING
            self.resident += 1
            admitted.append(rid)
        return admitted

    def _admit_ready(self, replica: _Replica) -> list[int]:
        batcher = self.config.batcher
        admitted: list[int] = []
        while (not replica.draining and self.ready
               and self.ready[0][0] <= self.now
               and len(replica.in_flight) < batcher.max_batch_requests):
            rid = self.ready[0][2]
            need = self.prompt[rid]
            if not replica.in_flight:
                need += self.decode[rid]
            if replica.kv_tokens + need > replica.kv_capacity:
                break
            heapq.heappop(self.ready)
            replica.kv_tokens += self.prompt[rid]
            replica.in_flight.append([rid, self.decode[rid]])
            self.state[rid] = _RUNNING
            self.resident += 1
            admitted.append(rid)
        return admitted

    def _preempt_overflow(self, replica: _Replica,
                          admitted: list[int]) -> int:
        """Evict newest requests until the round's KV growth fits.

        Returns the effective decode quantum for the round. The oldest
        request always survives (its full footprint was reserved at
        admission), so the loop terminates with KV under capacity.
        """
        quantum = self.config.batcher.decode_quantum_tokens
        while True:
            q_eff = min(
                quantum,
                max(left for _, left in replica.in_flight),
            )
            projected = replica.kv_tokens + sum(
                min(q_eff, left) for _, left in replica.in_flight
            )
            if projected <= replica.kv_capacity or (
                len(replica.in_flight) == 1
            ):
                replica.kv_peak = max(replica.kv_peak, projected)
                return q_eff
            rid, _ = replica.in_flight.pop()
            replica.kv_tokens -= self.prompt[rid] + self.tokens_out[rid]
            # Recompute preemption: generated tokens are discarded.
            self.tokens_out[rid] = 0
            self.preempts[rid] += 1
            self.preemptions += 1
            self.state[rid] = _QUEUED
            self.resident -= 1
            if rid in admitted:
                admitted.remove(rid)
            # Back to the admission queue: the discarded KV must be
            # rebuilt, which in disaggregated mode means another pass
            # through the prefill pool.
            self.queue.appendleft(rid)

    # -- scheduling rounds ----------------------------------------------

    def _start_round(self, replica: _Replica) -> bool:
        """Begin the next scheduling round; False when out of work."""
        if not replica.active or not replica.idle:
            return False
        if replica.pool == "prefill":
            return self._start_prefill_round(replica)
        if (self.config.batcher.scheduler == "run_to_completion"
                and replica.pool == "mixed"):
            return self._start_rtc_round(replica)
        return self._start_continuous_round(replica)

    def _start_continuous_round(self, replica: _Replica) -> bool:
        admitted = (
            self._admit_ready(replica) if replica.pool == "decode"
            else self._admit_mixed(replica)
        )
        if not replica.in_flight:
            return False
        q_eff = self._preempt_overflow(replica, admitted)
        batch = len(replica.in_flight)
        prefill_tokens = sum(self.prompt[rid] for rid in admitted)
        if replica.pool == "decode":
            prefill_tokens = 0  # KV arrived prefilled from the pool
        prefill_s = self.svc.prefill_s(prefill_tokens)
        step_token_s = self.svc.decode_step_s(batch)
        decode_start = self.now + prefill_s
        for rid in admitted:
            if self.ttft_abs[rid] == 0.0:
                self.ttft_abs[rid] = decode_start + step_token_s
        replica.step_kind = "continuous"
        replica.step_decode_start_s = decode_start
        replica.step_token_s = step_token_s
        replica.step_quantum = q_eff
        replica.step_end_s = decode_start + q_eff * step_token_s
        replica.busy_prefill_s += prefill_s
        replica.busy_decode_s += q_eff * step_token_s
        self.tokens_prefilled += prefill_tokens
        self.dynamic_energy_j += (
            self._prefill_extra_w * prefill_s
            + self._decode_extra_w * q_eff * step_token_s
        )
        return True

    def _start_rtc_round(self, replica: _Replica) -> bool:
        batcher = self.config.batcher
        admitted: list[int] = []
        while (not replica.draining and self.queue
               and len(admitted) < batcher.max_batch_requests):
            rid = self.queue[0]
            need = self.prompt[rid] + self.decode[rid]
            if replica.kv_tokens + need > replica.kv_capacity:
                break
            self.queue.popleft()
            replica.kv_tokens += need
            admitted.append(rid)
            self.state[rid] = _RUNNING
            self.resident += 1
        if not admitted:
            return False
        replica.kv_peak = max(replica.kv_peak, replica.kv_tokens)
        batch = len(admitted)
        prompt_tokens = sum(self.prompt[rid] for rid in admitted)
        max_decode = max(self.decode[rid] for rid in admitted)
        prefill_s = self.svc.prefill_s(prompt_tokens)
        step_token_s = self.svc.decode_step_s(batch)
        decode_s = max_decode * step_token_s
        for rid in admitted:
            self.ttft_abs[rid] = self.now + prefill_s + step_token_s
        replica.in_flight = [[rid, 0] for rid in admitted]
        replica.step_kind = "rtc"
        replica.step_token_s = step_token_s
        replica.step_end_s = self.now + prefill_s + decode_s
        replica.busy_prefill_s += prefill_s
        replica.busy_decode_s += decode_s
        self.tokens_prefilled += prompt_tokens
        self.dynamic_energy_j += (
            self._prefill_extra_w * prefill_s
            + self._decode_extra_w * decode_s
        )
        return True

    def _start_prefill_round(self, replica: _Replica) -> bool:
        batcher = self.config.batcher
        admitted: list[int] = []
        while (not replica.draining and self.queue
               and len(admitted) < batcher.max_batch_requests):
            rid = self.queue[0]
            if (replica.kv_tokens + self.prompt[rid]
                    > replica.kv_capacity):
                break
            self.queue.popleft()
            replica.kv_tokens += self.prompt[rid]
            admitted.append(rid)
            self.state[rid] = _RUNNING
            self.resident += 1
        if not admitted:
            return False
        replica.kv_peak = max(replica.kv_peak, replica.kv_tokens)
        prompt_tokens = sum(self.prompt[rid] for rid in admitted)
        prefill_s = self.svc.prefill_s(prompt_tokens)
        replica.in_flight = [[rid, 0] for rid in admitted]
        replica.step_kind = "prefill"
        replica.step_end_s = self.now + prefill_s
        replica.busy_prefill_s += prefill_s
        self.tokens_prefilled += prompt_tokens
        self.dynamic_energy_j += self._prefill_extra_w * prefill_s
        return True

    def _finish_round(self, replica: _Replica) -> None:
        kind = replica.step_kind
        replica.step_end_s = math.inf
        replica.step_kind = ""
        if kind == "prefill":
            for rid, _ in replica.in_flight:
                handoff = self.svc.handoff_s(self.prompt[rid])
                self._ready_seq += 1
                heapq.heappush(
                    self.ready,
                    (self.now + handoff, self._ready_seq, rid),
                )
                self.state[rid] = _READY
                self.resident -= 1
            replica.kv_tokens = 0
            replica.in_flight = []
        elif kind == "rtc":
            for rid, _ in replica.in_flight:
                self.tokens_decoded += self.decode[rid]
                self._complete(rid, replica, self.now)
                replica.kv_tokens -= (
                    self.prompt[rid] + self.decode[rid]
                )
            replica.in_flight = []
        else:  # continuous
            q_eff = replica.step_quantum
            step_token_s = replica.step_token_s
            decode_start = replica.step_decode_start_s
            survivors = []
            for rid, left in replica.in_flight:
                produced = min(q_eff, left)
                self.tokens_decoded += produced
                if left - produced == 0:
                    finish = decode_start + left * step_token_s
                    replica.kv_tokens -= (
                        self.prompt[rid] + self.tokens_out[rid]
                    )
                    self.tokens_out[rid] += produced
                    self._complete(rid, replica, finish)
                else:
                    self.tokens_out[rid] += produced
                    replica.kv_tokens += produced
                    survivors.append([rid, left - produced])
            replica.in_flight = survivors
        if replica.draining and not replica.in_flight:
            self._deactivate(replica)

    def _deactivate(self, replica: _Replica) -> None:
        replica.active = False
        replica.draining = False

    # -- autoscaling ----------------------------------------------------

    def _apply_scale_target(self, target: int) -> None:
        scalable = [
            r for r in self.replicas
            if r.active and not r.draining and r.pool != "prefill"
        ]
        # Disaggregated deployments keep at least one decode replica
        # serving, whatever the scaler asks for.
        floor = 1 if self.config.batcher.disaggregated else 0
        current = sum(
            1 for r in self.replicas if r.active and not r.draining
        )
        while current > target and len(scalable) > floor:
            victim = scalable.pop()  # highest index drains first
            victim.draining = True
            current -= 1
            if not victim.in_flight and victim.idle:
                self._deactivate(victim)

    def _activate_one(self) -> None:
        for replica in self.replicas:
            if not replica.active:
                replica.active = True
                replica.draining = False
                return

    # -- main loop ------------------------------------------------------

    def _advance(self, to_s: float) -> None:
        """Move time forward, accruing idle energy and samples."""
        while self._next_sample_s <= to_s:
            boundary = self._next_sample_s
            self._accrue(boundary)
            self._sample(boundary)
            self._next_sample_s += self.config.sample_interval_s
        self._accrue(to_s)

    def _accrue(self, to_s: float) -> None:
        if to_s > self.now:
            dt = to_s - self.now
            count = 0
            for replica in self.replicas:
                if replica.active:
                    replica.active_s += dt
                    count += 1
            self.active_integral_s += count * dt
            self.now = to_s

    def _sample(self, time_s: float) -> None:
        energy = self._energy_j()
        last_t, last_e = self._last_sample
        window = time_s - last_t
        power = (energy - last_e) / window if window > 0 else 0.0
        self._last_sample = (time_s, energy)
        active = [r for r in self.replicas if r.active]
        kv_util = max(
            (r.kv_tokens / r.kv_capacity for r in active), default=0.0
        )
        self.samples.append(ServingSample(
            time_s=time_s,
            arrived=self.arrived,
            completed=self.completed,
            rejected=self.rejected,
            queued=self._backlog(),
            in_flight=self.resident,
            active_replicas=len(active),
            kv_utilization=kv_util,
            energy_j=energy,
            power_w=power,
        ))

    def _kick(self) -> None:
        """Start rounds on idle replicas until no more work fits."""
        started = True
        while started:
            started = False
            for replica in self.replicas:
                if replica.active and replica.idle:
                    started |= self._start_round(replica)

    def run(self) -> ServingOutcome:
        trace = self.trace
        n = len(trace)
        autoscale = self.config.autoscale.enabled
        while True:
            if (self.next_arrival >= n and not self.queue
                    and not self.ready and self.resident == 0):
                break
            t_arrival = (
                self.arrival[self.next_arrival]
                if self.next_arrival < n else math.inf
            )
            t_round = min(
                (r.step_end_s for r in self.replicas if r.active),
                default=math.inf,
            )
            decode_idle = any(
                r.active and r.idle and not r.draining
                and r.pool in ("decode", "mixed")
                for r in self.replicas
            )
            t_ready = (
                self.ready[0][0]
                if self.ready and decode_idle else math.inf
            )
            t_activation = (
                self.scaler.pending_activation_s()
                if autoscale else None
            )
            t_activation = (
                math.inf if t_activation is None else t_activation
            )
            t_eval = self.scaler.next_eval_s if autoscale else math.inf
            t = min(t_arrival, t_round, t_ready, t_activation, t_eval)
            assert t < math.inf, "serving simulation stalled"
            self._advance(t)

            if t == t_arrival:
                rid = self.next_arrival
                self.next_arrival += 1
                self.arrived += 1
                limit = self.config.batcher.admission_queue_limit
                infeasible = (
                    self.prompt[rid] + self.decode[rid]
                    > self.replicas[0].kv_capacity
                )
                if infeasible or (limit and len(self.queue) >= limit):
                    self.state[rid] = _REJECTED
                    self.rejected += 1
                else:
                    self.queue.append(rid)
                    self._kick()
                continue
            if t == t_ready:
                self._kick()
                continue
            if t == t_round:
                for replica in self.replicas:
                    if replica.active and replica.step_end_s == t:
                        self._finish_round(replica)
                self._kick()
                continue
            if t == t_activation:
                self.scaler.complete_activation(t, self._backlog())
                self._activate_one()
                self._kick()
                continue
            # autoscaler evaluation tick
            target = self.scaler.evaluate(t, self._backlog())
            self._apply_scale_target(target)
            self._kick()

        # Provisioned replicas stay powered through the trace horizon.
        end_s = max(self.now, self.config.trace.duration_s)
        self._advance(end_s)
        return self._build_outcome(end_s)

    # -- outcome assembly -----------------------------------------------

    def _build_outcome(self, makespan_s: float) -> ServingOutcome:
        duration_s = self.config.trace.duration_s
        records = []
        ttft_list: list[float] = []
        tpot_list: list[float] = []
        e2e_list: list[float] = []
        for rid in range(len(self.trace)):
            done = self.state[rid] == _DONE
            ttft = (
                self.ttft_abs[rid] - self.arrival[rid] if done else 0.0
            )
            e2e = (
                self.finish_abs[rid] - self.arrival[rid] if done else 0.0
            )
            tpot = (
                (e2e - ttft) / max(1, self.decode[rid] - 1)
                if done and self.decode[rid] > 1 else 0.0
            )
            if done:
                ttft_list.append(ttft)
                tpot_list.append(tpot)
                e2e_list.append(e2e)
            records.append(RequestRecord(
                index=rid,
                arrival_s=self.arrival[rid],
                prompt_tokens=self.prompt[rid],
                decode_tokens=self.decode[rid],
                replica=self.replica_of[rid],
                ttft_s=ttft,
                tpot_s=tpot,
                e2e_s=e2e,
                finish_s=self.finish_abs[rid],
                preemptions=self.preempts[rid],
                rejected=self.state[rid] == _REJECTED,
            ))
        slo = build_slo_report(
            ttft_list, tpot_list, e2e_list, self.config.slo, duration_s
        )
        energy = self._build_energy(makespan_s)
        replica_stats = tuple(
            ReplicaStats(
                index=r.index,
                pool=r.pool,
                served=r.served,
                busy_prefill_s=r.busy_prefill_s,
                busy_decode_s=r.busy_decode_s,
                active_s=r.active_s,
                kv_peak_fraction=r.kv_peak / r.kv_capacity,
            )
            for r in self.replicas
            if r.served or r.busy_prefill_s or r.active
        )
        return ServingOutcome(
            model=self.model.name,
            cluster=self.cluster.name,
            config=self.config,
            arrived=self.arrived,
            completed=self.completed,
            rejected=self.rejected,
            preemptions=self.preemptions,
            slo=slo,
            energy=energy,
            requests=tuple(records),
            samples=tuple(self.samples),
            replicas=replica_stats,
            scale_events=tuple(self.scaler.events),
            duration_s=duration_s,
            makespan_s=makespan_s,
        )

    def _build_energy(self, makespan_s: float) -> EnergyReport:
        idle_j = self._idle_rate_w * self.active_integral_s
        total_j = idle_j + self.dynamic_energy_j
        tokens = self.tokens_prefilled + self.tokens_decoded
        gpu = self.cluster.node.gpu
        node = self.cluster.node
        gpu_seconds = (
            self.active_integral_s * self.config.batcher.gpus_per_replica
        )
        mean_gpu_w = total_j / gpu_seconds if gpu_seconds else 0.0
        offsets = node.airflow.inlet_offset_c
        mean_offset = sum(offsets) / len(offsets)
        peak_w = gpu.idle_watts + (
            self._prefill_extra_w / self.config.batcher.gpus_per_replica
        )
        return EnergyReport(
            energy_j=total_j,
            idle_energy_j=idle_j,
            dynamic_energy_j=self.dynamic_energy_j,
            tokens_prefilled=self.tokens_prefilled,
            tokens_decoded=self.tokens_decoded,
            energy_per_token_j=(
                total_j / tokens if tokens else math.inf
            ),
            mean_power_w=(
                total_j / makespan_s if makespan_s else 0.0
            ),
            mean_temp_c=(
                node.ambient_c + mean_offset
                + gpu.thermal_resistance_c_per_w * mean_gpu_w
            ),
            peak_temp_c=(
                node.ambient_c + max(offsets)
                + gpu.thermal_resistance_c_per_w * peak_w
            ),
        )


def simulate_serving_deployment(
    model: ModelConfig,
    cluster: ClusterSpec,
    config: ServingConfig,
    trace: RequestTrace | None = None,
) -> ServingOutcome:
    """Simulate one serving deployment end to end.

    Args:
        model / cluster: resolved catalog objects.
        config: deployment description.
        trace: pre-generated arrival trace; generated from
            ``config.trace`` when omitted (the cached path always
            regenerates, keeping the cache key purely configuration).
    """
    if trace is None:
        trace = generate_trace(config.trace)
    simulation = _Simulation(model, cluster, config, trace)
    return simulation.run()
