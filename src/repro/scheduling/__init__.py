"""Thermal- and telemetry-aware workload scheduling (Sections 6, 7.3)."""

from repro.scheduling.adaptive import (
    adaptive_microbatch,
    speed_balanced_stage_layers,
    stage_mean_clock,
)
from repro.scheduling.thermal_aware import (
    PlacementComparison,
    asymmetric_stage_layers,
    build_comparison,
    expected_heat_rank,
    imbalance_percent,
    node_gpus_by_coolness,
    thermal_aware_placement,
)

__all__ = [
    "PlacementComparison",
    "adaptive_microbatch",
    "speed_balanced_stage_layers",
    "stage_mean_clock",
    "asymmetric_stage_layers",
    "build_comparison",
    "expected_heat_rank",
    "imbalance_percent",
    "node_gpus_by_coolness",
    "thermal_aware_placement",
]
