"""Thermal-aware pipeline-stage placement (paper Section 6, Figure 21).

The baseline maps pipeline stages to consecutive device IDs, mixing hot
(rear) and cool (front) GPUs inside every stage; the hottest GPU then
throttles and drags its whole tensor-parallel stage down. The
thermal-aware strategy instead clusters GPUs by expected temperature:

* **Symmetric**: each node contributes one all-cool and one all-hot
  stage; cool stages take the early (heavier, embedding-side) pipeline
  positions.
* **Asymmetric**: additionally gives the cool stages extra layers,
  offloading the hot GPUs (the paper's 21/19 split for Llama3-70B and
  13/11 for GPT3-175B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cluster import ClusterSpec
from repro.parallelism.mapping import DeviceMesh, RankCoords, coords_of
from repro.parallelism.strategy import OptimizationConfig, ParallelismConfig


def expected_heat_rank(cluster: ClusterSpec, local: int) -> float:
    """Heuristic hotness of a local GPU position (higher = hotter).

    Combines the static inlet offset with the upstream-GPU count — the
    same information a deployment reads off idle-state telemetry.
    """
    airflow = cluster.node.airflow
    return airflow.inlet_offset_c[local] + 2.0 * len(airflow.upstream[local])


def node_gpus_by_coolness(cluster: ClusterSpec, node: int) -> list[int]:
    """Physical GPUs of one node, coolest first."""
    return sorted(
        cluster.ranks_on_node(node),
        key=lambda g: expected_heat_rank(cluster, cluster.local_index(g)),
    )


def thermal_aware_placement(
    cluster: ClusterSpec, config: ParallelismConfig
) -> list[int]:
    """Logical-rank -> physical-GPU permutation for thermal-aware PP.

    Requires ``dp == 1`` (each pipeline domain must align with a thermal
    group; the paper disables DP for this experiment), TP confined to a
    node, and a whole number of stages per node.

    Cool stage groups take early pipeline positions; hot groups take the
    late ones.
    """
    if config.dp != 1 or config.ep != 1:
        raise ValueError("thermal-aware placement requires dp == ep == 1")
    per_node = cluster.node.gpus_per_node
    if config.tp > per_node or per_node % config.tp:
        raise ValueError("TP groups must tile a node exactly")
    stages_per_node, rem = divmod(config.pp, cluster.num_nodes)
    if rem or stages_per_node * config.tp != per_node:
        raise ValueError(
            "stages must tile nodes exactly "
            f"(pp={config.pp}, nodes={cluster.num_nodes}, tp={config.tp})"
        )

    # Stage -> physical GPU group. Node i contributes its coolest TP-sized
    # group to early stage slot i, next group to slot num_nodes + i, etc.
    stage_gpus: dict[int, list[int]] = {}
    for node in range(cluster.num_nodes):
        ordered = node_gpus_by_coolness(cluster, node)
        for group_idx in range(stages_per_node):
            stage = group_idx * cluster.num_nodes + node
            start = group_idx * config.tp
            stage_gpus[stage] = ordered[start:start + config.tp]

    placement = [0] * config.world_size
    for rank in range(config.world_size):
        coords = coords_of(rank, config)
        placement[rank] = stage_gpus[coords.pp][coords.tp]
    return placement


def asymmetric_stage_layers(
    num_layers: int, num_stages: int, extra_per_cool_stage: int = 1
) -> list[int]:
    """Layer split giving the cool (early) half extra layers.

    The early half of the stages receives ``extra_per_cool_stage`` layers
    each, taken from the late (hot) half — e.g. 80 layers over 4 stages
    becomes [21, 21, 19, 19].
    """
    if num_stages % 2:
        raise ValueError("asymmetric split needs an even stage count")
    if num_layers % num_stages:
        raise ValueError("num_layers must divide evenly before skewing")
    base = num_layers // num_stages
    half = num_stages // 2
    layers = [base + extra_per_cool_stage] * half
    layers += [base - extra_per_cool_stage] * half
    if min(layers) < 1:
        raise ValueError("asymmetric split leaves a stage empty")
    return layers


@dataclass(frozen=True)
class PlacementComparison:
    """Figure 21 rows: baseline vs symmetric vs asymmetric placements."""

    baseline_placement: tuple[int, ...]
    symmetric_placement: tuple[int, ...]
    asymmetric_stage_layers: tuple[int, ...]


def build_comparison(
    cluster: ClusterSpec,
    config: ParallelismConfig,
    num_layers: int,
    extra_per_cool_stage: int = 1,
) -> PlacementComparison:
    """Assemble the three Figure 21 variants for a model/cluster pair."""
    symmetric = thermal_aware_placement(cluster, config)
    return PlacementComparison(
        baseline_placement=tuple(range(config.world_size)),
        symmetric_placement=tuple(symmetric),
        asymmetric_stage_layers=tuple(
            asymmetric_stage_layers(
                num_layers, config.pp, extra_per_cool_stage
            )
        ),
    )


def imbalance_percent(stage_layers: list[int]) -> float:
    """Layer imbalance of a split, as max-over-min minus one, in percent."""
    if not stage_layers:
        raise ValueError("empty stage list")
    return (max(stage_layers) / min(stage_layers) - 1.0) * 100.0
