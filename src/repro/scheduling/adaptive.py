"""Adaptive, telemetry-driven scheduling policies (paper Section 7.3).

The paper's recommendations call for "thermal- and power-aware scheduling
policies that adapt dynamically to temperature and utilisation" and
"adaptive microbatch scaling to match device performance". This module
implements both as closed-loop policies over the simulator's telemetry:

* :func:`speed_balanced_stage_layers` rebalances pipeline layers using
  the *measured* per-GPU clock ratios of a previous run — a generalised,
  data-driven version of the Figure 21 asymmetric split;
* :func:`adaptive_microbatch` searches the microbatch sizes that divide
  the per-replica batch and picks the best-throughput one, the tuning
  knob Section 5 shows cannot be set open-loop.
"""

from __future__ import annotations

from repro.core.results import RunResult
from repro.core.sweep import cached_run
from repro.parallelism.mapping import coords_of


def stage_mean_clock(result: RunResult) -> list[float]:
    """Measured mean clock ratio per pipeline stage of a finished run."""
    config = result.parallelism
    freq = result.outcome.mean_freq_ratio
    totals = [0.0] * config.pp
    counts = [0] * config.pp
    for rank in range(config.world_size):
        stage = coords_of(rank, config).pp
        totals[stage] += freq[result.placement[rank]]
        counts[stage] += 1
    return [total / count for total, count in zip(totals, counts)]


def speed_balanced_stage_layers(
    result: RunResult, num_layers: int | None = None
) -> list[int]:
    """Layer split proportional to each stage's measured clock speed.

    Stages whose GPUs sustained higher clocks in the measured run get
    proportionally more layers; throttled (hot, degraded) stages are
    offloaded. Rounding preserves the total layer count and keeps every
    stage at >= 1 layer.
    """
    config = result.parallelism
    num_layers = num_layers or result.model.num_layers
    if config.pp < 2:
        raise ValueError("rebalancing needs a pipeline (pp >= 2)")
    speeds = stage_mean_clock(result)
    total_speed = sum(speeds)
    raw = [num_layers * speed / total_speed for speed in speeds]
    layers = [max(1, int(share)) for share in raw]
    # Distribute the remainder to the stages with the largest fractional
    # parts (then to the fastest stages).
    remainder = num_layers - sum(layers)
    order = sorted(
        range(config.pp),
        key=lambda s: (raw[s] - int(raw[s]), speeds[s]),
        reverse=True,
    )
    index = 0
    while remainder != 0:
        stage = order[index % config.pp]
        if remainder > 0:
            layers[stage] += 1
            remainder -= 1
        elif layers[stage] > 1:
            layers[stage] -= 1
            remainder += 1
        index += 1
    return layers


def adaptive_microbatch(
    model: str,
    cluster: str,
    parallelism: str,
    candidates: tuple[int, ...] = (1, 2, 4, 8),
    global_batch_size: int = 128,
) -> tuple[int, RunResult]:
    """Pick the best-throughput microbatch size by measurement.

    Returns ``(best_microbatch, its RunResult)``. Candidates that do not
    divide the per-replica batch are skipped.
    """
    best: tuple[int, RunResult] | None = None
    for microbatch in candidates:
        try:
            result = cached_run(
                "train",
                model=model,
                cluster=cluster,
                parallelism=parallelism,
                microbatch_size=microbatch,
                global_batch_size=global_batch_size,
            )
        except ValueError:
            continue
        if (
            best is None
            or result.efficiency().tokens_per_s
            > best[1].efficiency().tokens_per_s
        ):
            best = (microbatch, result)
    if best is None:
        raise ValueError("no candidate microbatch size divides the batch")
    return best
