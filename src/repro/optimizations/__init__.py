"""Training-time optimization models: recomputation, overlap, LoRA."""

from repro.optimizations.lora import (
    lora_fraction,
    lora_params,
    lora_params_per_layer,
)
from repro.optimizations.overlap import (
    OVERLAP_COMM_SLOWDOWN,
    OVERLAP_COMPUTE_SLOWDOWN,
    OverlapEstimate,
    fused_duration,
    overlap_estimate,
)
from repro.optimizations.recompute import (
    RecomputeTradeoff,
    enables_configuration,
    recompute_tradeoff,
)

__all__ = [
    "OVERLAP_COMM_SLOWDOWN",
    "OVERLAP_COMPUTE_SLOWDOWN",
    "OverlapEstimate",
    "RecomputeTradeoff",
    "enables_configuration",
    "fused_duration",
    "lora_fraction",
    "lora_params",
    "lora_params_per_layer",
    "overlap_estimate",
    "recompute_tradeoff",
]
