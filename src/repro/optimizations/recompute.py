"""Activation recomputation analysis helpers (Section 4.3).

The graph-level transform lives in the builder (an extra forward-replay
kernel per backward); this module provides the analytic side used by the
config enumeration and the ablation benches: memory saved vs. compute
added.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.models.flops import model_forward_flops
from repro.models.memory import activation_bytes


@dataclass(frozen=True)
class RecomputeTradeoff:
    """Quantified cost/benefit of activation recomputation.

    Attributes:
        memory_saved_bytes: activation memory freed on the peak rank.
        extra_flops_per_iteration: added forward-replay FLOPs.
        compute_overhead: extra compute as a fraction of the baseline
            3x-forward step (1/3 for full recomputation).
    """

    memory_saved_bytes: float
    extra_flops_per_iteration: float
    compute_overhead: float


def recompute_tradeoff(
    model: ModelConfig,
    microbatch_size: int,
    tp: int,
    pp: int,
    tokens_per_iteration: int,
) -> RecomputeTradeoff:
    """Memory saved and compute added by full activation recomputation."""
    stashed = activation_bytes(
        model, microbatch_size, tp=tp, pp=pp, recompute=False
    )
    checkpointed = activation_bytes(
        model, microbatch_size, tp=tp, pp=pp, recompute=True
    )
    extra = model_forward_flops(model, tokens_per_iteration)
    return RecomputeTradeoff(
        memory_saved_bytes=stashed - checkpointed,
        extra_flops_per_iteration=extra,
        compute_overhead=1.0 / 3.0,
    )


def enables_configuration(
    model: ModelConfig,
    gpu_memory_bytes: float,
    microbatch_size: int,
    tp: int,
    pp: int,
    dp: int = 1,
    ep: int = 1,
) -> bool:
    """Whether recomputation unlocks a config that stashing cannot fit.

    The paper's E8-T1-P4 Mixtral-8x22B example: infeasible under
    stashing, feasible (and 2x more efficient) with recomputation.
    """
    from repro.models.memory import fits_in_memory

    without = fits_in_memory(
        model, gpu_memory_bytes, microbatch_size,
        tp=tp, pp=pp, dp=dp, ep=ep, recompute=False,
    )
    with_recompute = fits_in_memory(
        model, gpu_memory_bytes, microbatch_size,
        tp=tp, pp=pp, dp=dp, ep=ep, recompute=True,
    )
    return with_recompute and not without
