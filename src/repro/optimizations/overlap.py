"""Compute-communication overlap analysis helpers (Section 4.3).

The graph transform lives in the builder: eligible collectives fuse with
the compute they hide behind, and both sides slow down from SM/memory
contention. This module exposes the analytic estimate the ablation
benches compare against.
"""

from __future__ import annotations

from dataclasses import dataclass

# Resource-contention slowdowns when compute and communication share the
# GPU (Section 4.3: "compute kernel durations also increase"). The
# builder fuses eligible kernel pairs using these factors.
OVERLAP_COMPUTE_SLOWDOWN = 1.10
OVERLAP_COMM_SLOWDOWN = 1.30


def fused_duration(compute_s: float, comm_s: float) -> float:
    """Wall time of an overlapped (compute, comm) kernel pair.

    The communication kernel slows by the comm contention factor for its
    whole run; the compute kernel slows only over the *contended region*
    (the part of its execution the communication actually overlaps):

    ``fused = max(compute + (c_slow - 1) * min(compute, comm'), comm')``
    with ``comm' = comm * m_slow``.

    With tiny communication the penalty vanishes; with communication
    dominating, the fused span is the contended communication.
    """
    if compute_s < 0 or comm_s < 0:
        raise ValueError("durations must be non-negative")
    comm_slowed = comm_s * OVERLAP_COMM_SLOWDOWN
    contended = min(compute_s, comm_slowed)
    compute_slowed = compute_s + (OVERLAP_COMPUTE_SLOWDOWN - 1) * contended
    return max(compute_slowed, comm_slowed)


@dataclass(frozen=True)
class OverlapEstimate:
    """Predicted effect of overlapping one (compute, comm) kernel pair.

    Attributes:
        sequential_s: baseline time (compute then comm).
        overlapped_s: fused time (see :func:`fused_duration`).
        benefit_s: time saved. Pure kernel timing always benefits; the
            run-level losses the paper observes come from the extra power
            and heat overlapped execution draws (thermal throttling),
            which the simulator models separately.
    """

    sequential_s: float
    overlapped_s: float

    @property
    def benefit_s(self) -> float:
        return self.sequential_s - self.overlapped_s

    @property
    def worthwhile(self) -> bool:
        """Whether overlapping this pair saves kernel time at all."""
        return self.benefit_s > 0


def overlap_estimate(compute_s: float, comm_s: float) -> OverlapEstimate:
    """Estimate overlap benefit for one kernel pair (simulator's rule)."""
    return OverlapEstimate(
        sequential_s=compute_s + comm_s,
        overlapped_s=fused_duration(compute_s, comm_s),
    )
