"""Low-rank adaptation (LoRA) finetuning model (Section 4.3, Figure 12).

LoRA freezes the base model and trains rank-``r`` adapter pairs on the
attention and MLP projection matrices. Systems-wise this (a) shrinks the
gradient and optimizer-state volume to the adapter parameters — nearly
eliminating data-parallel synchronisation traffic — and (b) cheapens the
backward pass, which no longer computes weight gradients for frozen
matrices.
"""

from __future__ import annotations

from repro.models.config import ModelConfig


def lora_params_per_layer(model: ModelConfig, rank: int) -> int:
    """Trainable adapter parameters of one transformer layer.

    Adapters wrap the four attention projections and the MLP matrices:
    each wrapped ``d_in x d_out`` matrix gains ``r * (d_in + d_out)``
    parameters.
    """
    if rank < 1:
        raise ValueError("LoRA rank must be >= 1")
    h = model.hidden_size
    kv_dim = model.kv_groups * model.head_dim
    ffn = model.ffn_hidden_size
    wrapped_dims = [
        (h, h),       # Q projection
        (h, kv_dim),  # K projection
        (h, kv_dim),  # V projection
        (h, h),       # output projection
    ]
    matrices = 3 if model.extras.get("gated_mlp") else 2
    wrapped_dims.extend([(h, ffn)] * (matrices - 1))
    wrapped_dims.append((ffn, h))
    return sum(rank * (d_in + d_out) for d_in, d_out in wrapped_dims)


def lora_params(model: ModelConfig, rank: int) -> int:
    """Total trainable parameters under LoRA finetuning."""
    return model.num_layers * lora_params_per_layer(model, rank)


def lora_fraction(model: ModelConfig, rank: int) -> float:
    """Trainable fraction of the full model's parameters."""
    return lora_params(model, rank) / model.total_params
