"""Degraded-mode answers: approximate beats unavailable.

When the broker's execution path is down — workers crashing faster
than they respawn, a tripped circuit breaker, a deadline too tight for
a real simulation — the choices are a 500 or an *approximate* answer.
This module provides the approximation: a closed-form roofline
estimate computed from the model/cluster catalogs alone, with no
worker, no simulator event loop, and no cache.

The estimate is the same arithmetic the simulator's performance model
bottoms out in (sustained-FLOPs roofline over the parallel width, TDP
power envelope), so it lands in the right order of magnitude — good
enough for a dashboard or a sweep heat-map cell, clearly not a
simulation. Responses built from it are marked ``degraded: true`` with
``degraded_source: "analytic"``; clients that need exact numbers must
retry later (docs/chaos.md describes the policy).

Only training and inference requests have an analytic form; serving
and fleet requests return ``None`` (the broker then falls back to its
stale-cache tier or, failing that, the structured error).
"""

from __future__ import annotations

from repro.api import SimRequest

__all__ = ["analytic_estimate"]


def analytic_estimate(request: SimRequest) -> dict | None:
    """Closed-form throughput/power estimate for one request.

    Returns a plain JSON-shaped dict (it goes straight into the HTTP
    response body), or ``None`` when the request kind has no analytic
    form. Raises nothing for valid requests: everything it needs was
    already validated by ``SimRequest.__post_init__``.
    """
    if not isinstance(request, SimRequest):
        # OptimizeRequest shares the broker path but a whole search has
        # no one-line closed form; stale-cache is its only degraded tier.
        return None
    if request.kind not in ("training", "inference"):
        return None
    from repro.hardware.cluster import get_cluster
    from repro.models.catalog import get_model
    from repro.models.flops import model_forward_flops, model_step_flops
    from repro.parallelism.strategy import parse_strategy

    model = get_model(request.model)
    cluster = get_cluster(request.cluster)
    strategy = parse_strategy(request.parallelism).fill_dp(
        cluster.total_gpus
    )
    gpus = strategy.world_size
    tokens = request.global_batch_size * model.seq_length
    if request.kind == "training":
        flops = model_step_flops(
            model, tokens,
            recompute=request.optimizations.activation_recompute,
        )
    else:
        flops = model_forward_flops(model, tokens)
    gpu = cluster.node.gpu
    sustained = gpus * gpu.sustained_flops * request.freq_setpoint
    step_time_s = flops / sustained if sustained > 0 else float("inf")
    # Busy GPUs sit near TDP; the roofline has no bubble/comm model, so
    # this is the *upper* power envelope for the width actually used.
    power_w = gpus * gpu.tdp_watts * request.freq_setpoint
    return {
        "analytic": True,
        "kind": request.kind,
        "model": request.model,
        "cluster": request.cluster,
        "parallelism": strategy.name,
        "gpus": gpus,
        "step_flops": flops,
        "step_time_s": step_time_s,
        "tokens_per_s": (
            tokens / step_time_s if step_time_s > 0 else 0.0
        ),
        "power_w": power_w,
        "energy_per_step_j": power_w * step_time_s,
        "note": (
            "closed-form roofline estimate served in degraded mode; "
            "retry for a simulated result"
        ),
    }
