"""Persistent worker pool: work-stealing fan-out for the serve tier.

:class:`WorkerPool` keeps N worker processes alive across requests —
unlike :func:`repro.core.parallel.run_supervised` (one fork per
request) or ``ProcessPoolExecutor`` sweeps (one pool per batch), the
workers here are spawned once and reused, so a 50-request batch pays
interpreter+import start-up N times, not 50.

Scheduling is parent-side work stealing: every worker owns a deque,
:meth:`WorkerPool.submit` appends to the least-loaded one, and a worker
that drains its own deque steals from the *back* of the longest other
deque — long sweep shards migrate to idle workers instead of serialising
behind a slow one. All deque state lives in the dispatcher thread's
lock, so there is no shared memory to corrupt.

Reliability: every worker's process sentinel is part of the dispatcher's
``wait()`` set, so a SIGKILLed / OOMed worker wakes the dispatcher
immediately; its in-flight task is retried on another worker once and
the worker is respawned in place. A task whose retry also dies resolves
to :class:`repro.core.parallel.WorkerCrashError` (callers like
:meth:`WorkerPool.map` then fall back in-process, so batches never drop
requests). Deadline kills go the other way: :meth:`WorkerPool.run`
kills the worker hosting an overdue task and raises
:class:`repro.core.parallel.WorkerTimeoutError`.

Workers execute :func:`repro.core.parallel.run_request_payload` by
default, i.e. through ``cached_run`` — they share the parent's
content-addressed ``.repro_cache`` store (same ``REPRO_CACHE_DIR``), so
anything a worker simulates is a store hit for every later process.

Remote workers: :meth:`WorkerPool.listen` opens an authenticated TCP
socket and :func:`serve_worker` (``python -m repro worker``) connects a
worker loop from another host. Remote workers speak the same protocol
and join the same stealing pool; they are not respawned on death (their
queued work redistributes locally).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from multiprocessing.connection import Client, Listener, wait

from repro.core.parallel import (
    ExecutionReport,
    PayloadError,
    RunPayload,
    WorkerCrashError,
    WorkerTimeoutError,
    run_request_payload,
)

#: Attempts per task across worker deaths before it resolves to
#: :class:`WorkerCrashError` (1 initial + 1 retry, matching the sweep
#: fan-out's crash policy).
_TASK_ATTEMPTS = 2

#: Dispatcher wake-up period for liveness checks when nothing fires.
_HEALTH_INTERVAL_S = 0.5

#: Recent task durations feeding :attr:`WorkerPool.mean_service_s`.
_SERVICE_WINDOW = 64


def _worker_loop(conn) -> None:
    """Worker side: receive ``(task_id, fn, arg)``, answer
    ``(task_id, status, value)``. ``None`` or EOF ends the loop."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        task_id, fn, arg = message
        try:
            outcome = ("ok", fn(arg))
        except BaseException as error:  # report, never kill the loop
            outcome = ("error", f"{type(error).__name__}: {error}")
        try:
            conn.send((task_id, *outcome))
        except (BrokenPipeError, OSError, TypeError, ValueError):
            break
    try:
        conn.close()
    except OSError:
        pass


def serve_worker(address: tuple[str, int], authkey: bytes) -> None:
    """Run one remote worker: connect to a pool's listener and serve.

    The other side is :meth:`WorkerPool.listen`. Blocks until the pool
    closes the connection (``python -m repro worker`` wraps this).
    """
    conn = Client(address, authkey=authkey)
    _worker_loop(conn)


class _Task:
    """One queued unit of work and its parent-side future."""

    __slots__ = ("id", "fn", "arg", "future", "attempts", "abandoned",
                 "started_at")

    def __init__(self, task_id: int, fn, arg) -> None:
        self.id = task_id
        self.fn = fn
        self.arg = arg
        self.future: Future = Future()
        self.attempts = 0
        self.abandoned: str | None = None  # kill reason, if killed
        self.started_at = 0.0


class _Worker:
    """Parent-side handle: process (local only), pipe, deque, in-flight."""

    __slots__ = ("wid", "process", "conn", "queue", "inflight", "remote")

    def __init__(self, wid: int, process, conn, remote: bool) -> None:
        self.wid = wid
        self.process = process
        self.conn = conn
        self.queue: deque[_Task] = deque()
        self.inflight: _Task | None = None
        self.remote = remote


class WorkerPool:
    """N persistent workers behind per-worker work-stealing deques.

    Args:
        workers: local worker processes to spawn (0 is allowed when the
            pool is fed purely by remote workers via :meth:`listen`).
        respawn: replace local workers that die; in-flight work is
            retried either way.
    """

    def __init__(self, workers: int | None = None,
                 respawn: bool = True) -> None:
        if workers is None:
            workers = max(1, (os.cpu_count() or 2) - 1)
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self._ctx = multiprocessing.get_context()
        self._respawn = respawn
        self._lock = threading.Lock()
        self._workers: dict[int, _Worker] = {}
        self._next_wid = 0
        self._next_task = 0
        self._closed = False
        self._listener: Listener | None = None
        self._service_s: deque[float] = deque(maxlen=_SERVICE_WINDOW)
        self.steals = 0
        self.respawns = 0
        self.completed = 0
        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        with self._lock:
            for _ in range(workers):
                self._spawn_locked()
        self._dispatcher = threading.Thread(
            target=self._loop, name="repro-worker-pool", daemon=True
        )
        self._dispatcher.start()

    # -- lifecycle ------------------------------------------------------

    def _spawn_locked(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_loop, args=(child_conn,), daemon=True,
            name=f"repro-worker-{self._next_wid}",
        )
        process.start()
        child_conn.close()
        worker = _Worker(self._next_wid, process, parent_conn,
                         remote=False)
        self._workers[worker.wid] = worker
        self._next_wid += 1
        return worker

    def listen(self, address: tuple[str, int],
               authkey: bytes) -> tuple[str, int]:
        """Accept remote workers on ``address``; returns the bound
        ``(host, port)`` (useful with port 0)."""
        with self._lock:
            if self._listener is not None:
                raise RuntimeError("pool is already listening")
            self._listener = Listener(address, authkey=authkey)
            bound = self._listener.address
        accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-worker-accept",
            daemon=True,
        )
        accept_thread.start()
        return bound

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._closed and listener is not None:
            try:
                conn = listener.accept()
            except (OSError, EOFError, multiprocessing.AuthenticationError):
                if self._closed:
                    break
                continue
            with self._lock:
                worker = _Worker(self._next_wid, None, conn, remote=True)
                self._workers[worker.wid] = worker
                self._next_wid += 1
            self._wake()

    def close(self) -> None:
        """Stop dispatching, terminate workers, fail queued tasks."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            if self._listener is not None:
                try:
                    self._listener.close()
                except OSError:
                    pass
        self._wake()
        self._dispatcher.join(timeout=5.0)
        for worker in workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError, TypeError, ValueError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
            if worker.process is not None:
                worker.process.join(timeout=1.0)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join()
            for task in list(worker.queue):
                if not task.future.done():
                    task.future.set_exception(
                        WorkerCrashError("worker pool closed")
                    )
            if (worker.inflight is not None
                    and not worker.inflight.future.done()):
                worker.inflight.future.set_exception(
                    WorkerCrashError("worker pool closed")
                )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission -----------------------------------------------------

    def submit(self, fn, arg, *, target: int | None = None) -> Future:
        """Queue ``fn(arg)`` (both picklable) on the least-loaded worker.

        ``target`` pins the task to one worker's deque (tests exercise
        stealing with it); stealing may still move the task.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            if not self._workers:
                raise WorkerCrashError("worker pool has no live workers")
            task = _Task(self._next_task, fn, arg)
            self._next_task += 1
            if target is not None and target in self._workers:
                worker = self._workers[target]
            else:
                worker = min(
                    self._workers.values(),
                    key=lambda w: len(w.queue)
                    + (1 if w.inflight is not None else 0),
                )
            worker.queue.append(task)
        self._wake()
        return task.future

    def submit_payload(self, payload: RunPayload) -> Future:
        """Queue one ``(kind, kwargs)`` run payload (cached execution)."""
        return self.submit(run_request_payload, payload)

    def run(self, payload: RunPayload,
            timeout_s: float | None = None):
        """Execute one run payload synchronously (the broker path).

        Raises :class:`WorkerTimeoutError` after killing the hosting
        worker when the deadline passes, :class:`WorkerCrashError` when
        the task's workers died twice, and :class:`PayloadError` when
        the payload itself raised.
        """
        future = self.submit_payload(payload)
        try:
            status, value = future.result(timeout_s)
        except FutureTimeoutError:
            self._kill_future(
                future,
                f"worker exceeded its {timeout_s:g}s deadline "
                "and was killed",
            )
            raise WorkerTimeoutError(
                f"worker exceeded its {timeout_s:g}s deadline and "
                "was killed"
            ) from None
        if status == "ok":
            return value
        raise PayloadError(value)

    def map(self, payloads: list[RunPayload],
            report: ExecutionReport | None = None) -> list:
        """Run payloads through the pool; results in input order.

        Crash recovery matches :func:`repro.core.parallel.map_runs`:
        payloads whose workers died are retried on another worker, and
        anything that still cannot complete runs in-process — the batch
        never drops a request. ``report`` captures what happened.
        """
        futures: list[Future | None] = []
        for payload in payloads:
            try:
                futures.append(self.submit_payload(payload))
            except WorkerCrashError:
                futures.append(None)
        results = []
        for index, (payload, future) in enumerate(zip(payloads, futures)):
            retried = crashed = False
            if future is None:
                crashed = True
            else:
                try:
                    status, value = future.result()
                    retried = future.repro_retried  # type: ignore[attr-defined]
                except (WorkerCrashError, WorkerTimeoutError):
                    crashed = True
            if crashed:
                if report is not None:
                    report.fell_back.append(index)
                results.append(run_request_payload(payload))
                continue
            if retried and report is not None:
                report.retried.append(index)
            if status == "ok":
                results.append(value)
            else:
                raise PayloadError(value)
        return results

    # -- introspection --------------------------------------------------

    @property
    def mean_service_s(self) -> float:
        """Mean duration of recently completed tasks (0 with no data)."""
        with self._lock:
            if not self._service_s:
                return 0.0
            return sum(self._service_s) / len(self._service_s)

    @property
    def queue_depth(self) -> int:
        """Tasks queued across all deques (excluding in-flight)."""
        with self._lock:
            return sum(len(w.queue) for w in self._workers.values())

    def stats(self) -> dict:
        """Counters for ``/v1/status`` and tests."""
        with self._lock:
            live = [w for w in self._workers.values()]
            return {
                "workers": len(live),
                "remote_workers": sum(1 for w in live if w.remote),
                "busy": sum(1 for w in live if w.inflight is not None),
                "queued": sum(len(w.queue) for w in live),
                "steals": self.steals,
                "respawns": self.respawns,
                "completed": self.completed,
                "mean_service_s": (
                    sum(self._service_s) / len(self._service_s)
                    if self._service_s else 0.0
                ),
            }

    # -- dispatcher internals -------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"w")
        except (BrokenPipeError, OSError):
            pass

    def _kill_future(self, future: Future, reason: str) -> None:
        """Abandon the task behind ``future`` (deadline enforcement)."""
        with self._lock:
            for worker in self._workers.values():
                task = worker.inflight
                if task is not None and task.future is future:
                    task.abandoned = reason
                    if worker.process is not None:
                        worker.process.kill()
                    else:
                        try:
                            worker.conn.close()
                        except OSError:
                            pass
                    return
                for queued in list(worker.queue):
                    if queued.future is future:
                        worker.queue.remove(queued)
                        return

    def _loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                waitables = [self._wake_r]
                sentinels = {}
                for worker in self._workers.values():
                    waitables.append(worker.conn)
                    if worker.process is not None:
                        sentinels[worker.process.sentinel] = worker
                waitables.extend(sentinels)
            try:
                ready = wait(waitables, timeout=_HEALTH_INTERVAL_S)
            except OSError:
                ready = []
            with self._lock:
                if self._closed:
                    return
                dead: list[_Worker] = []
                for item in ready:
                    if item is self._wake_r:
                        while self._wake_r.poll():
                            self._wake_r.recv()
                        continue
                    if item in sentinels:
                        dead.append(sentinels[item])
                        continue
                    worker = next(
                        (w for w in self._workers.values()
                         if w.conn is item),
                        None,
                    )
                    if worker is None:
                        continue
                    if not self._drain_locked(worker):
                        dead.append(worker)
                # Liveness backstop for workers that died silently.
                for worker in self._workers.values():
                    if (worker.process is not None
                            and not worker.process.is_alive()
                            and worker not in dead):
                        dead.append(worker)
                for worker in dead:
                    self._bury_locked(worker)
                self._dispatch_locked()

    def _drain_locked(self, worker: _Worker) -> bool:
        """Consume results from one worker; False if the pipe died."""
        try:
            while worker.conn.poll():
                task_id, status, value = worker.conn.recv()
                task = worker.inflight
                if task is None or task.id != task_id:
                    continue  # stale answer from an abandoned task
                worker.inflight = None
                self.completed += 1
                self._service_s.append(
                    time.monotonic() - task.started_at
                )
                if not task.future.done():
                    task.future.repro_retried = (  # type: ignore[attr-defined]
                        task.attempts > 1
                    )
                    task.future.set_result((status, value))
        except (EOFError, OSError):
            return False
        return True

    def _bury_locked(self, worker: _Worker) -> None:
        """Handle one dead worker: requeue/fail work, maybe respawn."""
        if worker.wid not in self._workers:
            return
        del self._workers[worker.wid]
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process is not None:
            worker.process.join(timeout=0.1)
        task = worker.inflight
        worker.inflight = None
        if task is not None and not task.future.done():
            if task.abandoned is not None:
                task.future.set_exception(
                    WorkerTimeoutError(task.abandoned)
                )
            elif task.attempts >= _TASK_ATTEMPTS or not self._workers:
                task.future.set_exception(WorkerCrashError(
                    "worker process died without reporting a result"
                ))
            else:
                # Retry on whichever worker is least loaded.
                victim = min(
                    self._workers.values(),
                    key=lambda w: len(w.queue)
                    + (1 if w.inflight is not None else 0),
                )
                victim.queue.appendleft(task)
        for queued in worker.queue:
            if self._workers:
                min(
                    self._workers.values(),
                    key=lambda w: len(w.queue),
                ).queue.append(queued)
            elif not queued.future.done():
                queued.future.set_exception(WorkerCrashError(
                    "worker pool has no live workers"
                ))
        if (self._respawn and not worker.remote and not self._closed):
            self._spawn_locked()
            self.respawns += 1

    def _dispatch_locked(self) -> None:
        """Give every idle worker a task: own deque first, then steal."""
        for worker in self._workers.values():
            if worker.inflight is not None:
                continue
            task: _Task | None = None
            if worker.queue:
                task = worker.queue.popleft()
            else:
                victim = max(
                    (w for w in self._workers.values() if w.queue),
                    key=lambda w: len(w.queue),
                    default=None,
                )
                if victim is not None:
                    task = victim.queue.pop()
                    self.steals += 1
            if task is None:
                continue
            if task.future.done():  # cancelled/abandoned while queued
                continue
            task.attempts += 1
            task.started_at = time.monotonic()
            worker.inflight = task
            try:
                worker.conn.send((task.id, task.fn, task.arg))
            except (BrokenPipeError, OSError, TypeError,
                    ValueError) as error:
                worker.inflight = None
                if isinstance(error, (TypeError, ValueError)):
                    # Unpicklable task: fail it, keep the worker.
                    task.future.set_exception(PayloadError(
                        f"{type(error).__name__}: {error}"
                    ))
                else:
                    self._bury_locked(worker)
                    return
