"""Persistent worker pool: work-stealing fan-out for the serve tier.

:class:`WorkerPool` keeps N worker processes alive across requests —
unlike :func:`repro.core.parallel.run_supervised` (one fork per
request) or ``ProcessPoolExecutor`` sweeps (one pool per batch), the
workers here are spawned once and reused, so a 50-request batch pays
interpreter+import start-up N times, not 50.

Scheduling is parent-side work stealing: every worker owns a deque,
:meth:`WorkerPool.submit` appends to the least-loaded one, and a worker
that drains its own deque steals from the *back* of the longest other
deque — long sweep shards migrate to idle workers instead of serialising
behind a slow one. All deque state lives in the dispatcher thread's
lock, so there is no shared memory to corrupt.

Self-healing (see docs/chaos.md for the full policy map):

- **Crash retries with backoff.** A SIGKILLed / OOMed worker wakes the
  dispatcher immediately (its process sentinel is in the ``wait()``
  set); its in-flight task is re-queued on another worker after a
  full-jitter backoff delay, up to the pool's retry budget, and the
  worker is respawned in place. A task that exhausts the budget
  resolves to :class:`repro.core.parallel.WorkerCrashError` (callers
  like :meth:`WorkerPool.map` then fall back in-process, so batches
  never drop requests).
- **Per-slot circuit breakers.** Each worker *slot* (a respawned
  worker inherits its predecessor's slot) carries a
  :class:`repro.chaos.policies.CircuitBreaker`; a slot that keeps
  killing its workers opens and is routed around until a half-open
  probe succeeds. When every slot is open the pool fails open rather
  than stalling.
- **Deadlines.** :meth:`WorkerPool.run` kills the worker hosting an
  overdue task and raises :class:`~repro.core.parallel.
  WorkerTimeoutError`; a task whose deadline expires while still
  *queued* is failed immediately without wasting a worker.
- **Hedging.** ``run(..., hedge_s=...)`` races a duplicate dispatch
  against a straggling first attempt; the first answer wins and the
  loser is discarded (de-queued if still waiting, ignored if running).

Fault injection enters through :mod:`repro.chaos.hooks` call sites
(``pool.dispatch``, ``pool.result``) — one dict lookup when no chaos
handler is installed, byte-identical behaviour to a hook-free pool.

Workers execute :func:`repro.core.parallel.run_request_payload` by
default, i.e. through ``cached_run`` — they share the parent's
content-addressed ``.repro_cache`` store (same ``REPRO_CACHE_DIR``), so
anything a worker simulates is a store hit for every later process.

Remote workers: :meth:`WorkerPool.listen` opens an authenticated TCP
socket and :func:`serve_worker` (``python -m repro worker``) connects a
worker loop from another host. Remote workers speak the same protocol
and join the same stealing pool; they are not respawned on death (their
queued work redistributes locally), but ``serve_worker(reconnect=True)``
re-dials a lost broker with capped, jittered backoff instead of dying.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import random
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as wait_futures
from multiprocessing.connection import Client, Listener, wait

from repro.chaos import hooks as chaos_hooks
from repro.chaos.policies import CircuitBreaker, RetryPolicy
from repro.core.parallel import (
    ExecutionReport,
    PayloadError,
    RunPayload,
    WorkerCrashError,
    WorkerTimeoutError,
    run_request_payload,
)

#: Default attempts per task across worker deaths before it resolves to
#: :class:`WorkerCrashError` (1 initial + 1 retry, matching the sweep
#: fan-out's crash policy). Override with ``WorkerPool(retry=...)``.
_TASK_ATTEMPTS = 2

#: Default full-jitter backoff for task redispatch after a failure.
_DEFAULT_RETRY = RetryPolicy(attempts=_TASK_ATTEMPTS, base_s=0.02,
                             cap_s=0.5)

#: Default reconnect backoff for :func:`serve_worker`.
_RECONNECT_RETRY = RetryPolicy(attempts=2, base_s=0.5, cap_s=30.0)

#: Dispatcher wake-up period for liveness checks when nothing fires.
_HEALTH_INTERVAL_S = 0.5

#: Recent task durations feeding :attr:`WorkerPool.mean_service_s`.
_SERVICE_WINDOW = 64


def _worker_loop(conn) -> str:
    """Worker side: receive ``(task_id, fn, arg)``, answer
    ``(task_id, status, value)``.

    Returns ``"shutdown"`` when the pool sent the explicit ``None``
    goodbye, ``"lost"`` when the connection died (EOF / reset) — the
    distinction drives :func:`serve_worker`'s reconnect decision.
    """
    reason = "lost"
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            reason = "shutdown"
            break
        task_id, fn, arg = message
        try:
            outcome = ("ok", fn(arg))
        except BaseException as error:  # report, never kill the loop
            outcome = ("error", f"{type(error).__name__}: {error}")
        try:
            conn.send((task_id, *outcome))
        except (BrokenPipeError, OSError, TypeError, ValueError):
            break
    try:
        conn.close()
    except OSError:
        pass
    return reason


def _delayed_call(arg):
    """Chaos straggler wrapper: sleep, then run the real payload
    (top-level so it pickles across the worker pipe)."""
    delay_s, fn, inner = arg
    time.sleep(delay_s)
    return fn(inner)


def serve_worker(
    address: tuple[str, int],
    authkey: bytes,
    *,
    reconnect: bool = False,
    retry: RetryPolicy | None = None,
    max_retries: int | None = None,
    on_event=None,
    _connect=Client,
    _sleep=time.sleep,
) -> None:
    """Run one remote worker: connect to a pool's listener and serve.

    The other side is :meth:`WorkerPool.listen`; ``python -m repro
    worker`` wraps this. Blocks until the pool says goodbye (an
    explicit shutdown message).

    With ``reconnect=True`` a *lost* connection — broker crash or
    restart, network partition — is re-dialled with capped full-jitter
    backoff (``retry`` supplies base/cap; attempts are unlimited unless
    ``max_retries`` bounds consecutive failed dials) instead of killing
    the worker. A clean pool shutdown still ends the loop. ``on_event``
    (if given) receives one structured dict per connection-state change
    — the CLI logs them as warnings. Authentication failures are never
    retried: a wrong key stays wrong.
    """
    policy = retry or _RECONNECT_RETRY
    notify = on_event or (lambda event: None)
    label = f"{address[0]}:{address[1]}"
    rng = random.Random(0x7EC0)
    failures = 0
    while True:
        try:
            conn = _connect(address, authkey=authkey)
        except multiprocessing.AuthenticationError:
            raise
        except (ConnectionError, EOFError, OSError) as error:
            if not reconnect or (
                max_retries is not None and failures >= max_retries
            ):
                raise
            delay = policy.delay_s(failures, rng)
            failures += 1
            notify({
                "event": "reconnect_wait",
                "address": label,
                "attempt": failures,
                "sleep_s": round(delay, 3),
                "error": f"{type(error).__name__}: {error}",
            })
            _sleep(delay)
            continue
        failures = 0
        notify({"event": "connected", "address": label})
        reason = _worker_loop(conn)
        if reason == "shutdown" or not reconnect:
            notify({"event": "shutdown", "address": label})
            return
        notify({"event": "disconnected", "address": label})


class _Task:
    """One queued unit of work and its parent-side future."""

    __slots__ = ("id", "fn", "arg", "future", "attempts", "abandoned",
                 "started_at", "not_before", "deadline_at")

    def __init__(self, task_id: int, fn, arg,
                 deadline_at: float | None = None) -> None:
        self.id = task_id
        self.fn = fn
        self.arg = arg
        self.future: Future = Future()
        self.attempts = 0
        self.abandoned: str | None = None  # kill reason, if killed
        self.started_at = 0.0
        self.not_before = 0.0  # backoff gate for retried tasks
        self.deadline_at = deadline_at


class _Worker:
    """Parent-side handle: process (local only), pipe, deque, in-flight."""

    __slots__ = ("wid", "process", "conn", "queue", "inflight", "remote",
                 "slot")

    def __init__(self, wid: int, process, conn, remote: bool,
                 slot: str) -> None:
        self.wid = wid
        self.process = process
        self.conn = conn
        self.queue: deque[_Task] = deque()
        self.inflight: _Task | None = None
        self.remote = remote
        self.slot = slot


class WorkerPool:
    """N persistent workers behind per-worker work-stealing deques.

    Args:
        workers: local worker processes to spawn (0 is allowed when the
            pool is fed purely by remote workers via :meth:`listen`).
        respawn: replace local workers that die; in-flight work is
            retried either way.
        retry: per-task redispatch budget + backoff after a worker
            death or a lost answer (default: 2 attempts, full-jitter
            20ms..0.5s).
        breaker_failures: consecutive failures that open one worker
            slot's circuit breaker (0 disables breakers entirely).
        breaker_reset_s: open→half-open reset timeout per slot.
    """

    def __init__(self, workers: int | None = None,
                 respawn: bool = True, *,
                 retry: RetryPolicy | None = None,
                 breaker_failures: int = 3,
                 breaker_reset_s: float = 5.0) -> None:
        if workers is None:
            workers = max(1, (os.cpu_count() or 2) - 1)
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if breaker_failures < 0:
            raise ValueError(
                f"breaker_failures must be >= 0, got {breaker_failures}"
            )
        self._ctx = multiprocessing.get_context()
        self._respawn = respawn
        self._retry = retry or _DEFAULT_RETRY
        self._breaker_failures = breaker_failures
        self._breaker_reset_s = breaker_reset_s
        self._breakers: dict[str, CircuitBreaker] = {}
        self._rng = random.Random(0xC4A05)
        self._lock = threading.Lock()
        self._workers: dict[int, _Worker] = {}
        self._next_wid = 0
        self._next_slot = 0
        self._next_task = 0
        self._dispatches = 0
        self._closed = False
        self._listener: Listener | None = None
        self._service_s: deque[float] = deque(maxlen=_SERVICE_WINDOW)
        self.steals = 0
        self.respawns = 0
        self.completed = 0
        self.retries = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.expired = 0
        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        with self._lock:
            for _ in range(workers):
                self._spawn_locked()
        self._dispatcher = threading.Thread(
            target=self._loop, name="repro-worker-pool", daemon=True
        )
        self._dispatcher.start()

    # -- lifecycle ------------------------------------------------------

    def _spawn_locked(self, slot: str | None = None) -> _Worker:
        if slot is None:
            slot = str(self._next_slot)
            self._next_slot += 1
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_loop, args=(child_conn,), daemon=True,
            name=f"repro-worker-{self._next_wid}",
        )
        process.start()
        child_conn.close()
        worker = _Worker(self._next_wid, process, parent_conn,
                         remote=False, slot=slot)
        self._workers[worker.wid] = worker
        self._next_wid += 1
        return worker

    def listen(self, address: tuple[str, int],
               authkey: bytes) -> tuple[str, int]:
        """Accept remote workers on ``address``; returns the bound
        ``(host, port)`` (useful with port 0)."""
        with self._lock:
            if self._listener is not None:
                raise RuntimeError("pool is already listening")
            self._listener = Listener(address, authkey=authkey)
            bound = self._listener.address
        accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-worker-accept",
            daemon=True,
        )
        accept_thread.start()
        return bound

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._closed and listener is not None:
            try:
                conn = listener.accept()
            except (OSError, EOFError, multiprocessing.AuthenticationError):
                if self._closed:
                    break
                continue
            with self._lock:
                worker = _Worker(self._next_wid, None, conn, remote=True,
                                 slot=f"remote-{self._next_wid}")
                self._workers[worker.wid] = worker
                self._next_wid += 1
            self._wake()

    def close(self) -> None:
        """Stop dispatching, terminate workers, fail queued tasks."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            if self._listener is not None:
                try:
                    self._listener.close()
                except OSError:
                    pass
        self._wake()
        self._dispatcher.join(timeout=5.0)
        for worker in workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError, TypeError, ValueError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
            if worker.process is not None:
                worker.process.join(timeout=1.0)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join()
            for task in list(worker.queue):
                if not task.future.done():
                    task.future.set_exception(
                        WorkerCrashError("worker pool closed")
                    )
            if (worker.inflight is not None
                    and not worker.inflight.future.done()):
                worker.inflight.future.set_exception(
                    WorkerCrashError("worker pool closed")
                )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission -----------------------------------------------------

    def submit(self, fn, arg, *, target: int | None = None,
               deadline_at: float | None = None) -> Future:
        """Queue ``fn(arg)`` (both picklable) on the least-loaded worker.

        ``target`` pins the task to one worker's deque (tests exercise
        stealing with it); stealing may still move the task.
        ``deadline_at`` (monotonic clock) fails the task with
        :class:`WorkerTimeoutError` if it is still queued past the
        deadline, instead of wasting a worker on an already-late
        answer.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            if not self._workers:
                raise WorkerCrashError("worker pool has no live workers")
            task = _Task(self._next_task, fn, arg, deadline_at)
            self._next_task += 1
            if target is not None and target in self._workers:
                worker = self._workers[target]
            else:
                worker = self._least_loaded_locked()
            worker.queue.append(task)
        self._wake()
        return task.future

    def submit_payload(self, payload: RunPayload, *,
                       deadline_at: float | None = None) -> Future:
        """Queue one ``(kind, kwargs)`` run payload (cached execution)."""
        return self.submit(run_request_payload, payload,
                           deadline_at=deadline_at)

    def run(self, payload: RunPayload,
            timeout_s: float | None = None,
            hedge_s: float | None = None):
        """Execute one run payload synchronously (the broker path).

        Raises :class:`WorkerTimeoutError` after killing the hosting
        worker(s) when the deadline passes, :class:`WorkerCrashError`
        when every attempt's workers died, and :class:`PayloadError`
        when the payload itself raised.

        ``hedge_s`` arms a hedged request: if the first dispatch has
        not answered after ``hedge_s`` seconds, a duplicate is queued
        on another worker and the first answer wins (the straggler's
        is discarded). Payload execution is deterministic and cached,
        so the duplicate is harmless — at worst it recomputes what the
        winner just cached.
        """
        start = time.monotonic()
        deadline_at = None if timeout_s is None else start + timeout_s
        hedge_at = None if hedge_s is None else start + hedge_s
        futures = [self.submit_payload(payload, deadline_at=deadline_at)]
        primary = futures[0]
        crash: BaseException | None = None
        while True:
            now = time.monotonic()
            if deadline_at is not None and now >= deadline_at:
                message = (
                    f"worker exceeded its {timeout_s:g}s deadline and "
                    "was killed"
                )
                for future in futures:
                    if not future.done():
                        self._kill_future(future, message)
                raise WorkerTimeoutError(message) from None
            waits = []
            if deadline_at is not None:
                waits.append(deadline_at - now)
            if hedge_at is not None:
                waits.append(max(0.0, hedge_at - now))
            done, pending = wait_futures(
                futures,
                timeout=min(waits) if waits else None,
                return_when=FIRST_COMPLETED,
            )
            winner = None
            for future in done:
                error = future.exception()
                if error is None:
                    winner = future
                    break
                crash = error
            if winner is not None:
                if winner is not primary:
                    self.hedge_wins += 1
                for future in futures:
                    if future is not winner and not future.done():
                        self._discard(future)
                status, value = winner.result()
                if status == "ok":
                    return value
                raise PayloadError(value)
            futures = [f for f in futures if not f.done()]
            if not futures:
                raise crash if crash is not None else WorkerCrashError(
                    "worker pool returned no result"
                )
            if (hedge_at is not None
                    and time.monotonic() >= hedge_at):
                hedge_at = None  # at most one hedge per request
                try:
                    futures.append(self.submit_payload(
                        payload, deadline_at=deadline_at
                    ))
                    self.hedges += 1
                except (WorkerCrashError, RuntimeError):
                    pass

    def map(self, payloads: list[RunPayload],
            report: ExecutionReport | None = None) -> list:
        """Run payloads through the pool; results in input order.

        Crash recovery matches :func:`repro.core.parallel.map_runs`:
        payloads whose workers died are retried on another worker, and
        anything that still cannot complete runs in-process — the batch
        never drops a request. ``report`` captures what happened.
        """
        futures: list[Future | None] = []
        for payload in payloads:
            try:
                futures.append(self.submit_payload(payload))
            except WorkerCrashError:
                futures.append(None)
        results = []
        for index, (payload, future) in enumerate(zip(payloads, futures)):
            retried = crashed = False
            if future is None:
                crashed = True
            else:
                try:
                    status, value = future.result()
                    retried = future.repro_retried  # type: ignore[attr-defined]
                except (WorkerCrashError, WorkerTimeoutError):
                    crashed = True
            if crashed:
                if report is not None:
                    report.fell_back.append(index)
                results.append(run_request_payload(payload))
                continue
            if retried and report is not None:
                report.retried.append(index)
            if status == "ok":
                results.append(value)
            else:
                raise PayloadError(value)
        return results

    # -- introspection --------------------------------------------------

    @property
    def mean_service_s(self) -> float:
        """Mean duration of recently completed tasks (0 with no data)."""
        with self._lock:
            if not self._service_s:
                return 0.0
            return sum(self._service_s) / len(self._service_s)

    @property
    def queue_depth(self) -> int:
        """Tasks queued across all deques (excluding in-flight)."""
        with self._lock:
            return sum(len(w.queue) for w in self._workers.values())

    def stats(self) -> dict:
        """Counters for ``/v1/status`` / ``/v1/metrics`` and tests."""
        with self._lock:
            live = [w for w in self._workers.values()]
            return {
                "workers": len(live),
                "remote_workers": sum(1 for w in live if w.remote),
                "busy": sum(1 for w in live if w.inflight is not None),
                "queued": sum(len(w.queue) for w in live),
                "steals": self.steals,
                "respawns": self.respawns,
                "completed": self.completed,
                "retries": self.retries,
                "hedges": self.hedges,
                "hedge_wins": self.hedge_wins,
                "expired": self.expired,
                "breakers": {
                    w.slot: (
                        self._breakers[w.slot].state
                        if w.slot in self._breakers else "closed"
                    )
                    for w in live
                },
                "mean_service_s": (
                    sum(self._service_s) / len(self._service_s)
                    if self._service_s else 0.0
                ),
            }

    # -- dispatcher internals -------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"w")
        except (BrokenPipeError, OSError):
            pass

    def _breaker_locked(self, slot: str) -> CircuitBreaker | None:
        if self._breaker_failures <= 0:
            return None
        breaker = self._breakers.get(slot)
        if breaker is None:
            breaker = self._breakers[slot] = CircuitBreaker(
                self._breaker_failures, self._breaker_reset_s
            )
        return breaker

    def _routable_locked(self, worker: _Worker) -> bool:
        """Whether new work should be steered at ``worker`` (breaker
        not blocking, judged without consuming a half-open probe)."""
        breaker = self._breakers.get(worker.slot)
        return breaker is None or breaker.peek()

    def _least_loaded_locked(self) -> _Worker:
        candidates = [w for w in self._workers.values()
                      if self._routable_locked(w)]
        if not candidates:  # every breaker open: fail open, not stall
            candidates = list(self._workers.values())
        return min(
            candidates,
            key=lambda w: len(w.queue)
            + (1 if w.inflight is not None else 0),
        )

    def _kill_future(self, future: Future, reason: str) -> None:
        """Abandon the task behind ``future`` (deadline enforcement)."""
        with self._lock:
            for worker in self._workers.values():
                task = worker.inflight
                if task is not None and task.future is future:
                    task.abandoned = reason
                    if worker.process is not None:
                        worker.process.kill()
                    else:
                        try:
                            worker.conn.close()
                        except OSError:
                            pass
                    return
                for queued in list(worker.queue):
                    if queued.future is future:
                        worker.queue.remove(queued)
                        return

    def _discard(self, future: Future) -> None:
        """Forget a hedge loser: de-queue it if still waiting; a
        dispatched loser simply completes into an unread future."""
        with self._lock:
            for worker in self._workers.values():
                for queued in list(worker.queue):
                    if queued.future is future:
                        worker.queue.remove(queued)
                        return

    def _requeue_locked(self, task: _Task, reason: str) -> None:
        """Give a failed task another attempt (with jittered backoff)
        or fail it once the retry budget is spent."""
        if task.future.done():
            return
        if task.attempts >= self._retry.attempts or not self._workers:
            task.future.set_exception(WorkerCrashError(
                f"worker process died without reporting a result "
                f"({reason}; {task.attempts} attempt(s))"
            ))
            return
        self.retries += 1
        task.not_before = time.monotonic() + self._retry.delay_s(
            max(0, task.attempts - 1), self._rng
        )
        self._least_loaded_locked().queue.appendleft(task)

    def _loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                waitables = [self._wake_r]
                sentinels = {}
                timeout = _HEALTH_INTERVAL_S
                now = time.monotonic()
                for worker in self._workers.values():
                    waitables.append(worker.conn)
                    if worker.process is not None:
                        sentinels[worker.process.sentinel] = worker
                    for task in worker.queue:
                        if task.not_before > now:
                            timeout = min(
                                timeout,
                                max(0.01, task.not_before - now),
                            )
                waitables.extend(sentinels)
            try:
                ready = wait(waitables, timeout=timeout)
            except OSError:
                ready = []
            with self._lock:
                if self._closed:
                    return
                dead: list[_Worker] = []
                for item in ready:
                    if item is self._wake_r:
                        while self._wake_r.poll():
                            self._wake_r.recv()
                        continue
                    if item in sentinels:
                        dead.append(sentinels[item])
                        continue
                    worker = next(
                        (w for w in self._workers.values()
                         if w.conn is item),
                        None,
                    )
                    if worker is None:
                        continue
                    if not self._drain_locked(worker):
                        dead.append(worker)
                # Liveness backstop for workers that died silently.
                for worker in self._workers.values():
                    if (worker.process is not None
                            and not worker.process.is_alive()
                            and worker not in dead):
                        dead.append(worker)
                for worker in dead:
                    self._bury_locked(worker)
                self._dispatch_locked()

    def _drain_locked(self, worker: _Worker) -> bool:
        """Consume results from one worker; False if the pipe died."""
        try:
            while worker.conn.poll():
                task_id, status, value = worker.conn.recv()
                task = worker.inflight
                if task is None or task.id != task_id:
                    continue  # stale answer from an abandoned task
                directive = chaos_hooks.fire(
                    "pool.result", worker=worker.wid, task=task_id
                )
                if directive.get("drop"):
                    worker.inflight = None
                    self._requeue_locked(task, "answer lost in transit")
                    continue
                worker.inflight = None
                self.completed += 1
                self._service_s.append(
                    time.monotonic() - task.started_at
                )
                breaker = self._breakers.get(worker.slot)
                if breaker is not None:
                    # Any answer — even a payload error — proves the
                    # worker itself is healthy.
                    breaker.record_success()
                if not task.future.done():
                    task.future.repro_retried = (  # type: ignore[attr-defined]
                        task.attempts > 1
                    )
                    task.future.set_result((status, value))
        except (EOFError, OSError):
            return False
        return True

    def _bury_locked(self, worker: _Worker) -> None:
        """Handle one dead worker: requeue/fail work, maybe respawn."""
        if worker.wid not in self._workers:
            return
        del self._workers[worker.wid]
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process is not None:
            worker.process.join(timeout=0.1)
        breaker = self._breaker_locked(worker.slot)
        if breaker is not None:
            breaker.record_failure()
        # Respawn before requeueing so a single-worker pool still has a
        # live worker to retry the dead one's work on.
        if (self._respawn and not worker.remote and not self._closed):
            self._spawn_locked(slot=worker.slot)
            self.respawns += 1
        task = worker.inflight
        worker.inflight = None
        if task is not None and not task.future.done():
            if task.abandoned is not None:
                task.future.set_exception(
                    WorkerTimeoutError(task.abandoned)
                )
            else:
                self._requeue_locked(task, "worker process died")
        for queued in worker.queue:
            if self._workers:
                min(
                    self._workers.values(),
                    key=lambda w: len(w.queue),
                ).queue.append(queued)
            elif not queued.future.done():
                queued.future.set_exception(WorkerCrashError(
                    "worker pool has no live workers"
                ))

    def _take_locked(self, queue: deque, now: float,
                     from_left: bool) -> _Task | None:
        """Pop the next dispatchable task from one deque, failing any
        whose deadline already passed; ``None`` when nothing is
        eligible (a backing-off task stays put)."""
        while queue:
            task = queue.popleft() if from_left else queue.pop()
            if task.future.done():  # cancelled/abandoned while queued
                continue
            if (task.deadline_at is not None
                    and now >= task.deadline_at):
                self.expired += 1
                task.future.set_exception(WorkerTimeoutError(
                    "request deadline expired while queued; "
                    "never dispatched"
                ))
                continue
            if task.not_before > now:
                (queue.appendleft if from_left else queue.append)(task)
                return None
            return task
        return None

    def _dispatch_locked(self) -> None:
        """Give every idle worker a task: own deque first, then steal."""
        now = time.monotonic()
        for worker in list(self._workers.values()):
            if worker.wid not in self._workers:
                continue  # buried by a drop_conn directive this pass
            if worker.inflight is not None:
                continue
            if worker.queue and not self._routable_locked(worker):
                # Breaker open: push this slot's backlog to healthy
                # workers instead of feeding the sick one.
                healthy = [w for w in self._workers.values()
                           if w is not worker
                           and self._routable_locked(w)]
                if healthy:
                    while worker.queue:
                        min(
                            healthy, key=lambda w: len(w.queue)
                        ).queue.append(worker.queue.popleft())
                    continue
            task = self._take_locked(worker.queue, now, from_left=True)
            if task is None and not worker.queue:
                victim = max(
                    (w for w in self._workers.values()
                     if w.queue and w is not worker),
                    key=lambda w: len(w.queue),
                    default=None,
                )
                if victim is not None:
                    task = self._take_locked(
                        victim.queue, now, from_left=False
                    )
                    if task is not None:
                        self.steals += 1
            if task is None:
                continue
            breaker = self._breaker_locked(worker.slot)
            if breaker is not None and not breaker.allow():
                # No probe slot either: hand the task elsewhere.
                self._least_loaded_locked().queue.appendleft(task)
                continue
            task.attempts += 1
            task.started_at = now
            worker.inflight = task
            self._dispatches += 1
            directive = chaos_hooks.fire(
                "pool.dispatch",
                worker=worker.wid,
                task=task.id,
                remote=worker.remote,
                dispatch=self._dispatches - 1,
            )
            fn, arg = task.fn, task.arg
            delay_s = directive.get("delay_s")
            if delay_s:
                fn, arg = _delayed_call, (float(delay_s), fn, arg)
            try:
                worker.conn.send((task.id, fn, arg))
            except (BrokenPipeError, OSError, pickle.PicklingError,
                    AttributeError, TypeError, ValueError) as error:
                worker.inflight = None
                if not isinstance(error, (BrokenPipeError, OSError)):
                    # Unpicklable task: fail it, keep the worker.
                    task.future.set_exception(PayloadError(
                        f"{type(error).__name__}: {error}"
                    ))
                else:
                    self._bury_locked(worker)
                    return
                continue
            if directive.get("kill") and worker.process is not None:
                worker.process.kill()
            if directive.get("drop_conn"):
                try:
                    worker.conn.close()
                except OSError:
                    pass
                self._bury_locked(worker)
