"""Stdlib HTTP front end for the broker: JSON in, JSON out.

No third-party server: a ``ThreadingHTTPServer`` accepts connections
and each handler thread bridges into the broker's private asyncio loop
with :func:`asyncio.run_coroutine_threadsafe`, so all admission-control
state stays single-threaded inside the loop.

Endpoints (see docs/api.md for request/response schemas):

- ``POST /v1/simulate`` — body is :meth:`SimRequest.to_dict` JSON.
  ``200`` ok, ``400`` malformed/invalid request, ``429`` queue full
  (with ``Retry-After``), ``504`` per-request deadline, ``500`` worker
  crash or payload error. Every non-400 body is
  :meth:`SimResponse.to_dict` JSON. An ``X-Repro-Deadline-S`` request
  header sets the per-request deadline when the body carries no
  ``timeout_s`` of its own — the deadline then propagates HTTP →
  broker → worker, so a late answer is cancelled at every layer
  (degraded-mode brokers may still answer approximately; such bodies
  carry ``degraded: true``).
- ``POST /v1/optimize`` — body is :meth:`OptimizeRequest.to_dict`
  JSON; same status codes, deadline header, and response envelope as
  ``/v1/simulate``, with ``result`` carrying
  :meth:`OptimizeResult.to_dict`. Finished searches are
  content-addressed by request digest, so repeating one is a cache
  hit.
- ``GET /v1/status`` — liveness + queue depth.
- ``GET /v1/metrics`` — counters, hit rate, p50/p90/p99 latency, and
  the resilience counters (``errors_total``, ``retries_total``,
  ``respawns_total``, ``degraded_total``, circuit-breaker states).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api import OptimizeRequest, SimRequest
from repro.serve.broker import Broker, BrokerConfig, SimResponse

_STATUS_CODES = {
    "ok": 200,
    "rejected": 429,
    "timeout": 504,
    "error": 500,
}


class _Handler(BaseHTTPRequestHandler):
    """One HTTP exchange; the owning server carries broker + loop."""

    server: "_Server"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, code: int, body: dict,
                   headers: dict | None = None) -> None:
        payload = json.dumps(body).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _not_found(self) -> None:
        self._send_json(
            404,
            {
                "status": "error",
                "error": f"unknown path {self.path!r}; known: "
                "POST /v1/simulate, POST /v1/optimize, "
                "GET /v1/status, GET /v1/metrics",
            },
        )

    # -- endpoints ------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/v1/status":
            self._send_json(200, self.server.broker.status_dict())
        elif self.path == "/v1/metrics":
            self._send_json(200, self.server.broker.metrics_dict())
        else:
            self._not_found()

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/v1/simulate":
            request_type = SimRequest
        elif self.path == "/v1/optimize":
            request_type = OptimizeRequest
        else:
            self._not_found()
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            request = request_type.from_json(
                self.rfile.read(length).decode()
            )
            header_deadline = self.headers.get("X-Repro-Deadline-S")
            if header_deadline is not None and request.timeout_s is None:
                request = dataclasses.replace(
                    request, timeout_s=float(header_deadline)
                )
        except (ValueError, TypeError, UnicodeDecodeError) as error:
            self._send_json(
                400, {"status": "error", "error": str(error)}
            )
            return
        response: SimResponse = asyncio.run_coroutine_threadsafe(
            self.server.broker.submit(request), self.server.loop
        ).result()
        headers = {}
        if response.retry_after_s is not None:
            headers["Retry-After"] = f"{response.retry_after_s:g}"
        self._send_json(
            _STATUS_CODES.get(response.status, 500),
            response.to_dict(),
            headers,
        )


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    broker: Broker
    loop: asyncio.AbstractEventLoop
    verbose: bool = False


class BrokerServer:
    """A broker plus its event loop plus a threaded HTTP server.

    Owns one daemon thread running the asyncio loop (all broker state
    lives there) and one ``ThreadingHTTPServer``. ``port=0`` binds an
    ephemeral port (tests); :attr:`address` reports the bound
    ``host:port``. Usable as a context manager::

        with BrokerServer(port=0) as server:
            urllib.request.urlopen(f"http://{server.address}/v1/status")
    """

    def __init__(
        self,
        config: BrokerConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 8053,
        runner=None,
        verbose: bool = False,
    ) -> None:
        self._config = config or BrokerConfig()
        self._runner = runner
        self.loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self.loop.run_forever,
            name="repro-serve-loop",
            daemon=True,
        )
        self._loop_thread.start()
        # The broker's futures/semaphore must be created on its loop.
        self.broker: Broker = asyncio.run_coroutine_threadsafe(
            self._make_broker(), self.loop
        ).result()
        self._httpd = _Server((host, port), _Handler)
        self._httpd.broker = self.broker
        self._httpd.loop = self.loop
        self._httpd.verbose = verbose
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._stopped = False

    async def _make_broker(self) -> Broker:
        return Broker(self._config, runner=self._runner)

    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> "BrokerServer":
        """Begin accepting connections (returns immediately)."""
        self._http_thread.start()
        return self

    def stop(self) -> None:
        """Shut down the HTTP server and the broker loop."""
        if self._stopped:
            return
        self._stopped = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._loop_thread.join(timeout=5.0)
        self.loop.close()
        self.broker.close()

    def __enter__(self) -> "BrokerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def run(self) -> None:
        """Serve until interrupted (the ``repro serve`` CLI loop)."""
        try:
            self.start()
            self._http_thread.join()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()
