"""The asyncio simulation broker: admission control over shared caches.

One :class:`Broker` owns three request paths, tried in order:

1. **Cache hit** — :func:`repro.core.sweep.lookup_cached` answers
   synchronously (no queueing, no worker) from the in-process memo or
   the persistent store.
2. **In-flight dedup** — a request whose digest matches a simulation
   already executing awaits that execution's future instead of starting
   a second one; identical concurrent requests simulate exactly once.
3. **Supervised execution** — the miss queues for a bounded-concurrency
   slot and runs via :func:`repro.core.parallel.run_supervised` in a
   dedicated killable child process. A per-request deadline kills the
   child (``timeout`` response); a SIGKILLed/OOMed child becomes a
   structured ``error`` response; the broker keeps serving either way.

Backpressure is explicit: when ``queue_limit`` requests are already
waiting for a slot, new misses are **rejected** immediately (the HTTP
layer maps this to ``429`` + ``Retry-After``) rather than queued without
bound.

Self-healing (all OFF by default so library behaviour is unchanged;
``repro serve`` turns them on — see docs/chaos.md):

- **Execution retries** — a worker *crash* (never a payload exception,
  which is deterministic) is retried up to ``retry_attempts`` times
  with full-jitter backoff, bounded by the request's deadline.
- **Circuit breaker** — ``breaker_failures`` consecutive terminal
  execution failures open the broker's breaker; while open, misses
  skip execution entirely (straight to degraded mode or a structured
  error) until a half-open probe succeeds.
- **Degraded mode** — with ``degraded=True`` an execution that cannot
  produce a real result (crash budget exhausted, deadline, open
  breaker) is answered approximately instead of 500ing: first from an
  LRU of last-good results for that digest (``"stale-cache"``), else
  from the closed-form :func:`repro.serve.degraded.analytic_estimate`
  (``"analytic"``). Such responses are ``status="ok"`` with
  ``degraded: true`` so clients can tell.
- **Deadline propagation** — the request deadline is one absolute
  :class:`repro.chaos.policies.Deadline` fixed at admission; retries
  and backoff sleeps all fit inside it, so healing never extends how
  long a client waits beyond the grace window.
"""

from __future__ import annotations

import asyncio
import dataclasses
import statistics
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable

from repro.api import OptimizeRequest, SimRequest, submit
from repro.chaos import hooks as chaos_hooks
from repro.chaos.policies import CircuitBreaker, Deadline, RetryPolicy
from repro.core.parallel import (
    PayloadError,
    WorkerCrashError,
    WorkerTimeoutError,
    run_request_payload,
    run_supervised,
)
from repro.core.results import RunResult

#: Seconds added to the in-executor backstop beyond the child deadline,
#: so the child's own kill path fires first.
_DEADLINE_GRACE_S = 5.0

#: How many recent request latencies feed the percentile counters.
_LATENCY_WINDOW = 2048

#: Digest -> last good result entries kept for stale-cache degraded
#: answers (small: these also live in the memo/store; this LRU only
#: has to survive a store outage).
_LAST_GOOD_LIMIT = 256


@dataclass(frozen=True)
class BrokerConfig:
    """Admission-control knobs for one :class:`Broker`.

    Attributes:
        concurrency: simulations executing at once (worker slots).
        queue_limit: misses allowed to *wait* for a slot before new
            misses are rejected; bounds broker memory.
        default_timeout_s: per-request deadline when the request does
            not carry its own ``timeout_s`` (None = no deadline).
        retry_after_s: hint attached to rejections (HTTP Retry-After).
        use_processes: run misses in supervised child processes
            (killable deadlines, crash isolation). ``False`` executes
            in-process threads — faster for tests, no kill capability.
        cache: serve and populate the shared result cache.
        workers: size of the persistent :class:`~repro.serve.workers.
            WorkerPool` executing cacheable misses (0 = fork one
            supervised child per request, the pre-pool behaviour).
            Pool workers are spawned once and reused, share the
            parent's ``REPRO_CACHE_DIR`` store, and steal work from
            each other's deques.
        slo_target_s: SLO-aware admission: reject a miss (429 +
            Retry-After) when its predicted wait — queue depth × mean
            service time — already exceeds this bound, instead of
            letting it queue up to ``queue_limit``. None disables.
        service_time_hint_s: seed for the mean-service-time estimate
            before any request has completed (cold-start SLO
            admission).
        retry_attempts: total execution attempts per miss after worker
            *crashes* (1 = no retries, the historical behaviour;
            payload exceptions and timeouts are never retried).
        retry_base_s / retry_cap_s: full-jitter backoff envelope
            between crash retries.
        breaker_failures: consecutive terminal execution failures that
            open the broker-level circuit breaker (0 disables — the
            default).
        breaker_reset_s: open → half-open reset timeout.
        hedge_s: hedged-request delay handed to the worker pool
            (``None`` disables; only meaningful with ``workers > 0``).
        degraded: answer otherwise-failed requests from the last-good
            LRU or the analytic model, marked ``degraded: true``,
            instead of returning ``error``/``timeout``.
    """

    concurrency: int = 2
    queue_limit: int = 16
    default_timeout_s: float | None = 300.0
    retry_after_s: float = 1.0
    use_processes: bool = True
    cache: bool = True
    workers: int = 0
    slo_target_s: float | None = None
    service_time_hint_s: float = 0.0
    retry_attempts: int = 1
    retry_base_s: float = 0.05
    retry_cap_s: float = 2.0
    breaker_failures: int = 0
    breaker_reset_s: float = 30.0
    hedge_s: float | None = None
    degraded: bool = False

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if self.queue_limit < 0:
            raise ValueError(
                f"queue_limit must be >= 0, got {self.queue_limit}"
            )
        if self.workers < 0:
            raise ValueError(
                f"workers must be >= 0, got {self.workers}"
            )
        if self.slo_target_s is not None and self.slo_target_s <= 0:
            raise ValueError(
                f"slo_target_s must be > 0 (or None), "
                f"got {self.slo_target_s}"
            )
        if self.retry_attempts < 1:
            raise ValueError(
                f"retry_attempts must be >= 1, got {self.retry_attempts}"
            )
        if self.breaker_failures < 0:
            raise ValueError(
                f"breaker_failures must be >= 0, "
                f"got {self.breaker_failures}"
            )
        if self.hedge_s is not None and self.hedge_s <= 0:
            raise ValueError(
                f"hedge_s must be > 0 (or None), got {self.hedge_s}"
            )


@dataclass(frozen=True)
class SimResponse:
    """One broker answer: a result or a structured failure.

    ``status`` is one of ``"ok"``, ``"error"`` (worker crash or payload
    exception), ``"timeout"`` (deadline hit, child killed), or
    ``"rejected"`` (queue full — retry after ``retry_after_s``).
    A degraded-mode answer is ``"ok"`` with ``degraded=True`` and
    ``degraded_source`` naming the tier that produced it
    (``"stale-cache"`` or ``"analytic"``).
    """

    status: str
    request: SimRequest | OptimizeRequest
    result: object = None
    error: str | None = None
    cached: bool = False
    deduped: bool = False
    duration_s: float = 0.0
    retry_after_s: float | None = None
    degraded: bool = False
    degraded_source: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        """JSON-serialisable form (the HTTP response body)."""
        from repro.core.artifact import run_summary

        result = self.result
        if isinstance(result, RunResult):
            result = run_summary(result)
        elif (result is not None and not isinstance(result, dict)
              and hasattr(result, "metrics")):
            result = dataclasses.asdict(result.metrics())
        elif (result is not None and not isinstance(result, dict)
              and hasattr(result, "to_dict")):
            # OptimizeResult and other self-serialising result types.
            result = result.to_dict()
        return {
            "status": self.status,
            "request": self.request.to_dict(),
            "digest": self.request.digest(),
            "result": result,
            "error": self.error,
            "cached": self.cached,
            "deduped": self.deduped,
            "duration_s": self.duration_s,
            "retry_after_s": self.retry_after_s,
            "degraded": self.degraded,
            "degraded_source": self.degraded_source,
        }


@dataclass
class BrokerMetrics:
    """Monotonic counters + a sliding latency window."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    deduped: int = 0
    rejected: int = 0
    errors: int = 0
    timeouts: int = 0
    retries: int = 0
    degraded: int = 0
    breaker_rejections: int = 0
    latencies_s: deque = field(
        default_factory=lambda: deque(maxlen=_LATENCY_WINDOW)
    )

    def observe(self, seconds: float) -> None:
        self.latencies_s.append(seconds)

    def percentile(self, fraction: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(
            len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5)
        )
        return ordered[index]

    def to_dict(self) -> dict:
        total = self.hits + self.misses
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "deduped": self.deduped,
            "rejected": self.rejected,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "degraded": self.degraded,
            "breaker_rejections": self.breaker_rejections,
            "hit_rate": (self.hits / total) if total else 0.0,
            "latency_p50_s": self.percentile(0.50),
            "latency_p90_s": self.percentile(0.90),
            "latency_p99_s": self.percentile(0.99),
            "latency_mean_s": (
                statistics.fmean(self.latencies_s)
                if self.latencies_s
                else 0.0
            ),
        }


def _default_runner(request: SimRequest,
                    timeout_s: float | None) -> object:
    """Execute one request in a supervised child process.

    Cacheable payloads run through :func:`run_request_payload`, so the
    child writes the shared on-disk store before returning — the
    parent's next identical request is a store hit. Fleet requests are
    shipped as their dict form and rebuilt in the child.
    """
    if request.cacheable:
        return run_supervised(
            run_request_payload, request.to_run_payload(), timeout_s
        )
    return run_supervised(_submit_dict, request.to_dict(), timeout_s)


def _submit_dict(data: dict) -> object:
    """Child-side fleet execution (top-level, picklable)."""
    return submit(SimRequest.from_dict(data))


def _inline_runner(request: SimRequest,
                   timeout_s: float | None) -> object:
    """In-process execution (``use_processes=False``); no kill path."""
    return submit(request)


class BrokerUnavailableError(RuntimeError):
    """The broker's circuit breaker is open; execution was skipped."""


class Broker:
    """Asyncio admission-control front end over :func:`repro.api.submit`.

    Responses are field-by-field identical to calling ``submit()``
    directly — the broker only adds caching, dedup, concurrency limits,
    deadlines, and backpressure around the same execution. Construct it
    inside a running event loop (or via :class:`repro.serve.BrokerServer`,
    which owns a loop); ``runner`` is injectable for tests.
    """

    def __init__(
        self,
        config: BrokerConfig | None = None,
        runner: Callable[[SimRequest, float | None], object] | None = None,
    ) -> None:
        self.config = config or BrokerConfig()
        self.pool = None
        if self.config.workers > 0:
            from repro.serve.workers import WorkerPool

            self.pool = WorkerPool(self.config.workers)
        if runner is not None:
            self._runner = runner
        elif self.pool is not None:
            self._runner = self._pool_runner
        elif self.config.use_processes:
            self._runner = _default_runner
        else:
            self._runner = _inline_runner
        self.metrics = BrokerMetrics()
        self._retry = RetryPolicy(
            attempts=self.config.retry_attempts,
            base_s=self.config.retry_base_s,
            cap_s=self.config.retry_cap_s,
        )
        import random as _random

        self._rng = _random.Random(0xB60C)
        self.breaker: CircuitBreaker | None = None
        if self.config.breaker_failures > 0:
            self.breaker = CircuitBreaker(
                self.config.breaker_failures,
                self.config.breaker_reset_s,
            )
        self._last_good: OrderedDict[str, object] = OrderedDict()
        self._semaphore = asyncio.Semaphore(self.config.concurrency)
        self._inflight: dict[str, asyncio.Future] = {}
        self._service_s: deque = deque(maxlen=_LATENCY_WINDOW)
        self._admitted = 0
        self._executing = 0
        self._started_at = time.monotonic()

    # -- public API -----------------------------------------------------

    async def submit(
        self, request: SimRequest | OptimizeRequest
    ) -> SimResponse:
        """Answer one request (cache → dedup → supervised execution)."""
        if not isinstance(request, (SimRequest, OptimizeRequest)):
            raise TypeError(
                f"Broker.submit takes a SimRequest or OptimizeRequest, "
                f"got {type(request).__name__}"
            )
        self.metrics.requests += 1
        started = time.monotonic()

        if self.config.cache and request.cacheable:
            # Memo hits resolve inline (a dict lookup); only the
            # on-disk store probe pays for an executor hop.
            hit = self._probe_memo(request)
            if hit is None:
                hit = await asyncio.get_running_loop().run_in_executor(
                    None, self._probe_store, request
                )
            if hit is not None:
                self.metrics.hits += 1
                self._remember_good(request, hit)
                duration = time.monotonic() - started
                self.metrics.observe(duration)
                return SimResponse(
                    status="ok", request=request, result=hit,
                    cached=True, duration_s=duration,
                )

        digest = request.digest()
        pending = self._inflight.get(digest)
        if pending is not None:
            self.metrics.deduped += 1
            response: SimResponse = await asyncio.shield(pending)
            duration = time.monotonic() - started
            self.metrics.observe(duration)
            return dataclasses.replace(
                response, deduped=True, duration_s=duration
            )

        capacity = self.config.concurrency + self.config.queue_limit
        if self._admitted >= capacity:
            self.metrics.rejected += 1
            return SimResponse(
                status="rejected",
                request=request,
                error=(
                    f"queue full ({self.queue_depth} waiting, limit "
                    f"{self.config.queue_limit}); retry after "
                    f"{self.config.retry_after_s:g}s"
                ),
                retry_after_s=self.config.retry_after_s,
                duration_s=time.monotonic() - started,
            )
        if self.config.slo_target_s is not None:
            predicted = self.estimated_wait_s()
            if predicted > self.config.slo_target_s:
                self.metrics.rejected += 1
                retry_after = max(predicted, self.config.retry_after_s)
                return SimResponse(
                    status="rejected",
                    request=request,
                    error=(
                        f"predicted wait {predicted:.3g}s exceeds the "
                        f"{self.config.slo_target_s:g}s SLO "
                        f"({self.queue_depth} waiting x "
                        f"{self.mean_service_s:.3g}s mean service); "
                        f"retry after {retry_after:.3g}s"
                    ),
                    retry_after_s=retry_after,
                    duration_s=time.monotonic() - started,
                )

        self.metrics.misses += 1
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[digest] = future
        self._admitted += 1
        try:
            response = await self._execute(request)
        finally:
            self._admitted -= 1
            self._inflight.pop(digest, None)
            if not future.done():
                future.set_result(response)
        duration = time.monotonic() - started
        self.metrics.observe(duration)
        return dataclasses.replace(response, duration_s=duration)

    @property
    def queue_depth(self) -> int:
        """Misses admitted but still waiting for an execution slot."""
        return max(0, self._admitted - self._executing)

    @property
    def mean_service_s(self) -> float:
        """Mean execution time of recent misses (hint when no data)."""
        if not self._service_s:
            return self.config.service_time_hint_s
        return statistics.fmean(self._service_s)

    def estimated_wait_s(self) -> float:
        """Predicted wait for a new miss: queue depth × mean service."""
        return self.queue_depth * self.mean_service_s

    def close(self) -> None:
        """Release owned resources (the worker pool, if any)."""
        if self.pool is not None:
            self.pool.close()

    def status_dict(self) -> dict:
        """``GET /v1/status`` body (cheap, synchronous)."""
        data = {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started_at,
            "concurrency": self.config.concurrency,
            "queue_limit": self.config.queue_limit,
            "queue_depth": self.queue_depth,
            "executing": self._executing,
            "in_flight": len(self._inflight),
            "cache": self.config.cache,
            "slo_target_s": self.config.slo_target_s,
            "estimated_wait_s": self.estimated_wait_s(),
            "breaker": (
                self.breaker.state if self.breaker is not None
                else "disabled"
            ),
            "degraded_mode": self.config.degraded,
        }
        if self.pool is not None:
            data["pool"] = self.pool.stats()
        return data

    def metrics_dict(self) -> dict:
        """``GET /v1/metrics`` body (counters + latency percentiles).

        The ``*_total`` aliases aggregate broker- and pool-level
        counters into the monitoring-facing names docs/chaos.md
        documents: ``errors_total``, ``retries_total`` (broker crash
        retries + pool redispatches), ``respawns_total``,
        ``degraded_total``.
        """
        data = self.metrics.to_dict()
        data["queue_depth"] = self.queue_depth
        data["executing"] = self._executing
        data["in_flight"] = len(self._inflight)
        data["uptime_s"] = time.monotonic() - self._started_at
        data["mean_service_s"] = self.mean_service_s
        data["estimated_wait_s"] = self.estimated_wait_s()
        pool_stats = self.pool.stats() if self.pool is not None else None
        if pool_stats is not None:
            data["pool"] = pool_stats
        data["errors_total"] = self.metrics.errors
        data["retries_total"] = self.metrics.retries + (
            pool_stats["retries"] if pool_stats else 0
        )
        data["respawns_total"] = (
            pool_stats["respawns"] if pool_stats else 0
        )
        data["degraded_total"] = self.metrics.degraded
        data["breaker"] = {
            "broker": (
                self.breaker.state if self.breaker is not None
                else "disabled"
            ),
            "workers": (
                pool_stats["breakers"] if pool_stats else {}
            ),
        }
        return data

    # -- internals ------------------------------------------------------

    def _probe_memo(self, request: SimRequest):
        from repro.core.sweep import lookup_memo

        return lookup_memo(*request.to_run_payload())

    def _probe_store(self, request: SimRequest):
        from repro.core.sweep import lookup_cached

        return lookup_cached(*request.to_run_payload())

    def _timeout_for(self, request: SimRequest) -> float | None:
        if request.timeout_s is not None:
            return request.timeout_s
        return self.config.default_timeout_s

    def _pool_runner(self, request: SimRequest,
                     timeout_s: float | None) -> object:
        """Execute via the persistent worker pool (cacheable kinds);
        fleet requests keep the per-request supervised child."""
        if request.cacheable and self.pool is not None:
            return self.pool.run(request.to_run_payload(), timeout_s,
                                 hedge_s=self.config.hedge_s)
        return _default_runner(request, timeout_s)

    def _remember_good(self, request: SimRequest, result: object) -> None:
        """Feed the stale-cache degraded tier (bounded LRU)."""
        if not self.config.degraded:
            return
        digest = request.digest()
        self._last_good[digest] = result
        self._last_good.move_to_end(digest)
        while len(self._last_good) > _LAST_GOOD_LIMIT:
            self._last_good.popitem(last=False)

    def _degraded_answer(self, request: SimRequest,
                         error: str) -> SimResponse | None:
        """Best approximate answer, or None when none exists."""
        stale = self._last_good.get(request.digest())
        if stale is not None:
            return SimResponse(
                status="ok", request=request, result=stale,
                cached=True, degraded=True,
                degraded_source="stale-cache", error=error,
            )
        from repro.serve.degraded import analytic_estimate

        estimate = analytic_estimate(request)
        if estimate is not None:
            return SimResponse(
                status="ok", request=request, result=estimate,
                degraded=True, degraded_source="analytic", error=error,
            )
        return None

    async def _run_attempts(self, request: SimRequest,
                            timeout_s: float | None) -> object:
        """The execution core: breaker gate + crash-retry loop.

        Raises the terminal exception when every attempt failed;
        payload errors and timeouts are terminal on first occurrence.
        """
        if self.breaker is not None and not self.breaker.allow():
            self.metrics.breaker_rejections += 1
            raise BrokerUnavailableError(
                "circuit breaker open after "
                f"{self.config.breaker_failures} consecutive execution "
                "failures; cooling down "
                f"{self.config.breaker_reset_s:g}s"
            )
        deadline = Deadline.after(timeout_s)
        loop = asyncio.get_running_loop()
        attempt = 0
        while True:
            attempt += 1
            directive = chaos_hooks.fire(
                "broker.execute", digest=request.digest(),
                attempt=attempt,
            )
            budget = None if deadline is None else deadline.remaining()
            try:
                fail = directive.get("fail")
                if fail:
                    raise WorkerCrashError(str(fail))
                delay_s = directive.get("delay_s")
                if delay_s:
                    await asyncio.sleep(float(delay_s))
                call = loop.run_in_executor(
                    None, self._runner, request, budget
                )
                if budget is not None:
                    # Backstop only: the supervised child enforces the
                    # real deadline by killing the process.
                    call = asyncio.wait_for(
                        call, budget + _DEADLINE_GRACE_S
                    )
                result = await call
            except WorkerCrashError:
                if (attempt >= self._retry.attempts
                        or (deadline is not None and deadline.expired)):
                    if self.breaker is not None:
                        self.breaker.record_failure()
                    raise
                self.metrics.retries += 1
                pause = self._retry.delay_s(attempt - 1, self._rng)
                if deadline is not None:
                    pause = min(pause, max(0.0, deadline.remaining()))
                await asyncio.sleep(pause)
                continue
            except BaseException:
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            if self.breaker is not None:
                self.breaker.record_success()
            return result

    async def _execute(self, request: SimRequest) -> SimResponse:
        timeout_s = self._timeout_for(request)
        async with self._semaphore:
            self._executing += 1
            execution_started = time.monotonic()
            failure: SimResponse | None = None
            try:
                result = await self._run_attempts(request, timeout_s)
            except (WorkerTimeoutError, asyncio.TimeoutError) as error:
                self.metrics.timeouts += 1
                message = (
                    str(error)
                    or f"request exceeded its {timeout_s:g}s deadline"
                )
                failure = SimResponse(
                    status="timeout", request=request, error=message
                )
            except PayloadError as error:
                # Deterministic: degrading would mask a real bug.
                self.metrics.errors += 1
                return SimResponse(
                    status="error",
                    request=request,
                    error=f"{type(error).__name__}: {error}",
                )
            except (WorkerCrashError, BrokerUnavailableError,
                    Exception) as error:
                failure = SimResponse(
                    status="error",
                    request=request,
                    error=f"{type(error).__name__}: {error}",
                )
            finally:
                self._executing -= 1
            if failure is not None:
                if self.config.degraded:
                    answer = self._degraded_answer(
                        request, failure.error or failure.status
                    )
                    if answer is not None:
                        self.metrics.degraded += 1
                        return answer
                if failure.status == "error":
                    self.metrics.errors += 1
                return failure
            self._service_s.append(
                time.monotonic() - execution_started
            )
            if self.config.cache and request.cacheable:
                from repro.core.sweep import seed_memo

                kind, kwargs = request.to_run_payload()
                seed_memo(kind, kwargs, result)
            self._remember_good(request, result)
            return SimResponse(status="ok", request=request,
                               result=result)
