"""Simulation-as-a-service: a long-running broker over :mod:`repro.api`.

Three front doors, one execution substrate:

- :class:`Broker` — embeddable asyncio object. ``await broker.submit(
  SimRequest(...))`` returns a :class:`SimResponse`.
- :class:`BrokerServer` — stdlib ``http.server`` JSON endpoint
  (``POST /v1/simulate``, ``GET /v1/status``, ``GET /v1/metrics``).
- ``python -m repro serve`` — the CLI wrapper around
  :class:`BrokerServer`.

The broker answers cache hits synchronously from the shared
``.repro_cache`` store, deduplicates identical in-flight requests, and
runs each miss in a supervised, killable worker process
(:func:`repro.core.parallel.run_supervised`) under bounded concurrency,
per-request deadlines, and queue-full backpressure. See docs/api.md.
"""

from repro.serve.broker import (
    Broker,
    BrokerConfig,
    BrokerMetrics,
    SimResponse,
)
from repro.serve.http import BrokerServer

__all__ = [
    "Broker",
    "BrokerConfig",
    "BrokerMetrics",
    "BrokerServer",
    "SimResponse",
]
