"""Simulation-as-a-service: a long-running broker over :mod:`repro.api`.

Three front doors, one execution substrate:

- :class:`Broker` — embeddable asyncio object. ``await broker.submit(
  SimRequest(...))`` returns a :class:`SimResponse`.
- :class:`BrokerServer` — stdlib ``http.server`` JSON endpoint
  (``POST /v1/simulate``, ``GET /v1/status``, ``GET /v1/metrics``).
- ``python -m repro serve`` — the CLI wrapper around
  :class:`BrokerServer`.

The broker answers cache hits synchronously from the shared
``.repro_cache`` store, deduplicates identical in-flight requests, and
executes misses under bounded concurrency, per-request deadlines, and
queue-full backpressure. Misses run either in per-request supervised
child processes (:func:`repro.core.parallel.run_supervised`, the
default) or — with ``BrokerConfig(workers=N)`` — on a persistent
:class:`WorkerPool`: N long-lived worker processes (optionally joined
by remote TCP workers, ``python -m repro worker``) with per-worker
work-stealing deques, health checks with automatic respawn, and a
shared content-addressed cache. ``BrokerConfig(slo_target_s=...)`` adds
SLO-aware admission: misses whose predicted wait (queue depth × mean
service time) exceeds the target are rejected up front with a matching
Retry-After. See docs/api.md and docs/performance.md.
"""

from repro.serve.broker import (
    Broker,
    BrokerConfig,
    BrokerMetrics,
    SimResponse,
)
from repro.serve.http import BrokerServer
from repro.serve.workers import WorkerPool, serve_worker

__all__ = [
    "Broker",
    "BrokerConfig",
    "BrokerMetrics",
    "BrokerServer",
    "SimResponse",
    "WorkerPool",
    "serve_worker",
]
