"""Simulation-as-a-service: a long-running broker over :mod:`repro.api`.

Three front doors, one execution substrate:

- :class:`Broker` — embeddable asyncio object. ``await broker.submit(
  SimRequest(...))`` returns a :class:`SimResponse`.
- :class:`BrokerServer` — stdlib ``http.server`` JSON endpoint
  (``POST /v1/simulate``, ``GET /v1/status``, ``GET /v1/metrics``).
- ``python -m repro serve`` — the CLI wrapper around
  :class:`BrokerServer`.

The broker answers cache hits synchronously from the shared
``.repro_cache`` store, deduplicates identical in-flight requests, and
executes misses under bounded concurrency, per-request deadlines, and
queue-full backpressure. Misses run either in per-request supervised
child processes (:func:`repro.core.parallel.run_supervised`, the
default) or — with ``BrokerConfig(workers=N)`` — on a persistent
:class:`WorkerPool`: N long-lived worker processes (optionally joined
by remote TCP workers, ``python -m repro worker``) with per-worker
work-stealing deques, health checks with automatic respawn, and a
shared content-addressed cache. ``BrokerConfig(slo_target_s=...)`` adds
SLO-aware admission: misses whose predicted wait (queue depth × mean
service time) exceeds the target are rejected up front with a matching
Retry-After.

The serve tier self-heals (opt-in via :class:`BrokerConfig`; the CLI
turns it on): crash retries with full-jitter backoff, per-worker-slot
and broker-level circuit breakers, hedged requests for p99 stragglers,
HTTP → broker → worker deadline propagation, and a degraded mode that
answers from the last-good LRU or the closed-form analytic model
(:func:`repro.serve.degraded.analytic_estimate`) instead of 500ing.
:mod:`repro.chaos` injects the faults that prove all of this works.
See docs/api.md, docs/performance.md, and docs/chaos.md.
"""

from repro.serve.broker import (
    Broker,
    BrokerConfig,
    BrokerMetrics,
    BrokerUnavailableError,
    SimResponse,
)
from repro.serve.degraded import analytic_estimate
from repro.serve.http import BrokerServer
from repro.serve.workers import WorkerPool, serve_worker

__all__ = [
    "Broker",
    "BrokerConfig",
    "BrokerMetrics",
    "BrokerServer",
    "BrokerUnavailableError",
    "SimResponse",
    "WorkerPool",
    "analytic_estimate",
    "serve_worker",
]
