"""DVFS governor: thermal throttling and node power capping.

Mirrors the behaviour the paper measures through NVML/AMD-SMI clock
telemetry: when a die crosses its throttle temperature, the governor steps
the clock down proportionally to the excess; once the die cools below the
threshold minus a hysteresis band, the clock recovers gradually. A node-
level power cap additionally scales every GPU in the node down when the
chassis budget is exceeded.

The governor also keeps the throttle-time statistics behind the paper's
normalised throttling heatmaps (Figures 17b, 18b, 20).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.node import NodeSpec
from repro.units import clamp

# Clock step per update when above the throttle temperature, per degC of
# excess, and the recovery step when below.
THROTTLE_GAIN_PER_C = 0.03
RECOVERY_STEP = 0.05
HYSTERESIS_C = 3.0


@dataclass
class GovernorStats:
    """Accumulated throttling statistics for one GPU."""

    throttled_time_s: float = 0.0
    observed_time_s: float = 0.0
    freq_time_integral: float = 0.0  # integral of freq_ratio over time

    @property
    def throttle_ratio(self) -> float:
        """Fraction of observed time spent below nominal clock."""
        if self.observed_time_s == 0:
            return 0.0
        return self.throttled_time_s / self.observed_time_s

    @property
    def mean_freq_ratio(self) -> float:
        """Time-weighted mean clock ratio."""
        if self.observed_time_s == 0:
            return 1.0
        return self.freq_time_integral / self.observed_time_s


@dataclass
class DvfsGovernor:
    """Per-node clock governor.

    Attributes:
        node: hardware description (throttle points, power cap).
        freq_ratios: current clock ratio per GPU, 1.0 = boost.
        power_cap_scale: fault-injection multiplier on the chassis power
            budget (a node-level power failure collapses it).
        max_clock: fault-injection ceiling on the clock ratio.
        setpoints: optional per-GPU clock ceilings requested by a
            :mod:`repro.powerctl` governor; None (the default) keeps
            the pre-powerctl update arithmetic untouched.
    """

    node: NodeSpec
    freq_ratios: list[float] = field(default_factory=list)
    stats: list[GovernorStats] = field(default_factory=list)
    power_cap_scale: float = 1.0
    max_clock: float = 1.0
    setpoints: list[float] | None = None

    def __post_init__(self) -> None:
        count = self.node.gpus_per_node
        if not self.freq_ratios:
            self.freq_ratios = [1.0] * count
        if len(self.freq_ratios) != count:
            raise ValueError("freq_ratios must cover every GPU")
        if not self.stats:
            self.stats = [GovernorStats() for _ in range(count)]

    def update(
        self, dt_s: float, temps_c: list[float], powers_w: list[float]
    ) -> list[float]:
        """Advance the governor by ``dt_s`` and return new clock ratios.

        Args:
            dt_s: elapsed time the given temperatures/powers were held.
            temps_c: die temperatures at the end of the interval.
            powers_w: board powers during the interval (for the node cap).
        """
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        gpu = self.node.gpu
        if len(temps_c) != self.node.gpus_per_node:
            raise ValueError("temps_c must cover every GPU")

        # Node power cap: uniform scaling factor if the chassis exceeds
        # its budget. Applied before per-GPU thermal decisions. Fault
        # injection can shrink the budget (node power failure).
        budget = self.node.node_power_cap_watts * self.power_cap_scale
        total_power = sum(powers_w)
        cap_scale = 1.0
        if total_power > budget:
            cap_scale = budget / total_power

        for i, temp in enumerate(temps_c):
            ratio = self.freq_ratios[i]
            if temp > gpu.throttle_temp_c:
                excess = temp - gpu.throttle_temp_c
                ratio -= THROTTLE_GAIN_PER_C * excess
            elif temp < gpu.throttle_temp_c - HYSTERESIS_C:
                ratio += RECOVERY_STEP
            ratio *= cap_scale
            ceiling = min(1.0, self.max_clock)
            if self.setpoints is not None:
                ceiling = min(ceiling, self.setpoints[i])
            floor = min(gpu.base_clock_ratio * self.power_cap_scale
                        if self.power_cap_scale < 1.0
                        else gpu.base_clock_ratio, ceiling)
            ratio = clamp(ratio, floor, ceiling)
            self.freq_ratios[i] = ratio

            stat = self.stats[i]
            stat.observed_time_s += dt_s
            stat.freq_time_integral += ratio * dt_s
            if ratio < 1.0 - 1e-9:
                stat.throttled_time_s += dt_s
        return list(self.freq_ratios)

    def freq_of(self, local_gpu: int) -> float:
        """Current clock ratio of one GPU."""
        return self.freq_ratios[local_gpu]

    def throttle_ratios(self) -> list[float]:
        """Per-GPU fraction of time spent throttled (heatmap rows)."""
        return [s.throttle_ratio for s in self.stats]
