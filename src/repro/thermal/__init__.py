"""Thermal RC model and DVFS throttling governor."""

from repro.thermal.rc_model import NodeThermalState
from repro.thermal.throttle import (
    HYSTERESIS_C,
    RECOVERY_STEP,
    THROTTLE_GAIN_PER_C,
    DvfsGovernor,
    GovernorStats,
)

__all__ = [
    "HYSTERESIS_C",
    "RECOVERY_STEP",
    "THROTTLE_GAIN_PER_C",
    "DvfsGovernor",
    "GovernorStats",
    "NodeThermalState",
]
