"""Two-node RC thermal model of a node's GPUs with airflow coupling.

Each GPU is modelled as two thermal nodes: the **die** (small capacity,
fast ~1 s response) coupled through the die/TIM resistance to the
**heatsink** (large capacity, ~1 min response), which discharges into the
GPU's local inlet air. The fast die pole is what carries the paper's
Section 5 finding: longer compute bursts at larger microbatches lift the
die well above the (slow) heatsink temperature, raising peak temperature
and triggering throttling even when average power barely moves.

The inlet is where the Figure 16 imbalance enters: a GPU's inlet
temperature is the room ambient plus its static chassis-position offset
plus preheat from every upstream GPU's dissipated power:

``T_inlet_i = ambient + offset_i + k * sum_{j in upstream(i)} P_j``

Integration uses the exact matrix-exponential propagator of the 2x2
linear system per step (unconditionally stable for any dt); propagators
are cached per distinct dt.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.node import NodeSpec


def _system_matrix(node: NodeSpec) -> np.ndarray:
    """State matrix A of d[T_die, T_sink]/dt = A x + b(u)."""
    gpu = node.gpu
    r_ds = gpu.die_resistance_c_per_w
    r_sa = gpu.thermal_resistance_c_per_w - r_ds
    c_die = gpu.die_capacitance_j_per_c
    c_sink = gpu.thermal_capacitance_j_per_c
    return np.array(
        [
            [-1.0 / (r_ds * c_die), 1.0 / (r_ds * c_die)],
            [
                1.0 / (r_ds * c_sink),
                -(1.0 / r_ds + 1.0 / r_sa) / c_sink,
            ],
        ]
    )


def _expm_2x2(matrix: np.ndarray, dt: float) -> np.ndarray:
    """exp(A * dt) for a diagonalisable real 2x2 matrix."""
    eigenvalues, eigenvectors = np.linalg.eig(matrix * dt)
    return np.real(
        eigenvectors @ np.diag(np.exp(eigenvalues))
        @ np.linalg.inv(eigenvectors)
    )


@dataclass
class NodeThermalState:
    """Die and heatsink temperatures of one node's GPUs.

    Attributes:
        node: hardware description.
        temps_c: current *die* temperatures (what NVML reports and the
            governor throttles on).
        sink_temps_c: current heatsink temperatures.
    """

    node: NodeSpec
    temps_c: list[float] = field(default_factory=list)
    sink_temps_c: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        idle = [
            self.node.ambient_c + offset
            for offset in self.node.airflow.inlet_offset_c
        ]
        if not self.temps_c:
            self.temps_c = list(idle)
        if not self.sink_temps_c:
            self.sink_temps_c = list(self.temps_c)
        for label, values in (
            ("temps_c", self.temps_c),
            ("sink_temps_c", self.sink_temps_c),
        ):
            if len(values) != self.node.gpus_per_node:
                raise ValueError(f"{label} must cover every GPU in the node")
        self._matrix = _system_matrix(self.node)
        self._propagators: dict[float, np.ndarray] = {}
        # Effective ambient: the room temperature plus any transient
        # offset (thermal-runaway fault injection). Defaults to the
        # spec's ambient, so the healthy path reads the same float.
        self._ambient_c = self.node.ambient_c

    # ------------------------------------------------------------------

    def inlet_temps(self, powers_w: list[float]) -> list[float]:
        """Per-GPU inlet air temperature given current board powers."""
        airflow = self.node.airflow
        inlets = []
        for i in range(self.node.gpus_per_node):
            preheat = airflow.preheat_c_per_w * sum(
                powers_w[j] for j in airflow.upstream[i]
            )
            inlets.append(
                self._ambient_c + airflow.inlet_offset_c[i] + preheat
            )
        return inlets

    def set_ambient_offset(self, delta_c: float) -> None:
        """Shift the effective ambient by ``delta_c`` (0 restores it).

        Models a transient airflow/cooling fault: every inlet in the
        node sees hotter air until the offset is cleared.
        """
        self._ambient_c = self.node.ambient_c + delta_c

    def equilibrium_temps(self, powers_w: list[float]) -> list[float]:
        """Steady-state die temperatures for constant ``powers_w``."""
        self._check_powers(powers_w)
        r_total = self.node.gpu.thermal_resistance_c_per_w
        inlets = self.inlet_temps(powers_w)
        return [
            inlet + power * r_total
            for inlet, power in zip(inlets, powers_w)
        ]

    def equilibrium_sink_temps(self, powers_w: list[float]) -> list[float]:
        """Steady-state heatsink temperatures for constant powers."""
        self._check_powers(powers_w)
        gpu = self.node.gpu
        r_sa = gpu.thermal_resistance_c_per_w - gpu.die_resistance_c_per_w
        inlets = self.inlet_temps(powers_w)
        return [
            inlet + power * r_sa for inlet, power in zip(inlets, powers_w)
        ]

    def set_equilibrium(self, powers_w: list[float]) -> None:
        """Jump both thermal nodes to the steady state of ``powers_w``."""
        self.temps_c = self.equilibrium_temps(powers_w)
        self.sink_temps_c = self.equilibrium_sink_temps(powers_w)

    def step(self, dt_s: float, powers_w: list[float]) -> list[float]:
        """Advance by ``dt_s`` under constant powers; return die temps."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        self._check_powers(powers_w)
        if dt_s == 0:
            return list(self.temps_c)

        propagator = self._propagators.get(dt_s)
        if propagator is None:
            propagator = _expm_2x2(self._matrix, dt_s)
            self._propagators[dt_s] = propagator

        die_eq = np.array(self.equilibrium_temps(powers_w))
        sink_eq = np.array(self.equilibrium_sink_temps(powers_w))
        state = np.column_stack((self.temps_c, self.sink_temps_c))
        equilibrium = np.column_stack((die_eq, sink_eq))
        state = equilibrium + (state - equilibrium) @ propagator.T
        self.temps_c = state[:, 0].tolist()
        self.sink_temps_c = state[:, 1].tolist()
        return list(self.temps_c)

    def hottest(self) -> float:
        """Current hottest die temperature in the node."""
        return max(self.temps_c)

    def front_rear_gap(self) -> float:
        """Mean rear-half minus mean front-half die temperature (degC).

        "Front" and "rear" are derived from airflow depth; positive values
        mean rear GPUs run hotter, the paper's persistent imbalance.
        """
        depths = [
            self.node.depth_of(i) for i in range(self.node.gpus_per_node)
        ]
        median = sorted(depths)[len(depths) // 2]
        front = [t for t, d in zip(self.temps_c, depths) if d < median]
        rear = [t for t, d in zip(self.temps_c, depths) if d >= median]
        if not front or not rear:
            return 0.0
        return sum(rear) / len(rear) - sum(front) / len(front)

    def _check_powers(self, powers_w: list[float]) -> None:
        if len(powers_w) != self.node.gpus_per_node:
            raise ValueError("powers_w must cover every GPU in the node")
        if any(p < 0 for p in powers_w):
            raise ValueError("powers must be non-negative")
