"""The :class:`PipeSchedule` ABC: per-stage rows of scheduled nodes.

Subclasses implement :meth:`PipeSchedule.steps` (the ordered node row of
one stage) and :meth:`PipeSchedule.warmup_forwards` (the closed-form
warmup count, pinned against the emitted rows by property tests).
Everything else — graph assembly/validation, derived warmup and peak
in-flight counts, the activation-memory bound used by
:mod:`repro.models.memory` — is shared here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar

from repro.schedules.graph import (
    NodeType,
    ScheduledNode,
    ScheduleGraph,
    make_node,
)


def check_stage_args(
    stage: int, num_stages: int, num_microbatches: int
) -> None:
    """Legacy-compatible argument validation (exact messages pinned)."""
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    if not 0 <= stage < num_stages:
        raise ValueError(f"stage {stage} out of range [0, {num_stages})")
    if num_microbatches < 1:
        raise ValueError("num_microbatches must be >= 1")


class PipeSchedule(ABC):
    """A pipeline schedule over ``num_stages`` x ``num_microbatches``.

    Class attributes describe the schedule's shape: whether it splits
    the backward pass into input-grad (B) and weight-grad (W) halves,
    whether it hosts multiple virtual-stage chunks per rank, and whether
    it splits each microbatch's sequence into pipelined chunks.
    """

    #: Registry name; set by subclasses.
    name: ClassVar[str] = ""
    #: True when backward is split into B (input grad) + W (weight grad).
    splits_weight_grad: ClassVar[bool] = False
    #: True when the schedule hosts >1 virtual-stage chunk per rank.
    supports_chunks: ClassVar[bool] = False
    #: True when the schedule pipelines sequence chunks within microbatches.
    supports_seq_splits: ClassVar[bool] = False
    #: Seq splits used when the caller does not pick a count.
    default_seq_splits: ClassVar[int] = 1

    def __init__(
        self,
        num_stages: int,
        num_microbatches: int,
        num_chunks: int = 1,
        num_seq_splits: int | None = None,
    ) -> None:
        check_stage_args(0, num_stages, num_microbatches)
        if num_chunks < 1:
            raise ValueError("num_chunks must be >= 1")
        if num_chunks > 1 and not self.supports_chunks:
            raise ValueError(
                f"schedule {self.name!r} does not use virtual-stage "
                f"chunks (got num_chunks={num_chunks})"
            )
        if num_seq_splits is None:
            num_seq_splits = (
                self.default_seq_splits if self.supports_seq_splits else 1
            )
        if num_seq_splits < 1:
            raise ValueError("num_seq_splits must be >= 1")
        if num_seq_splits > 1 and not self.supports_seq_splits:
            raise ValueError(
                f"schedule {self.name!r} does not split sequences "
                f"(got num_seq_splits={num_seq_splits})"
            )
        self.num_stages = num_stages
        self.num_microbatches = num_microbatches
        self.num_chunks = num_chunks
        self.num_seq_splits = num_seq_splits
        self._rows: dict[int, tuple[ScheduledNode, ...]] = {}

    # ------------------------------------------------------------------
    # Subclass surface
    # ------------------------------------------------------------------

    @abstractmethod
    def steps(self, stage: int) -> list[ScheduledNode]:
        """Ordered node row for one stage (uncached; use rank_ops)."""

    @abstractmethod
    def warmup_forwards(self, stage: int) -> int:
        """Closed-form count of forward units before the first backward."""

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------

    def _node(
        self,
        type: NodeType,
        stage: int,
        microbatch: int,
        chunk: int = 0,
        seq_split: int = 0,
    ) -> ScheduledNode:
        return make_node(
            type, stage, self.num_stages, self.num_chunks,
            microbatch, chunk, seq_split,
        )

    def rank_ops(self, stage: int) -> tuple[ScheduledNode, ...]:
        """Memoised per-stage node row (validates the stage index)."""
        check_stage_args(stage, self.num_stages, self.num_microbatches)
        row = self._rows.get(stage)
        if row is None:
            row = tuple(self.steps(stage))
            self._rows[stage] = row
        return row

    def graph(self) -> ScheduleGraph:
        """Assemble (and structurally validate) the full schedule graph."""
        graph = ScheduleGraph(
            num_stages=self.num_stages,
            num_microbatches=self.num_microbatches,
            num_chunks=self.num_chunks,
            num_seq_splits=self.num_seq_splits,
            stage_rows=tuple(
                self.rank_ops(stage) for stage in range(self.num_stages)
            ),
            splits_weight_grad=self.splits_weight_grad,
        )
        graph.validate()
        return graph

    def derived_warmup_forwards(self, stage: int) -> int:
        """Warmup count read off the emitted row (tests pin this against
        the closed-form :meth:`warmup_forwards`)."""
        count = 0
        for node in self.rank_ops(stage):
            if node.type is not NodeType.FORWARD:
                break
            count += 1
        return count

    def peak_activation_units(self, stage: int) -> int:
        """Peak in-flight forward units awaiting their input-grad
        backward (the dominant activation stash), in seq-chunk units."""
        peak = level = 0
        for node in self.rank_ops(stage):
            if node.type is NodeType.FORWARD:
                level += 1
                peak = max(peak, level)
            elif node.type is NodeType.BACKWARD:
                level -= 1
        return peak

    def peak_weight_stash_units(self, stage: int) -> int:
        """Peak completed-B units whose weight-grad W is still pending."""
        peak = level = 0
        for node in self.rank_ops(stage):
            if node.type is NodeType.BACKWARD:
                level += 1
                peak = max(peak, level)
            elif node.type is NodeType.WEIGHT:
                level -= 1
        return peak

    @classmethod
    def activation_in_flight(
        cls, num_stages: int, num_microbatches: int | None = None
    ) -> int:
        """Microbatches of activations held at stage 0 (memory model).

        The 1F1B family (plain, interleaved, zero-bubble, seq-split)
        bounds this at pipeline depth, clamped at 8 in-flight like the
        paper's measured configurations. GPipe overrides: it stores all
        microbatches.
        """
        del num_microbatches
        return min(num_stages, 8) if num_stages > 1 else 1

    @classmethod
    def bubble_fraction(
        cls, num_stages: int, num_microbatches: int
    ) -> float:
        """Analytic pipeline-bubble estimate: idle time / compute time.

        The classic fill-and-drain bound ``(S - 1) / M`` for the 1F1B
        family (and GPipe, whose bubble has the same closed form).
        Zero-bubble schedules override with their tighter bound. Used
        by the joint optimizer's roofline ranking — a cheap lower-bound
        flavour estimate, never a substitute for simulation.
        """
        if num_stages <= 1 or num_microbatches < 1:
            return 0.0
        return (num_stages - 1) / num_microbatches
