"""Schedule registry: name -> :class:`PipeSchedule` class.

Built-in schedules register themselves at import of
:mod:`repro.schedules`; anything else (tests, future plugins) can add a
class with :func:`register_schedule`. Lookup normalises user spellings
(``ZB_H1`` -> ``zb-h1``) and rejects unknown names with a
did-you-mean message, so strategy parsing, ``SimRequest`` validation,
and the CLI all produce the same diagnosable error.
"""

from __future__ import annotations

from repro.schedules.base import PipeSchedule
from repro.suggest import normalize_name, unknown_name_message

_REGISTRY: dict[str, type[PipeSchedule]] = {}


def register_schedule(cls: type[PipeSchedule]) -> type[PipeSchedule]:
    """Class decorator: add a schedule to the registry by its ``name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    _REGISTRY[cls.name] = cls
    return cls


def schedule_names() -> tuple[str, ...]:
    """Sorted names of every registered schedule."""
    return tuple(sorted(_REGISTRY))


def canonical_schedule_name(name: str) -> str:
    """Resolve a user spelling to its registry name.

    Raises:
        ValueError: with a did-you-mean message for unknown names.
    """
    canonical = normalize_name(str(name))
    if canonical not in _REGISTRY:
        raise ValueError(
            unknown_name_message("pipeline schedule", name, schedule_names())
        )
    return canonical


def get_schedule_class(name: str) -> type[PipeSchedule]:
    """Registered class for ``name`` (normalised, did-you-mean errors)."""
    return _REGISTRY[canonical_schedule_name(name)]


def create_schedule(
    name: str,
    num_stages: int,
    num_microbatches: int,
    num_chunks: int = 1,
    num_seq_splits: int | None = None,
) -> PipeSchedule:
    """Instantiate a registered schedule for one pipeline shape."""
    cls = get_schedule_class(name)
    return cls(
        num_stages,
        num_microbatches,
        num_chunks=num_chunks,
        num_seq_splits=num_seq_splits,
    )
