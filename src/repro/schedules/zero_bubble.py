"""ZB-H1: zero-bubble pipeline schedule with split B/W backward.

Following Qi et al.'s ZB-H1 schedule (sail-sg/zero-bubble), the
backward pass is split into its input-grad half ``B`` — the only part
on the critical inter-stage path — and its weight-grad half ``W``,
which has no cross-stage consumers and is free to move around the
timeline. Warmup forward counts match 1F1B exactly and at most one
weight grad is ever pending, so peak activation memory matches 1F1B.

Placement is what makes it work on a rank that executes its queue
strictly in order: each pending ``W`` is enqueued immediately *before*
the next backward — that is, before the next grad ``recv`` — so it
executes inside the window the rank would otherwise spend waiting for
the grad to arrive from downstream. (Enqueued *after* a backward, the
``W`` would instead sit between the grad ``send`` and the next
forward, where there is usually no wait to absorb, and would delay the
forward chain — measurably erasing the entire zero-bubble win.)
Because ``B`` alone is roughly half a full backward, grads also
propagate upstream about twice as fast during the drain; together the
two effects cut the pipeline bubble by roughly the ``W``-share of the
backward, which is the H1 bound.
"""

from __future__ import annotations

from repro.schedules.base import PipeSchedule
from repro.schedules.graph import NodeType, ScheduledNode
from repro.schedules.registry import register_schedule


@register_schedule
class ZeroBubbleH1Schedule(PipeSchedule):
    """The ZB-H1 handcrafted zero-bubble schedule (B/W split)."""

    name = "zb-h1"
    splits_weight_grad = True

    def warmup_forwards(self, stage: int) -> int:
        # Same as 1F1B: activation memory is bounded identically.
        return min(self.num_stages - stage - 1, self.num_microbatches)

    @classmethod
    def bubble_fraction(
        cls, num_stages: int, num_microbatches: int
    ) -> float:
        """H1 bound: the movable W-share (~1/3 of F+B+W) leaves the
        drain, cutting the fill-and-drain bubble to roughly a third."""
        if num_stages <= 1 or num_microbatches < 1:
            return 0.0
        return (num_stages - 1) / (3.0 * num_microbatches)

    def steps(self, stage: int) -> list[ScheduledNode]:
        m = self.num_microbatches
        warmup = self.warmup_forwards(stage)
        nodes = [
            self._node(NodeType.FORWARD, stage, mb) for mb in range(warmup)
        ]
        f = warmup
        b = w = 0
        # The pending W always goes right before the next B: in the
        # rank's in-order queue that places it ahead of the grad recv,
        # so it runs while the rank would otherwise wait for the grad
        # (see module docstring). Pending stash never exceeds one unit.
        while f < m:
            nodes.append(self._node(NodeType.FORWARD, stage, f))
            f += 1
            if w < b:
                nodes.append(self._node(NodeType.WEIGHT, stage, w))
                w += 1
            nodes.append(self._node(NodeType.BACKWARD, stage, b))
            b += 1
        while b < m:
            if w < b:
                nodes.append(self._node(NodeType.WEIGHT, stage, w))
                w += 1
            nodes.append(self._node(NodeType.BACKWARD, stage, b))
            b += 1
        while w < m:
            nodes.append(self._node(NodeType.WEIGHT, stage, w))
            w += 1
        return nodes
