"""The classic schedules: 1F1B, Megatron interleaved 1F1B, and GPipe.

These reproduce — node for node — the per-rank op orders the legacy
:mod:`repro.engine.schedule` module hardcoded, which is what keeps the
schedule-graph engine path bit-identical to the pre-refactor engine
(pinned in tests/test_schedule_identity.py).
"""

from __future__ import annotations

from repro.schedules.base import PipeSchedule
from repro.schedules.graph import NodeType, ScheduledNode
from repro.schedules.registry import register_schedule


@register_schedule
class OneFOneBSchedule(PipeSchedule):
    """Standard 1F1B: warmup forwards, steady 1F/1B, drain backwards.

    Stage ``s`` admits ``num_stages - s - 1`` warmup forwards, then
    alternates one-forward-one-backward, then drains the remaining
    backwards — bounding in-flight activations at pipeline depth at the
    price of a ``(p-1)/(m+p-1)`` bubble fraction.
    """

    name = "1f1b"

    def warmup_forwards(self, stage: int) -> int:
        return min(self.num_stages - stage - 1, self.num_microbatches)

    def steps(self, stage: int) -> list[ScheduledNode]:
        m = self.num_microbatches
        warmup = self.warmup_forwards(stage)
        steady = m - warmup
        nodes = [
            self._node(NodeType.FORWARD, stage, mb) for mb in range(warmup)
        ]
        for i in range(steady):
            nodes.append(self._node(NodeType.FORWARD, stage, warmup + i))
            nodes.append(self._node(NodeType.BACKWARD, stage, i))
        for mb in range(steady, m):
            nodes.append(self._node(NodeType.BACKWARD, stage, mb))
        return nodes


@register_schedule
class InterleavedSchedule(PipeSchedule):
    """Megatron's interleaved (virtual-stage) 1F1B.

    Each rank hosts ``num_chunks`` virtual stages; microbatch ``mb``
    streams through virtual stage ``stage + c * num_stages`` for chunk
    ``c``, and backwards drain chunks in reverse order. Requires
    ``num_microbatches`` to be a multiple of ``num_stages`` (Megatron's
    constraint).
    """

    name = "interleaved"
    supports_chunks = True

    def __init__(
        self,
        num_stages: int,
        num_microbatches: int,
        num_chunks: int = 2,
        num_seq_splits: int | None = None,
    ) -> None:
        if num_chunks < 2:
            raise ValueError("interleaving needs at least 2 chunks")
        if num_microbatches % num_stages:
            raise ValueError(
                "interleaved schedule requires num_microbatches to be a "
                f"multiple of num_stages ({num_microbatches} % {num_stages})"
            )
        super().__init__(
            num_stages, num_microbatches, num_chunks, num_seq_splits
        )

    def warmup_forwards(self, stage: int) -> int:
        return min(
            (self.num_stages - stage - 1) * 2
            + (self.num_chunks - 1) * self.num_stages,
            self.num_microbatches * self.num_chunks,
        )

    def _forward_slot(self, k: int) -> tuple[int, int]:
        """Virtual microbatch index -> (microbatch, chunk)."""
        per_round = self.num_stages * self.num_chunks
        group, within = divmod(k, per_round)
        chunk = within // self.num_stages
        microbatch = group * self.num_stages + within % self.num_stages
        return microbatch, chunk

    def _backward_slot(self, i: int) -> tuple[int, int]:
        """Backward virtual microbatches drain chunks in reverse order."""
        per_round = self.num_stages * self.num_chunks
        group, within = divmod(i, per_round)
        chunk = self.num_chunks - 1 - within // self.num_stages
        microbatch = group * self.num_stages + within % self.num_stages
        return microbatch, chunk

    def steps(self, stage: int) -> list[ScheduledNode]:
        total = self.num_microbatches * self.num_chunks
        warmup = self.warmup_forwards(stage)
        nodes: list[ScheduledNode] = []
        for k in range(warmup):
            mb, chunk = self._forward_slot(k)
            nodes.append(self._node(NodeType.FORWARD, stage, mb, chunk))
        steady = total - warmup
        for i in range(steady):
            mb, chunk = self._forward_slot(warmup + i)
            nodes.append(self._node(NodeType.FORWARD, stage, mb, chunk))
            mb, chunk = self._backward_slot(i)
            nodes.append(self._node(NodeType.BACKWARD, stage, mb, chunk))
        for i in range(steady, total):
            mb, chunk = self._backward_slot(i)
            nodes.append(self._node(NodeType.BACKWARD, stage, mb, chunk))
        return nodes


@register_schedule
class GpipeSchedule(PipeSchedule):
    """GPipe: all forwards, then all backwards in reverse order.

    Simpler than 1F1B but stores activations for *every* microbatch at
    once and synchronises the whole pipeline between the forward and
    backward waves — the synchronized compute bursts raise aggregate
    peak power (the paper's burstiness mechanism, Section 5).
    """

    name = "gpipe"

    def warmup_forwards(self, stage: int) -> int:
        return self.num_microbatches

    def steps(self, stage: int) -> list[ScheduledNode]:
        m = self.num_microbatches
        nodes = [self._node(NodeType.FORWARD, stage, mb) for mb in range(m)]
        nodes.extend(
            self._node(NodeType.BACKWARD, stage, mb)
            for mb in reversed(range(m))
        )
        return nodes

    @classmethod
    def activation_in_flight(
        cls, num_stages: int, num_microbatches: int | None = None
    ) -> int:
        if num_microbatches is None:
            raise ValueError(
                "GPipe memory model needs num_microbatches (it stores "
                "activations for the whole batch)"
            )
        return max(1, num_microbatches)
