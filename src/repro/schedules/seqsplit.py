"""Seq1F1B: sequence-split 1F1B (sail-sg/zero-bubble's seq1f1b).

Each microbatch's sequence is cut into ``num_seq_splits`` chunks that
pipeline through the stages like miniature microbatches: forwards
stream chunks in order, backwards drain them in *reverse* order (the
gradient of chunk ``k`` depends on every later chunk through attention,
so the last chunk's backward runs first). Relative to plain 1F1B this
shrinks both the warmup ramp and the per-unit activation stash — peak
in-flight activations drop from ``p`` microbatches toward
``(p + num_sq - 1) / num_sq`` — at the price of smaller (less
efficient) kernels per chunk.
"""

from __future__ import annotations

from repro.schedules.base import PipeSchedule
from repro.schedules.graph import NodeType, ScheduledNode
from repro.schedules.registry import register_schedule


@register_schedule
class Seq1F1BSchedule(PipeSchedule):
    """Sequence-split 1F1B over ``num_seq_splits`` chunks per microbatch."""

    name = "seq1f1b"
    supports_seq_splits = True
    default_seq_splits = 2

    def warmup_forwards(self, stage: int) -> int:
        # Reduces to 1F1B's min(p - s - 1, m) at num_seq_splits == 1.
        return min(
            self.num_stages - stage - 2 + self.num_seq_splits,
            self.num_microbatches * self.num_seq_splits,
        )

    def _forward_unit(self, k: int) -> tuple[int, int]:
        """Forward unit index -> (microbatch, seq chunk): in order."""
        return divmod(k, self.num_seq_splits)

    def _backward_unit(self, i: int) -> tuple[int, int]:
        """Backward unit index -> (microbatch, seq chunk): chunks drain
        in reverse order within each microbatch."""
        mb, within = divmod(i, self.num_seq_splits)
        return mb, self.num_seq_splits - 1 - within

    def steps(self, stage: int) -> list[ScheduledNode]:
        total = self.num_microbatches * self.num_seq_splits
        warmup = self.warmup_forwards(stage)
        nodes: list[ScheduledNode] = []
        for k in range(warmup):
            mb, sq = self._forward_unit(k)
            nodes.append(
                self._node(NodeType.FORWARD, stage, mb, seq_split=sq)
            )
        steady = total - warmup
        for i in range(steady):
            mb, sq = self._forward_unit(warmup + i)
            nodes.append(
                self._node(NodeType.FORWARD, stage, mb, seq_split=sq)
            )
            mb, sq = self._backward_unit(i)
            nodes.append(
                self._node(NodeType.BACKWARD, stage, mb, seq_split=sq)
            )
        for i in range(steady, total):
            mb, sq = self._backward_unit(i)
            nodes.append(
                self._node(NodeType.BACKWARD, stage, mb, seq_split=sq)
            )
        return nodes
