"""Pluggable pipeline schedules as explicit schedule graphs.

The subsystem ROADMAP item 1 asked for: schedules are
:class:`~repro.schedules.base.PipeSchedule` objects emitting per-stage
rows of typed :class:`~repro.schedules.graph.ScheduledNode` ops
(forward / input-grad backward / weight grad, with microbatch,
virtual-stage chunk, and sequence-split indices plus P2P peers), bundled
with explicit cross-stage dependency edges in a
:class:`~repro.schedules.graph.ScheduleGraph`. The engine's graph
builder consumes the rows; tests, figures, and the memory model consume
the graph and the registry.

Built-ins: ``1f1b``, ``interleaved``, ``gpipe``, ``zb-h1``
(zero-bubble, split B/W backward), and ``seq1f1b`` (sequence-split).
See docs/schedules.md for the model and how to add a schedule.
"""

from repro.schedules.base import PipeSchedule, check_stage_args
from repro.schedules.graph import (
    NodeType,
    ScheduledNode,
    ScheduleGraph,
    make_node,
    owner_stage,
)
from repro.schedules.registry import (
    canonical_schedule_name,
    create_schedule,
    get_schedule_class,
    register_schedule,
    schedule_names,
)

# Importing the implementation modules populates the registry.
from repro.schedules.standard import (  # noqa: E402
    GpipeSchedule,
    InterleavedSchedule,
    OneFOneBSchedule,
)
from repro.schedules.zero_bubble import ZeroBubbleH1Schedule  # noqa: E402
from repro.schedules.seqsplit import Seq1F1BSchedule  # noqa: E402

__all__ = [
    "PipeSchedule",
    "NodeType",
    "ScheduledNode",
    "ScheduleGraph",
    "check_stage_args",
    "make_node",
    "owner_stage",
    "canonical_schedule_name",
    "create_schedule",
    "get_schedule_class",
    "register_schedule",
    "schedule_names",
    "OneFOneBSchedule",
    "InterleavedSchedule",
    "GpipeSchedule",
    "ZeroBubbleH1Schedule",
    "Seq1F1BSchedule",
]
