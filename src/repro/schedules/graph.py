"""Schedule graphs: typed F/B/W nodes with explicit dependency edges.

A pipeline schedule is, per stage, an ordered row of
:class:`ScheduledNode` compute ops (forward, input-grad backward, and —
for zero-bubble schedules — split-off weight-grad ops), each carrying
its microbatch, virtual-stage chunk, and sequence-split indices plus the
peer stages it receives activations/gradients from and sends them to.
:class:`ScheduleGraph` bundles the rows with the *cross-stage dependency
edges* implied by pipeline dataflow, so schedules can be validated
structurally (coverage, acyclicity, per-rank orders consistent with the
dependencies) independent of any simulator.

The engine (:mod:`repro.engine.builder`) consumes the per-stage rows
directly; tests and the schedule-timeline figure consume the full graph.
Modeled on sail-sg/zero-bubble's ``ScheduledNode`` abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class NodeType(Enum):
    """Typed schedule op: forward, (input-grad) backward, weight grad."""

    FORWARD = "F"
    BACKWARD = "B"
    WEIGHT = "W"


#: Key identifying one compute unit: (type, virtual stage, microbatch,
#: seq split). Dependency edges connect these keys.
NodeKey = tuple


@dataclass(frozen=True)
class ScheduledNode:
    """One schedule slot: run ``type`` for one microbatch's seq chunk.

    ``chunk`` is the virtual-stage chunk index (0 for non-interleaved
    schedules); ``seq_split`` the sequence chunk (0 when the schedule
    does not split sequences). ``recv_peer`` / ``send_peer`` are the
    *stages* this op exchanges pipeline P2P traffic with (``None`` at
    the pipeline boundaries and for weight-grad ops, which are local).
    """

    type: NodeType
    stage: int
    microbatch: int
    chunk: int = 0
    seq_split: int = 0
    recv_peer: int | None = None
    send_peer: int | None = None

    def virtual_stage(self, num_stages: int) -> int:
        return self.chunk * num_stages + self.stage

    def key(self, num_stages: int) -> NodeKey:
        return (
            self.type,
            self.virtual_stage(num_stages),
            self.microbatch,
            self.seq_split,
        )


def owner_stage(virtual_stage: int, num_stages: int) -> int:
    """Stage (pipeline rank within a replica) hosting a virtual stage."""
    return virtual_stage % num_stages


def make_node(
    type: NodeType,
    stage: int,
    num_stages: int,
    num_chunks: int,
    microbatch: int,
    chunk: int = 0,
    seq_split: int = 0,
) -> ScheduledNode:
    """Build a node with its P2P peers derived from pipeline position."""
    vs = chunk * num_stages + stage
    total_vs = num_stages * num_chunks
    recv_peer = send_peer = None
    if type is NodeType.FORWARD:
        if vs > 0:
            recv_peer = owner_stage(vs - 1, num_stages)
        if vs < total_vs - 1:
            send_peer = owner_stage(vs + 1, num_stages)
    elif type is NodeType.BACKWARD:
        if vs < total_vs - 1:
            recv_peer = owner_stage(vs + 1, num_stages)
        if vs > 0:
            send_peer = owner_stage(vs - 1, num_stages)
    return ScheduledNode(
        type=type,
        stage=stage,
        microbatch=microbatch,
        chunk=chunk,
        seq_split=seq_split,
        recv_peer=recv_peer,
        send_peer=send_peer,
    )


@dataclass(frozen=True)
class ScheduleGraph:
    """Per-stage node rows plus the cross-stage dependency structure."""

    num_stages: int
    num_microbatches: int
    num_chunks: int = 1
    num_seq_splits: int = 1
    stage_rows: tuple[tuple[ScheduledNode, ...], ...] = field(default=())
    splits_weight_grad: bool = False

    @property
    def total_virtual_stages(self) -> int:
        return self.num_stages * self.num_chunks

    def nodes(self):
        for row in self.stage_rows:
            yield from row

    def dependency_edges(self) -> list[tuple[NodeKey, NodeKey]]:
        """Dataflow edges (prerequisite key -> dependent key).

        * F(vs) waits on F(vs-1) of the same (microbatch, seq chunk);
        * B(vs) waits on B(vs+1) of the same unit and on its own F(vs);
          at the last virtual stage it additionally waits on the final
          seq chunk's forward (the loss needs the whole sequence);
        * W waits on the matching B (weight grads reuse B's inputs).
        """
        p = self.num_stages
        last_vs = self.total_virtual_stages - 1
        edges: list[tuple[NodeKey, NodeKey]] = []
        for node in self.nodes():
            vs = node.virtual_stage(p)
            key = node.key(p)
            if node.type is NodeType.FORWARD:
                if vs > 0:
                    edges.append((
                        (NodeType.FORWARD, vs - 1, node.microbatch,
                         node.seq_split),
                        key,
                    ))
            elif node.type is NodeType.BACKWARD:
                edges.append((
                    (NodeType.FORWARD, vs, node.microbatch, node.seq_split),
                    key,
                ))
                if vs < last_vs:
                    edges.append((
                        (NodeType.BACKWARD, vs + 1, node.microbatch,
                         node.seq_split),
                        key,
                    ))
                elif node.seq_split != self.num_seq_splits - 1:
                    edges.append((
                        (NodeType.FORWARD, vs, node.microbatch,
                         self.num_seq_splits - 1),
                        key,
                    ))
            else:
                edges.append((
                    (NodeType.BACKWARD, vs, node.microbatch, node.seq_split),
                    key,
                ))
        return edges

    def validate(self) -> None:
        """Structural validation: coverage, acyclicity, rank consistency.

        Raises:
            ValueError: if any (stage, microbatch, chunk, seq chunk) unit
                is missing or duplicated for a required node type, or if
                the union of per-rank order edges and dependency edges
                contains a cycle (which includes any per-rank order that
                contradicts pipeline dataflow, e.g. a backward scheduled
                before its forward).
        """
        if len(self.stage_rows) != self.num_stages:
            raise ValueError(
                f"expected {self.num_stages} stage rows, "
                f"got {len(self.stage_rows)}"
            )
        required = [NodeType.FORWARD, NodeType.BACKWARD]
        if self.splits_weight_grad:
            required.append(NodeType.WEIGHT)
        expected_units = {
            (mb, chunk, sq)
            for mb in range(self.num_microbatches)
            for chunk in range(self.num_chunks)
            for sq in range(self.num_seq_splits)
        }
        for stage, row in enumerate(self.stage_rows):
            seen: dict[NodeType, set] = {t: set() for t in NodeType}
            for node in row:
                if node.stage != stage:
                    raise ValueError(
                        f"node {node} listed under stage {stage}"
                    )
                unit = (node.microbatch, node.chunk, node.seq_split)
                if unit in seen[node.type]:
                    raise ValueError(
                        f"duplicate {node.type.value} for stage {stage} "
                        f"unit {unit}"
                    )
                seen[node.type].add(unit)
            for node_type in required:
                if seen[node_type] != expected_units:
                    raise ValueError(
                        f"stage {stage} does not run {node_type.value} "
                        "exactly once per (microbatch, chunk, seq split)"
                    )
            for node_type in NodeType:
                if node_type not in required and seen[node_type]:
                    raise ValueError(
                        f"stage {stage} emits unexpected "
                        f"{node_type.value} nodes"
                    )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        p = self.num_stages
        indegree: dict[NodeKey, int] = {}
        successors: dict[NodeKey, list[NodeKey]] = {}
        for node in self.nodes():
            indegree.setdefault(node.key(p), 0)

        def add_edge(src: NodeKey, dst: NodeKey) -> None:
            if src not in indegree or dst not in indegree:
                raise ValueError(f"dangling dependency edge {src} -> {dst}")
            successors.setdefault(src, []).append(dst)
            indegree[dst] += 1

        for row in self.stage_rows:
            for prev, node in zip(row, row[1:]):
                add_edge(prev.key(p), node.key(p))
        for src, dst in self.dependency_edges():
            add_edge(src, dst)

        ready = [key for key, deg in indegree.items() if deg == 0]
        visited = 0
        while ready:
            key = ready.pop()
            visited += 1
            for nxt in successors.get(key, ()):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if visited != len(indegree):
            raise ValueError(
                "schedule graph has a cycle: per-rank order contradicts "
                "pipeline dataflow"
            )
