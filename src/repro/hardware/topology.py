"""Topology resolution: which links a transfer between two ranks crosses.

This is the piece that makes collectives *topology-aware* (or exposes the
cost when they are not): intra-node traffic rides NVLink/xGMI, while
inter-node traffic crosses host PCIe on both ends plus the InfiniBand
fabric, sharing NICs with every other flow of the node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.hardware.cluster import ClusterSpec
from repro.hardware.interconnect import LinkKind, LinkSpec


@dataclass(frozen=True)
class Path:
    """The links one point-to-point transfer traverses, in order.

    Attributes:
        links: traversed fabric segments.
        src: source global rank.
        dst: destination global rank.
        inter_node: whether the path leaves the source node.
    """

    links: tuple[LinkSpec, ...]
    src: int
    dst: int
    inter_node: bool

    @property
    def bottleneck_bandwidth(self) -> float:
        """Peak effective bandwidth of the narrowest segment (bytes/s)."""
        return min(link.peak_effective_bandwidth for link in self.links)

    @property
    def latency_s(self) -> float:
        """Sum of per-segment base latencies."""
        return sum(link.latency_s for link in self.links)

    @property
    def uses_pcie(self) -> bool:
        """Whether the path includes a host PCIe segment."""
        return any(link.kind is LinkKind.PCIE for link in self.links)


def resolve_path(cluster: ClusterSpec, src: int, dst: int) -> Path:
    """Links traversed by a transfer from rank ``src`` to rank ``dst``.

    Same package (MI250 GCD pair) -> intra-package xGMI; same node ->
    node fabric; different nodes -> PCIe + InfiniBand + PCIe.
    """
    if src == dst:
        raise ValueError("src and dst must differ")
    node = cluster.node
    if cluster.same_node(src, dst):
        a, b = cluster.local_index(src), cluster.local_index(dst)
        if node.intra_package_link is not None and node.same_package(a, b):
            links: tuple[LinkSpec, ...] = (node.intra_package_link,)
        else:
            links = (node.intra_node_link,)
        return Path(links=links, src=src, dst=dst, inter_node=False)
    links = (node.host_pcie, cluster.inter_node_link, node.host_pcie)
    return Path(links=links, src=src, dst=dst, inter_node=True)


def group_spans_nodes(cluster: ClusterSpec, ranks: Iterable[int]) -> bool:
    """Whether a communication group crosses node boundaries."""
    nodes = {cluster.node_of(r) for r in ranks}
    return len(nodes) > 1


def nodes_of_group(cluster: ClusterSpec, ranks: Iterable[int]) -> set[int]:
    """Set of nodes hosting the given ranks."""
    return {cluster.node_of(r) for r in ranks}


def ring_paths(cluster: ClusterSpec, ranks: list[int]) -> list[Path]:
    """Paths of the logical ring ``ranks[0] -> ranks[1] -> ... -> ranks[0]``.

    Ring collectives (NCCL-style AllReduce/AllGather) stream data around
    this ring; the slowest hop bounds throughput.
    """
    if len(ranks) < 2:
        raise ValueError("a ring needs at least 2 ranks")
    if len(set(ranks)) != len(ranks):
        raise ValueError("ring ranks must be distinct")
    return [
        resolve_path(cluster, ranks[i], ranks[(i + 1) % len(ranks)])
        for i in range(len(ranks))
    ]


def slowest_hop(paths: Iterable[Path]) -> Path:
    """The path with the lowest bottleneck bandwidth."""
    paths = list(paths)
    if not paths:
        raise ValueError("no paths given")
    return min(paths, key=lambda p: p.bottleneck_bandwidth)
