"""Cluster models: the three testbeds of Table 3 plus custom builders.

A :class:`ClusterSpec` is a set of identical nodes joined by an inter-node
fabric. Global GPU ranks are dense: rank ``r`` lives on node ``r // g`` at
local index ``r % g`` where ``g`` is GPUs per node — matching how SLURM
exposes the paper's machines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hardware.interconnect import INFINIBAND_100G, LinkSpec, infiniband
from repro.hardware.node import (
    HGX_H100_NODE,
    HGX_H200_NODE,
    MI250_NODE,
    NodeSpec,
)


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous multi-node GPU cluster.

    Attributes:
        name: identifier used by benchmarks and result tables.
        node: node blueprint (all nodes identical).
        num_nodes: node count.
        inter_node_link: fabric between nodes (InfiniBand in the paper).
    """

    name: str
    node: NodeSpec
    num_nodes: int
    inter_node_link: LinkSpec = INFINIBAND_100G

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")

    @property
    def total_gpus(self) -> int:
        """Logical GPU count across the cluster."""
        return self.num_nodes * self.node.gpus_per_node

    @property
    def aggregate_sustained_flops(self) -> float:
        """Cluster-wide sustained FLOP/s at boost clock."""
        return self.total_gpus * self.node.gpu.sustained_flops

    @property
    def total_memory_bytes(self) -> float:
        """Cluster-wide HBM capacity."""
        return self.total_gpus * self.node.gpu.memory_bytes

    def node_of(self, rank: int) -> int:
        """Node index hosting global GPU ``rank``."""
        self._check_rank(rank)
        return rank // self.node.gpus_per_node

    def local_index(self, rank: int) -> int:
        """Within-node index of global GPU ``rank``."""
        self._check_rank(rank)
        return rank % self.node.gpus_per_node

    def same_node(self, a: int, b: int) -> bool:
        """Whether two global ranks share a node."""
        return self.node_of(a) == self.node_of(b)

    def ranks_on_node(self, node: int) -> range:
        """Global ranks hosted on ``node``."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        g = self.node.gpus_per_node
        return range(node * g, (node + 1) * g)

    def with_inter_node_gbps(self, gbps: float) -> "ClusterSpec":
        """Variant with a different inter-node bandwidth (Section 7.1)."""
        return replace(
            self,
            name=f"{self.name}-ib{int(gbps)}g",
            inter_node_link=infiniband(gbps),
        )

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.total_gpus:
            raise ValueError(
                f"rank {rank} out of range for {self.total_gpus}-GPU cluster"
            )


# Table 3 clusters -----------------------------------------------------------

H200_X32 = ClusterSpec(name="h200x32", node=HGX_H200_NODE, num_nodes=4)
H100_X64 = ClusterSpec(name="h100x64", node=HGX_H100_NODE, num_nodes=8)
MI250_X32 = ClusterSpec(name="mi250x32", node=MI250_NODE, num_nodes=4)

_CATALOG = {c.name: c for c in (H200_X32, H100_X64, MI250_X32)}


def cluster_names() -> list[str]:
    """Names of the paper's evaluated clusters."""
    return sorted(_CATALOG)


def get_cluster(name: str) -> ClusterSpec:
    """Look up a cluster by name (case-insensitive)."""
    key = name.lower()
    if key not in _CATALOG:
        from repro.suggest import unknown_name_message

        raise KeyError(
            unknown_name_message("cluster", name, cluster_names())
        )
    return _CATALOG[key]


def one_gpu_per_node(base: ClusterSpec, num_nodes: int) -> ClusterSpec:
    """The Section 4.2 validation setup: 1 GPU per node across ``num_nodes``.

    Removes intra-node sharing (each GPU owns the full PCIe path and NIC),
    producing the more uniform communication topology of Figure 8.
    """
    node = replace(
        base.node,
        name=f"{base.node.name}-1gpu",
        gpus_per_node=1,
        airflow=_single_gpu_airflow(),
        node_power_cap_watts=base.node.gpu.tdp_watts * 1.1,
        nic_count=1,
        package_of=(0,),
    )
    return ClusterSpec(
        name=f"{base.name}-1pern{num_nodes}",
        node=node,
        num_nodes=num_nodes,
        inter_node_link=base.inter_node_link,
    )


def _single_gpu_airflow():
    from repro.hardware.node import AirflowLayout

    return AirflowLayout(
        upstream=((),),
        inlet_offset_c=(0.0,),
        preheat_c_per_w=0.0,
    )
