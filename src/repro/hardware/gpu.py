"""GPU device models.

A :class:`GPUSpec` carries the performance, power, and thermal parameters
of one logical GPU (one H100/H200, or one MI250 GCD). Performance and power
numbers come from Table 3 of the paper and vendor datasheets; thermal
parameters are calibrated so steady-state temperatures and throttling
onset match the ranges reported in Figures 4, 9-10, and 17-19.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GB, TERA


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one logical GPU.

    Attributes:
        name: vendor model, e.g. ``"H200"``.
        architecture: microarchitecture family, e.g. ``"Hopper"``.
        memory_bytes: HBM capacity.
        peak_flops_fp16: dense FP16/BF16 peak, FLOP/s.
        mfu: sustained fraction of peak achieved by large training GEMMs
            (model FLOP utilisation ceiling for the compute model).
        tdp_watts: board power limit.
        idle_watts: power at idle clocks.
        base_clock_ratio: lowest throttled clock as a fraction of boost.
        throttle_temp_c: core temperature at which DVFS starts stepping
            the clock down.
        shutdown_temp_c: hardware slowdown ceiling; the governor never
            allows crossing it.
        thermal_resistance_c_per_w: steady-state degC per watt between die
            and local inlet air (die + heatsink + local airflow; the sum
            of the two-node RC resistances).
        thermal_capacitance_j_per_c: heat capacity of the heatsink node
            (the slow pole of the two-node RC model).
        die_resistance_c_per_w: die-to-heatsink resistance (fast pole);
            sets how far bursts lift the die above the sink.
        die_capacitance_j_per_c: die heat capacity; with the die
            resistance it sets the ~1 s burst response the paper's peak
            power/temperature excursions ride on.
        sm_count: streaming multiprocessors (occupancy model, Fig. 20).
        max_warps_per_sm: scheduler limit used to normalise occupancy.
        is_chiplet: True for MI250 GCDs (paired dies share a package).
        hbm_bandwidth_bytes_per_s: HBM bandwidth; bounds memory-bound
            kernels such as the optimizer step.
        gemm_half_point_tokens: microbatch token count at which training
            GEMMs reach half of their asymptotic efficiency. CDNA2 needs
            much larger tiles than Hopper to saturate, which is why the
            MI250 gains so much from bigger microbatches (Figure 14).
    """

    name: str
    architecture: str
    memory_bytes: float
    peak_flops_fp16: float
    mfu: float
    tdp_watts: float
    idle_watts: float
    base_clock_ratio: float
    throttle_temp_c: float
    shutdown_temp_c: float
    thermal_resistance_c_per_w: float
    thermal_capacitance_j_per_c: float
    sm_count: int
    max_warps_per_sm: int
    is_chiplet: bool = False
    hbm_bandwidth_bytes_per_s: float = 3.0e12
    gemm_half_point_tokens: int = 768
    die_resistance_c_per_w: float = 0.03
    die_capacitance_j_per_c: float = 25.0

    def __post_init__(self) -> None:
        if not 0 < self.mfu <= 1:
            raise ValueError("mfu must be in (0, 1]")
        if self.die_resistance_c_per_w >= self.thermal_resistance_c_per_w:
            raise ValueError(
                "die resistance must be below the total thermal resistance"
            )
        if not 0 < self.base_clock_ratio <= 1:
            raise ValueError("base_clock_ratio must be in (0, 1]")
        if self.throttle_temp_c >= self.shutdown_temp_c:
            raise ValueError("throttle_temp_c must be below shutdown_temp_c")

    @property
    def sustained_flops(self) -> float:
        """Sustained FLOP/s at boost clock for large training kernels."""
        return self.peak_flops_fp16 * self.mfu


# Catalog -------------------------------------------------------------------
# H100 and H200 share the Hopper compute engine (1 PFLOPS FP16, 700 W);
# H200 has 141 GB HBM3e vs H100's 80 GB HBM3. The MI250 exposes two GCDs,
# each 0.18 PFLOPS sustained-class with 64 GB HBM2e and a 250 W share of
# the 500 W package.

H100 = GPUSpec(
    name="H100",
    architecture="Hopper",
    memory_bytes=80 * GB,
    peak_flops_fp16=1.0e15,
    mfu=0.42,
    tdp_watts=700.0,
    idle_watts=75.0,
    base_clock_ratio=0.55,
    throttle_temp_c=84.0,
    shutdown_temp_c=92.0,
    thermal_resistance_c_per_w=0.085,
    thermal_capacitance_j_per_c=950.0,
    sm_count=132,
    max_warps_per_sm=64,
    hbm_bandwidth_bytes_per_s=3.35e12,
    gemm_half_point_tokens=768,
)

H200 = GPUSpec(
    name="H200",
    architecture="Hopper",
    memory_bytes=141 * GB,
    peak_flops_fp16=1.0e15,
    mfu=0.42,
    tdp_watts=700.0,
    idle_watts=80.0,
    base_clock_ratio=0.55,
    throttle_temp_c=84.0,
    shutdown_temp_c=92.0,
    thermal_resistance_c_per_w=0.085,
    thermal_capacitance_j_per_c=980.0,
    sm_count=132,
    max_warps_per_sm=64,
    hbm_bandwidth_bytes_per_s=4.8e12,
    gemm_half_point_tokens=768,
)

# One MI250 GCD (the cluster exposes 8 logical GPUs = 4 packages per node).
MI250_GCD = GPUSpec(
    name="MI250-GCD",
    architecture="CDNA2",
    memory_bytes=64 * GB,
    peak_flops_fp16=0.18e15,  # half of the 0.36 PFLOPS package
    mfu=0.38,
    tdp_watts=250.0,  # half of the 500 W package
    idle_watts=45.0,
    base_clock_ratio=0.60,
    throttle_temp_c=95.0,  # CDNA2 junction throttle is higher than Hopper's
    shutdown_temp_c=105.0,
    thermal_resistance_c_per_w=0.13,
    thermal_capacitance_j_per_c=600.0,
    sm_count=110,  # compute units per GCD
    max_warps_per_sm=32,
    is_chiplet=True,
    hbm_bandwidth_bytes_per_s=1.6e12,
    gemm_half_point_tokens=4096,
    die_resistance_c_per_w=0.05,
    die_capacitance_j_per_c=15.0,
)

_CATALOG = {spec.name.lower(): spec for spec in (H100, H200, MI250_GCD)}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by name (case-insensitive)."""
    key = name.lower()
    if key not in _CATALOG:
        raise KeyError(f"unknown GPU {name!r}; known: {sorted(_CATALOG)}")
    return _CATALOG[key]


def effective_tflops(spec: GPUSpec) -> float:
    """Sustained training throughput in TFLOP/s (reporting helper)."""
    return spec.sustained_flops / TERA
