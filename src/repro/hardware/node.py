"""Server node models, including airflow/cooling layout (paper Figure 16).

The thermal findings of the paper come from *where air flows*: HGX nodes
move air front-to-back, so rear GPUs inhale air preheated by front GPUs;
MI250 nodes additionally show skew between the two GCDs of one package.
:class:`NodeSpec` encodes that layout as, per logical GPU, (a) the list of
upstream GPUs whose dissipated heat preheats its intake and (b) a static
inlet offset from its position in the chassis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.gpu import H100, H200, MI250_GCD, GPUSpec
from repro.hardware.interconnect import (
    NVLINK4,
    PCIE_GEN4,
    PCIE_GEN5,
    XGMI,
    XGMI_INTRA_PACKAGE,
    LinkSpec,
)


@dataclass(frozen=True)
class AirflowLayout:
    """Cooling geometry of one node.

    Attributes:
        upstream: ``upstream[i]`` lists local GPU indices whose exhaust
            preheats GPU ``i``'s intake air.
        inlet_offset_c: static inlet temperature offset per GPU from its
            chassis position (rear positions are warmer even at idle).
        preheat_c_per_w: inlet degC rise per watt dissipated by each
            upstream GPU.
    """

    upstream: tuple[tuple[int, ...], ...]
    inlet_offset_c: tuple[float, ...]
    preheat_c_per_w: float

    def __post_init__(self) -> None:
        if len(self.upstream) != len(self.inlet_offset_c):
            raise ValueError("upstream and inlet_offset_c must align")
        for i, ups in enumerate(self.upstream):
            if i in ups:
                raise ValueError(f"GPU {i} cannot be upstream of itself")


@dataclass(frozen=True)
class NodeSpec:
    """One server node.

    Attributes:
        name: chassis identifier.
        gpu: logical GPU populating the node.
        gpus_per_node: logical GPU count.
        intra_node_link: GPU<->GPU fabric (NVLink / xGMI).
        host_pcie: GPU<->NIC path.
        airflow: cooling geometry.
        node_power_cap_watts: chassis power budget across all GPUs; the
            governor scales clocks down when aggregate draw exceeds it.
        nic_count: InfiniBand NICs; flows from all GPUs share them.
        package_of: maps logical GPU -> physical package (chiplets share
            a package; monolithic GPUs map 1:1).
        intra_package_link: fabric between GCDs of one package, if any.
        ambient_c: machine-room supply air temperature at the intake.
    """

    name: str
    gpu: GPUSpec
    gpus_per_node: int
    intra_node_link: LinkSpec
    host_pcie: LinkSpec
    airflow: AirflowLayout
    node_power_cap_watts: float
    nic_count: int = 1
    package_of: tuple[int, ...] = field(default=())
    intra_package_link: LinkSpec | None = None
    ambient_c: float = 28.0

    def __post_init__(self) -> None:
        if len(self.airflow.upstream) != self.gpus_per_node:
            raise ValueError("airflow layout must cover every GPU")
        if self.package_of and len(self.package_of) != self.gpus_per_node:
            raise ValueError("package_of must cover every GPU")

    def packages(self) -> dict[int, list[int]]:
        """Physical package -> list of logical GPUs it contains."""
        mapping = self.package_of or tuple(range(self.gpus_per_node))
        grouped: dict[int, list[int]] = {}
        for local, package in enumerate(mapping):
            grouped.setdefault(package, []).append(local)
        return grouped

    def same_package(self, a: int, b: int) -> bool:
        """Whether local GPUs ``a`` and ``b`` share a physical package."""
        mapping = self.package_of or tuple(range(self.gpus_per_node))
        return mapping[a] == mapping[b]

    def depth_of(self, local: int) -> float:
        """Airflow depth of a GPU in [0, 1]: 0 = intake, 1 = exhaust."""
        offsets = self.airflow.inlet_offset_c
        span = max(offsets) - min(offsets)
        if span == 0:
            return 0.0
        return (offsets[local] - min(offsets)) / span


def _hgx_airflow() -> AirflowLayout:
    """HGX 8-GPU baseboard: two ranks of four, front-to-back airflow.

    GPUs 0-3 sit at the intake; GPUs 4-7 sit directly behind them and
    inhale their exhaust (Figure 16a).
    """
    upstream = tuple(
        tuple() if i < 4 else (i - 4,) for i in range(8)
    )
    inlet_offset = tuple(0.0 if i < 4 else 6.0 for i in range(8))
    return AirflowLayout(
        upstream=upstream,
        inlet_offset_c=inlet_offset,
        preheat_c_per_w=0.016,
    )


def _mi250_airflow() -> AirflowLayout:
    """MI250 node: 4 packages in the airflow path, 2 GCDs per package.

    Within a package the odd GCD sits downstream of the even one
    (5-10 degC skew per Figure 18); packages deeper in the chassis get a
    warmer intake.
    """
    upstream: list[tuple[int, ...]] = []
    inlet_offset: list[float] = []
    for gcd in range(8):
        package = gcd // 2
        ups: list[int] = []
        if gcd % 2 == 1:
            ups.append(gcd - 1)  # downstream GCD of the same package
        if package >= 2:
            ups.extend((2 * (package - 2), 2 * (package - 2) + 1))
        upstream.append(tuple(ups))
        inlet_offset.append(2.5 * (package % 2) + 3.0 * (package // 2))
    return AirflowLayout(
        upstream=tuple(upstream),
        inlet_offset_c=tuple(inlet_offset),
        preheat_c_per_w=0.03,
    )


HGX_H200_NODE = NodeSpec(
    name="HGX-H200",
    gpu=H200,
    gpus_per_node=8,
    intra_node_link=NVLINK4,
    host_pcie=PCIE_GEN5,
    airflow=_hgx_airflow(),
    node_power_cap_watts=8 * 700.0 * 0.95,
    nic_count=2,
)

HGX_H100_NODE = NodeSpec(
    name="HGX-H100",
    gpu=H100,
    gpus_per_node=8,
    intra_node_link=NVLINK4,
    host_pcie=PCIE_GEN5,
    airflow=_hgx_airflow(),
    node_power_cap_watts=8 * 700.0 * 0.95,
    nic_count=2,
)

MI250_NODE = NodeSpec(
    name="MI250",
    gpu=MI250_GCD,
    gpus_per_node=8,
    intra_node_link=XGMI,
    host_pcie=PCIE_GEN4,
    airflow=_mi250_airflow(),
    node_power_cap_watts=4 * 500.0 * 1.1,
    nic_count=1,
    package_of=(0, 0, 1, 1, 2, 2, 3, 3),
    intra_package_link=XGMI_INTRA_PACKAGE,
)
