"""Interconnect link models.

Each :class:`LinkSpec` is a point-to-point or switched fabric segment with
a peak bandwidth, base latency, and a large-message efficiency ceiling.
Effective throughput for a given message additionally depends on message
size and flow concurrency; those effects live in :mod:`repro.comm.message`
and :mod:`repro.comm.contention` — this module only describes the wires.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.units import GB, GBPS, US


class LinkKind(Enum):
    """Fabric classes appearing in the paper's clusters (Figure 1)."""

    NVLINK = "nvlink"
    XGMI = "xgmi"
    PCIE = "pcie"
    INFINIBAND = "infiniband"


@dataclass(frozen=True)
class LinkSpec:
    """One fabric segment.

    Attributes:
        kind: fabric class.
        bandwidth_bytes_per_s: peak unidirectional bandwidth.
        latency_s: per-message base latency (software + wire).
        efficiency: achievable fraction of peak for very large messages
            (protocol overhead ceiling).
    """

    kind: LinkKind
    bandwidth_bytes_per_s: float
    latency_s: float
    efficiency: float = 0.9

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def peak_effective_bandwidth(self) -> float:
        """Large-message bandwidth ceiling in bytes/s."""
        return self.bandwidth_bytes_per_s * self.efficiency


# Catalog: the three clusters' fabrics (Table 3 / Figure 1). --------------

NVLINK4 = LinkSpec(  # NVLink/NVSwitch inside an HGX node: 900 GB/s per GPU
    kind=LinkKind.NVLINK,
    bandwidth_bytes_per_s=450 * GB,  # unidirectional
    latency_s=2 * US,
    efficiency=0.85,
)

XGMI = LinkSpec(  # xGMI mesh inside an MI250 node (per-GCD aggregate)
    kind=LinkKind.XGMI,
    bandwidth_bytes_per_s=100 * GB,
    latency_s=3 * US,
    efficiency=0.8,
)

XGMI_INTRA_PACKAGE = LinkSpec(  # between the two GCDs of one MI250 package
    kind=LinkKind.XGMI,
    bandwidth_bytes_per_s=200 * GB,
    latency_s=1.5 * US,
    efficiency=0.85,
)

PCIE_GEN5 = LinkSpec(  # GPU <-> NIC path inside the host
    kind=LinkKind.PCIE,
    bandwidth_bytes_per_s=64 * GB,
    latency_s=5 * US,
    efficiency=0.8,
)

PCIE_GEN4 = LinkSpec(  # MI250 host PCIe
    kind=LinkKind.PCIE,
    bandwidth_bytes_per_s=32 * GB,
    latency_s=6 * US,
    efficiency=0.8,
)

INFINIBAND_100G = LinkSpec(  # 100 Gbps HDR IB between nodes (all clusters)
    kind=LinkKind.INFINIBAND,
    bandwidth_bytes_per_s=100 * GBPS,
    latency_s=12 * US,
    efficiency=0.9,
)


def infiniband(gbps: float) -> LinkSpec:
    """An InfiniBand fabric at an arbitrary rate (Section 7.1 sweeps)."""
    if gbps <= 0:
        raise ValueError("gbps must be positive")
    return LinkSpec(
        kind=LinkKind.INFINIBAND,
        bandwidth_bytes_per_s=gbps * GBPS,
        latency_s=12 * US,
        efficiency=0.9,
    )
