"""Inter-node fabric topologies: fat-trees with oversubscription.

The paper's clusters hang off a single 100 Gb/s InfiniBand switch tier
(Figure 1), and its Section 7.1 projection treats the fabric as a flat
pipe. Real datacenter fabrics are multi-tier fat-trees whose leaf-to-
spine *oversubscription* decides how much of the node-level bandwidth
survives when traffic leaves the rack — exactly the "network performance
becomes an even more critical factor" regime Figure 22 points at.

This module builds the fabric as an explicit capacity graph (networkx),
computes bisection bandwidth by max-flow, and exposes the effective
per-node bandwidth under all-to-all-ish load — which the projection can
consume in place of the flat-pipe assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.hardware.interconnect import LinkSpec


@dataclass(frozen=True)
class FatTreeSpec:
    """A two-tier (leaf/spine) fat-tree.

    Attributes:
        num_nodes: server nodes attached to the fabric.
        nodes_per_leaf: nodes under each leaf switch.
        node_link: the node-to-leaf link (the cluster's NIC rate).
        oversubscription: ratio of downlink to uplink capacity per leaf
            (1.0 = non-blocking; 4.0 = a 4:1 oversubscribed leaf).
    """

    num_nodes: int
    nodes_per_leaf: int
    node_link: LinkSpec
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.nodes_per_leaf < 1:
            raise ValueError("node counts must be positive")
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")

    @property
    def num_leaves(self) -> int:
        """Leaf switches needed to host every node."""
        return math.ceil(self.num_nodes / self.nodes_per_leaf)

    @property
    def leaf_downlink_bytes_per_s(self) -> float:
        """Aggregate node-facing capacity of one fully populated leaf."""
        return (
            self.nodes_per_leaf * self.node_link.peak_effective_bandwidth
        )

    @property
    def leaf_uplink_bytes_per_s(self) -> float:
        """Aggregate spine-facing capacity of one leaf."""
        return self.leaf_downlink_bytes_per_s / self.oversubscription


def build_graph(spec: FatTreeSpec) -> nx.Graph:
    """The fabric as a capacity graph.

    Nodes: ``node{i}``, ``leaf{l}``, and a single aggregated ``spine``
    (a non-blocking spine tier collapses to one vertex for capacity
    analysis). Edge ``capacity`` is in bytes/s.
    """
    graph = nx.Graph()
    node_bw = spec.node_link.peak_effective_bandwidth
    for i in range(spec.num_nodes):
        leaf = i // spec.nodes_per_leaf
        graph.add_edge(f"node{i}", f"leaf{leaf}", capacity=node_bw)
    for leaf in range(spec.num_leaves):
        graph.add_edge(
            f"leaf{leaf}", "spine",
            capacity=spec.leaf_uplink_bytes_per_s,
        )
    return graph


def bisection_bandwidth(spec: FatTreeSpec) -> float:
    """Max-flow bisection bandwidth between the two node halves (bytes/s).

    Computed on the capacity graph with a super-source over the first
    half of the nodes and a super-sink over the second half.
    """
    if spec.num_nodes < 2:
        raise ValueError("bisection needs at least two nodes")
    graph = build_graph(spec)
    half = spec.num_nodes // 2
    infinite = float("inf")
    for i in range(half):
        graph.add_edge("SRC", f"node{i}", capacity=infinite)
    for i in range(half, spec.num_nodes):
        graph.add_edge(f"node{i}", "SNK", capacity=infinite)
    value, _ = nx.maximum_flow(graph, "SRC", "SNK")
    return value


def effective_node_bandwidth(spec: FatTreeSpec) -> float:
    """Per-node bandwidth under uniform cross-leaf load (bytes/s).

    When every node talks across the fabric (ring AllReduce over many
    nodes, all-to-all expert traffic), each leaf's uplink is shared by
    its nodes: the per-node rate is the NIC rate divided by the
    oversubscription factor. Intra-leaf pairs are unaffected; this is
    the pessimistic cross-leaf figure the projection needs.
    """
    if spec.num_leaves == 1:
        return spec.node_link.peak_effective_bandwidth
    return (
        spec.node_link.peak_effective_bandwidth / spec.oversubscription
    )


def allreduce_seconds_at_scale(
    spec: FatTreeSpec, payload_bytes_per_node: float, num_nodes: int
) -> float:
    """Ring AllReduce time over ``num_nodes`` through this fabric.

    The ring crosses leaves, so its sustained rate is the effective
    (oversubscription-degraded) per-node bandwidth.
    """
    if num_nodes < 2:
        return 0.0
    if num_nodes > spec.num_nodes:
        raise ValueError("more participants than fabric nodes")
    bandwidth = effective_node_bandwidth(spec)
    return 2.0 * (num_nodes - 1) / num_nodes * (
        payload_bytes_per_node / bandwidth
    )


def fabric_for_projection(
    num_nodes: int,
    node_link: LinkSpec,
    nodes_per_leaf: int = 32,
    oversubscription: float = 1.0,
) -> FatTreeSpec:
    """Convenience builder for projection-scale fabrics."""
    return FatTreeSpec(
        num_nodes=num_nodes,
        nodes_per_leaf=min(nodes_per_leaf, num_nodes),
        node_link=node_link,
        oversubscription=oversubscription,
    )
