"""GPU power modelling."""

from repro.power.model import (
    BUSY_COMM,
    BUSY_COMPUTE,
    BUSY_OVERLAPPED,
    COMM_INTENSITY,
    COMPUTE_INTENSITY,
    FREQ_POWER_EXP,
    IDLE,
    MEMORY_INTENSITY,
    Activity,
    energy_joules,
    gpu_power,
)

__all__ = [
    "BUSY_COMM",
    "BUSY_COMPUTE",
    "BUSY_OVERLAPPED",
    "COMM_INTENSITY",
    "COMPUTE_INTENSITY",
    "FREQ_POWER_EXP",
    "IDLE",
    "MEMORY_INTENSITY",
    "Activity",
    "energy_joules",
    "gpu_power",
]
