"""GPU power draw model.

Power at a moment is idle power plus a dynamic component proportional to
how busy the chip is and to the cube-law effect of clock/voltage scaling:

``P = P_idle + (P_tdp - P_idle) * activity * freq_ratio ** FREQ_POWER_EXP``

Activity weights compute kernels as full-intensity (tensor cores dominate
board power) and communication kernels at a lower intensity (copy engines
and SMs doing pack/unpack). Overlapped compute+comm phases stack, which is
what drives the paper's observation that CC-overlap raises peak
temperature (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import GPUSpec
from repro.units import clamp

# Dynamic power scales roughly with f * V^2 and V tracks f: exponent ~2.4
# matches published DVFS curves for Hopper-class parts.
FREQ_POWER_EXP = 2.4

# Relative board-power intensity of kernel classes.
COMPUTE_INTENSITY = 1.0
COMM_INTENSITY = 0.45
MEMORY_INTENSITY = 0.7


@dataclass(frozen=True)
class Activity:
    """Instantaneous utilisation of one GPU, by kernel class, in [0, 1]."""

    compute: float = 0.0
    comm: float = 0.0
    memory: float = 0.0

    def __post_init__(self) -> None:
        for label, value in (
            ("compute", self.compute),
            ("comm", self.comm),
            ("memory", self.memory),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} utilisation must be in [0, 1]")

    @property
    def intensity(self) -> float:
        """Combined dynamic-power intensity in [0, 1]."""
        combined = (
            COMPUTE_INTENSITY * self.compute
            + COMM_INTENSITY * self.comm
            + MEMORY_INTENSITY * self.memory
        )
        return clamp(combined, 0.0, 1.0)


IDLE = Activity()
BUSY_COMPUTE = Activity(compute=1.0)
BUSY_COMM = Activity(comm=1.0)
BUSY_OVERLAPPED = Activity(compute=1.0, comm=1.0)


def gpu_power(spec: GPUSpec, activity: Activity, freq_ratio: float) -> float:
    """Instantaneous board power in watts.

    Args:
        spec: GPU model.
        activity: current utilisation by kernel class.
        freq_ratio: current clock as a fraction of boost (throttling
            lowers it, which lowers dynamic power super-linearly).
    """
    if not 0 < freq_ratio <= 1.0:
        raise ValueError("freq_ratio must be in (0, 1]")
    dynamic_span = spec.tdp_watts - spec.idle_watts
    dynamic = dynamic_span * activity.intensity * freq_ratio ** FREQ_POWER_EXP
    return spec.idle_watts + dynamic


def energy_joules(power_watts: float, duration_s: float) -> float:
    """Energy for holding ``power_watts`` over ``duration_s``."""
    if duration_s < 0:
        raise ValueError("duration must be non-negative")
    return power_watts * duration_s
