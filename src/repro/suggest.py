"""Friendly unknown-name errors: "did you mean ...?".

Catalog lookups and strategy parsing reject typos hours into a sweep
script, so the rejection message should do the diagnosing: show the
expected spelling and the nearest valid name. Matching first normalises
the separators users actually type (``tp2_pp2_dp8``, ``gpt3 13b``,
``tp2/pp2``) to the repo's ``-`` convention, then falls back to fuzzy
matching.
"""

from __future__ import annotations

import difflib
import re
from typing import Iterable

_SEPARATORS = re.compile(r"[_/\s]+")


def normalize_name(name: str) -> str:
    """Canonical spelling of a user-supplied name: lowercase, ``-``-joined."""
    return _SEPARATORS.sub("-", name.strip().lower())


def did_you_mean(name: str, candidates: Iterable[str]) -> str | None:
    """The candidate closest to ``name``, or None when nothing is close."""
    lowered = {c.lower(): c for c in candidates}
    if not lowered:
        return None
    normalized = normalize_name(name)
    exact = lowered.get(normalized)
    if exact is not None:
        return exact
    matches = difflib.get_close_matches(
        normalized, list(lowered), n=1, cutoff=0.6
    )
    return lowered[matches[0]] if matches else None


def unknown_name_message(
    kind: str, name: str, candidates: Iterable[str]
) -> str:
    """One-line error body for an unknown catalog name."""
    candidates = list(candidates)
    suggestion = did_you_mean(name, candidates)
    hint = f"; did you mean {suggestion!r}?" if suggestion else ""
    known = ", ".join(sorted(candidates))
    return f"unknown {kind} {name!r}{hint} (known: {known})"
