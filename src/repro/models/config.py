"""Transformer model architecture descriptions.

A :class:`ModelConfig` captures the architectural parameters that drive the
systems behaviour the paper studies: parameter count (memory, DP/FSDP
communication volume), per-layer FLOPs and activation sizes (compute and
TP/PP communication volume), and Mixture-of-Experts structure (EP all-to-all
volume and expert load).

Dataset content never enters the model: only batch geometry (sequence
length, micro/global batch sizes) matters for the paper's analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import BYTES_FP16


@dataclass(frozen=True)
class MoEConfig:
    """Mixture-of-Experts structure of a sparse model.

    Attributes:
        num_experts: experts per MoE layer (e.g. 8 for Mixtral-8x7B).
        top_k: experts activated per token.
        capacity_factor: per-expert buffer slack used by dispatchers; it
            scales all-to-all payloads and expert imbalance headroom.
    """

    num_experts: int
    top_k: int = 2
    capacity_factor: float = 1.25

    def __post_init__(self) -> None:
        if self.num_experts < 2:
            raise ValueError("MoE model needs at least 2 experts")
        if not 1 <= self.top_k <= self.num_experts:
            raise ValueError("top_k must be in [1, num_experts]")


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of a dense or MoE transformer language model.

    Attributes:
        name: human-readable identifier, e.g. ``"gpt3-175b"``.
        num_layers: transformer blocks.
        hidden_size: model (embedding) dimension.
        num_heads: attention heads.
        ffn_hidden_size: MLP intermediate dimension. For MoE models this is
            the per-expert intermediate dimension.
        vocab_size: vocabulary entries (embedding + LM head).
        seq_length: training sequence length in tokens.
        moe: MoE structure, or None for dense models.
        num_query_groups: KV groups for grouped-query attention (Llama 3);
            equal to ``num_heads`` for classic multi-head attention.
        bytes_per_param: parameter precision (FP16/BF16 -> 2).
    """

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    ffn_hidden_size: int
    vocab_size: int = 51200
    seq_length: int = 2048
    moe: MoEConfig | None = None
    num_query_groups: int | None = None
    bytes_per_param: int = BYTES_FP16
    extras: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if self.hidden_size % self.num_heads:
            raise ValueError("hidden_size must be divisible by num_heads")
        groups = self.num_query_groups
        if groups is not None and self.num_heads % groups:
            raise ValueError("num_heads must be divisible by num_query_groups")

    # ------------------------------------------------------------------
    # Derived architecture quantities
    # ------------------------------------------------------------------

    @property
    def is_moe(self) -> bool:
        """Whether this is a Mixture-of-Experts model."""
        return self.moe is not None

    @property
    def head_dim(self) -> int:
        """Dimension of a single attention head."""
        return self.hidden_size // self.num_heads

    @property
    def kv_groups(self) -> int:
        """Number of key/value head groups (GQA), defaulting to MHA."""
        return self.num_query_groups or self.num_heads

    @property
    def attention_params(self) -> int:
        """Parameters of one attention block (QKV + output projection)."""
        h = self.hidden_size
        kv_dim = self.kv_groups * self.head_dim
        return h * h + 2 * h * kv_dim + h * h  # Q, K+V, output proj

    @property
    def mlp_params_per_expert(self) -> int:
        """Parameters of one MLP (or one expert's MLP for MoE).

        Uses the gated (SwiGLU-style) three-matrix MLP when the config was
        built with ``extras={"gated_mlp": True}`` (Llama/Mixtral), else the
        classic two-matrix GELU MLP (GPT-3).
        """
        matrices = 3 if self.extras.get("gated_mlp") else 2
        return matrices * self.hidden_size * self.ffn_hidden_size

    @property
    def layer_params(self) -> int:
        """Parameters of one transformer layer (all experts included)."""
        experts = self.moe.num_experts if self.moe else 1
        router = self.hidden_size * self.moe.num_experts if self.moe else 0
        norms = 2 * self.hidden_size
        return (
            self.attention_params
            + experts * self.mlp_params_per_expert
            + router
            + norms
        )

    @property
    def embedding_params(self) -> int:
        """Parameters of the (tied) token embedding / LM head."""
        return self.vocab_size * self.hidden_size

    @property
    def total_params(self) -> int:
        """Total parameter count of the model."""
        return self.num_layers * self.layer_params + self.embedding_params

    @property
    def active_params_per_token(self) -> int:
        """Parameters exercised per token (MoE activates only top-k experts)."""
        if not self.moe:
            return self.total_params
        active_layer = (
            self.attention_params
            + self.moe.top_k * self.mlp_params_per_expert
            + self.hidden_size * self.moe.num_experts
            + 2 * self.hidden_size
        )
        return self.num_layers * active_layer + self.embedding_params

    def activation_bytes_per_token(self) -> int:
        """Stored activation footprint per token per layer (bytes).

        Follows the Megatron analysis (Korthikanti et al.): roughly
        ``34 * hidden + 5 * heads * seq`` bytes per token per layer at FP16
        with selective structures; we use the dominant ``s*b*h`` terms that
        drive both memory pressure and recomputation cost.
        """
        h = self.hidden_size
        ffn = self.ffn_hidden_size
        per_token = 10 * h + 4 * ffn  # attention I/O + MLP intermediates
        if self.moe:
            per_token += 2 * self.moe.top_k * ffn
        return per_token * self.bytes_per_param // BYTES_FP16 * BYTES_FP16

    def scaled(self, name: str, param_fraction: float) -> "ModelConfig":
        """Return a variant scaled to roughly ``param_fraction`` of the
        parameters.

        Mirrors the paper's AMD-cluster methodology (Section 3.2): shrink
        layers/heads/hidden proportionally so the variant fits smaller
        memory while keeping architectural ratios. Layers and width each
        take a cube-root share of the reduction (params ~ layers * h^2).
        """
        if not 0 < param_fraction <= 1:
            raise ValueError("param_fraction must be in (0, 1]")
        layer_fraction = param_fraction ** (1.0 / 3.0)
        factor = param_fraction ** (1.0 / 3.0)
        hidden = _round_to(self.hidden_size * factor, 128)
        heads = max(8, _round_to(self.num_heads * factor, 8))
        while hidden % heads:
            heads -= 8
        groups = self.num_query_groups
        if groups is not None:
            groups = max(4, min(groups, heads))
            while heads % groups:
                groups -= 1
        return ModelConfig(
            name=name,
            num_layers=max(4, int(self.num_layers * layer_fraction)),
            hidden_size=hidden,
            num_heads=heads,
            ffn_hidden_size=_round_to(self.ffn_hidden_size * factor, 128),
            vocab_size=self.vocab_size,
            seq_length=self.seq_length,
            moe=self.moe,
            num_query_groups=groups,
            bytes_per_param=self.bytes_per_param,
            extras=dict(self.extras),
        )


def _round_to(value: float, multiple: int) -> int:
    """Round ``value`` to the nearest positive multiple of ``multiple``."""
    return max(multiple, int(round(value / multiple)) * multiple)
