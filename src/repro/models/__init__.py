"""Workload (LLM architecture) models: configs, catalog, FLOPs, memory."""

from repro.models.catalog import (
    GPT3_13B,
    GPT3_30B,
    GPT3_175B,
    LLAMA3_30B,
    LLAMA3_70B,
    MIXTRAL_4X7B,
    MIXTRAL_8X7B,
    MIXTRAL_8X22B,
    TABLE1_MODELS,
    get_model,
    model_names,
)
from repro.models.config import ModelConfig, MoEConfig
from repro.models.flops import (
    LayerFlops,
    layer_flops,
    model_forward_flops,
    model_step_flops,
    stage_forward_flops,
)
from repro.models.memory import (
    MemoryBreakdown,
    activation_bytes,
    fits_in_memory,
    memory_breakdown,
    shard_params,
)

__all__ = [
    "GPT3_13B",
    "GPT3_30B",
    "GPT3_175B",
    "LLAMA3_30B",
    "LLAMA3_70B",
    "MIXTRAL_4X7B",
    "MIXTRAL_8X7B",
    "MIXTRAL_8X22B",
    "TABLE1_MODELS",
    "LayerFlops",
    "MemoryBreakdown",
    "ModelConfig",
    "MoEConfig",
    "activation_bytes",
    "fits_in_memory",
    "get_model",
    "layer_flops",
    "memory_breakdown",
    "model_forward_flops",
    "model_names",
    "model_step_flops",
    "shard_params",
    "stage_forward_flops",
]
