"""Analytic FLOP counts for transformer training.

The simulator turns these counts into kernel durations via each GPU's
sustained throughput. Counts follow the standard Megatron accounting:
a dense matmul of an ``m x k`` activation with a ``k x n`` weight costs
``2*m*k*n`` FLOPs; the backward pass costs twice the forward pass (grad
w.r.t. input + grad w.r.t. weights).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig


@dataclass(frozen=True)
class LayerFlops:
    """Forward-pass FLOPs of one transformer layer for a token batch.

    Attributes:
        attention: attention projections + score/value matmuls.
        mlp: MLP (active experts only, for MoE).
        router: MoE router, zero for dense layers.
    """

    attention: float
    mlp: float
    router: float

    @property
    def forward(self) -> float:
        """Total forward FLOPs for the layer."""
        return self.attention + self.mlp + self.router

    @property
    def backward(self) -> float:
        """Total backward FLOPs (2x forward, standard accounting)."""
        return 2.0 * self.forward


def layer_flops(model: ModelConfig, tokens: int) -> LayerFlops:
    """Forward FLOPs of one layer processing ``tokens`` tokens.

    Args:
        model: architecture.
        tokens: number of tokens in the (micro)batch, i.e.
            ``microbatch_size * seq_length``.
    """
    if tokens <= 0:
        raise ValueError("tokens must be positive")
    h = model.hidden_size
    seq = model.seq_length
    kv_dim = model.kv_groups * model.head_dim

    # Projections: Q (h->h), K and V (h->kv_dim), output (h->h).
    proj = 2 * tokens * h * (h + 2 * kv_dim + h)
    # Scores and context: two batched matmuls over seq positions per head.
    scores = 2 * tokens * seq * h * 2
    attention = proj + scores

    matrices = 3 if model.extras.get("gated_mlp") else 2
    mlp_one_expert = 2 * tokens * h * model.ffn_hidden_size * matrices
    if model.moe:
        mlp = model.moe.top_k * mlp_one_expert
        router = 2 * tokens * h * model.moe.num_experts
    else:
        mlp = mlp_one_expert
        router = 0.0
    return LayerFlops(attention=attention, mlp=mlp, router=router)


def model_forward_flops(model: ModelConfig, tokens: int) -> float:
    """Forward FLOPs for the full model on ``tokens`` tokens.

    Includes the LM head projection into the vocabulary.
    """
    per_layer = layer_flops(model, tokens).forward
    lm_head = 2 * tokens * model.hidden_size * model.vocab_size
    return model.num_layers * per_layer + lm_head


def model_step_flops(
    model: ModelConfig, tokens: int, recompute: bool = False
) -> float:
    """FLOPs of one optimizer step over ``tokens`` tokens.

    forward + backward (2x forward) = 3x; activation recomputation replays
    the forward pass during backward, adding another 1x -> 4x.
    """
    multiplier = 4.0 if recompute else 3.0
    return multiplier * model_forward_flops(model, tokens)


def stage_forward_flops(
    model: ModelConfig, tokens: int, num_stage_layers: int, has_lm_head: bool
) -> float:
    """Forward FLOPs of one pipeline stage holding ``num_stage_layers`` layers."""
    if num_stage_layers < 0:
        raise ValueError("num_stage_layers must be >= 0")
    per_layer = layer_flops(model, tokens).forward
    total = num_stage_layers * per_layer
    if has_lm_head:
        total += 2 * tokens * model.hidden_size * model.vocab_size
    return total
