"""Catalog of the models evaluated in the paper (Table 1 plus Section 4.2
and Section 3.2 variants).

Architectural parameters follow the published model cards (GPT-3, Llama 3,
Mixtral) with the paper's training sequence length. ``get_model`` accepts
the catalog name case-insensitively.
"""

from __future__ import annotations

from repro.models.config import ModelConfig, MoEConfig

# Table 1 models ------------------------------------------------------------

GPT3_175B = ModelConfig(
    name="gpt3-175b",
    num_layers=96,
    hidden_size=12288,
    num_heads=96,
    ffn_hidden_size=4 * 12288,
    vocab_size=51200,
    seq_length=2048,
)

GPT3_30B = ModelConfig(
    name="gpt3-30b",
    num_layers=48,
    hidden_size=7168,
    num_heads=56,
    ffn_hidden_size=4 * 7168,
    vocab_size=51200,
    seq_length=2048,
)

LLAMA3_70B = ModelConfig(
    name="llama3-70b",
    num_layers=80,
    hidden_size=8192,
    num_heads=64,
    ffn_hidden_size=28672,
    vocab_size=128256,
    seq_length=2048,
    num_query_groups=8,
    extras={"gated_mlp": True},
)

LLAMA3_30B = ModelConfig(
    name="llama3-30b",
    num_layers=60,
    hidden_size=6144,
    num_heads=48,
    ffn_hidden_size=21504,
    vocab_size=128256,
    seq_length=2048,
    num_query_groups=8,
    extras={"gated_mlp": True},
)

MIXTRAL_8X22B = ModelConfig(
    name="mixtral-8x22b",
    num_layers=56,
    hidden_size=6144,
    num_heads=48,
    ffn_hidden_size=16384,
    vocab_size=32768,
    seq_length=2048,
    moe=MoEConfig(num_experts=8, top_k=2),
    num_query_groups=8,
    extras={"gated_mlp": True},
)

MIXTRAL_8X7B = ModelConfig(
    name="mixtral-8x7b",
    num_layers=32,
    hidden_size=4096,
    num_heads=32,
    ffn_hidden_size=14336,
    vocab_size=32000,
    seq_length=2048,
    moe=MoEConfig(num_experts=8, top_k=2),
    num_query_groups=8,
    extras={"gated_mlp": True},
)

# Section 4.2 (1-GPU-per-node) reduced models --------------------------------

GPT3_13B = ModelConfig(
    name="gpt3-13b",
    num_layers=40,
    hidden_size=5120,
    num_heads=40,
    ffn_hidden_size=4 * 5120,
    vocab_size=51200,
    seq_length=2048,
)

MIXTRAL_4X7B = ModelConfig(
    name="mixtral-4x7b",
    num_layers=32,
    hidden_size=4096,
    num_heads=32,
    ffn_hidden_size=14336,
    vocab_size=32000,
    seq_length=2048,
    moe=MoEConfig(num_experts=4, top_k=2),
    num_query_groups=8,
    extras={"gated_mlp": True},
)

_CATALOG: dict[str, ModelConfig] = {
    model.name: model
    for model in (
        GPT3_175B,
        GPT3_30B,
        LLAMA3_70B,
        LLAMA3_30B,
        MIXTRAL_8X22B,
        MIXTRAL_8X7B,
        GPT3_13B,
        MIXTRAL_4X7B,
    )
}

TABLE1_MODELS = (
    GPT3_175B,
    GPT3_30B,
    LLAMA3_70B,
    LLAMA3_30B,
    MIXTRAL_8X22B,
    MIXTRAL_8X7B,
)


def model_names() -> list[str]:
    """All model names available in the catalog."""
    return sorted(_CATALOG)


def get_model(name: str) -> ModelConfig:
    """Look up a model by catalog name (case-insensitive).

    Raises:
        KeyError: if the name is not in the catalog, with the list of
            valid names in the message.
    """
    key = name.lower()
    if key not in _CATALOG:
        from repro.suggest import unknown_name_message

        raise KeyError(unknown_name_message("model", name, model_names()))
    return _CATALOG[key]
