"""Per-GPU memory footprint model.

The paper selects parallelism configurations by "the minimal total model
parallelism (Tensor x Pipeline x Expert) required to fit within GPU memory"
(Section 3.1). This module provides the fit check the enumeration uses.

The footprint follows the Megatron/ZeRO accounting:

* weights: FP16 copy of the rank's shard;
* gradients: FP16, same size as the weight shard;
* optimizer states: FP32 master weights + two Adam moments (16 bytes per
  parameter at mixed precision), divided across DP ranks under ZeRO-1 or
  across FSDP ranks under full sharding;
* activations: stored per microbatch in flight; pipeline rank 0 holds up to
  ``pp`` microbatches under 1F1B. Activation recomputation stores only
  layer-boundary tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.units import BYTES_FP16

# Adam at mixed precision: fp32 master (4) + momentum (4) + variance (4),
# plus fp32 gradient accumulation buffer (4) as in Megatron's distributed
# optimizer accounting.
OPTIMIZER_BYTES_PER_PARAM = 16
GRADIENT_BYTES_PER_PARAM = BYTES_FP16
# Fraction of GPU memory usable for model state (CUDA context, NCCL
# buffers, fragmentation reserve).
USABLE_MEMORY_FRACTION = 0.92


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-GPU memory footprint in bytes, by category."""

    weights: float
    gradients: float
    optimizer: float
    activations: float

    @property
    def total(self) -> float:
        """Total bytes across all categories."""
        return self.weights + self.gradients + self.optimizer + self.activations


def shard_params_split(
    model: ModelConfig,
    tp: int,
    pp: int,
    ep: int = 1,
    fsdp: int = 1,
) -> tuple[float, float]:
    """(dense, expert) parameters held by one GPU under a given split.

    TP divides attention/MLP matrices; PP divides layers; EP divides
    experts. FSDP additionally shards the resident weight copy. The split
    matters for gradient synchronisation: dense parameters reduce across
    the full DP group while expert parameters reduce only across the
    outer DP replicas.
    """
    if min(tp, pp, ep, fsdp) < 1:
        raise ValueError("parallel widths must be >= 1")
    experts = model.moe.num_experts if model.moe else 1
    if ep > experts:
        raise ValueError(f"ep={ep} exceeds {experts} experts")

    layers_per_stage = model.num_layers / pp
    dense_layer = model.attention_params + 2 * model.hidden_size
    router = model.hidden_size * experts if model.moe else 0
    if model.moe:
        expert_params = experts * model.mlp_params_per_expert
        dense_per_layer = dense_layer / tp + router
        expert_per_layer = expert_params / (ep * tp)
    else:
        dense_per_layer = (
            dense_layer + model.mlp_params_per_expert
        ) / tp + router
        expert_per_layer = 0.0
    embedding = model.embedding_params / tp  # first/last stage only; bound
    dense = (layers_per_stage * dense_per_layer + embedding) / fsdp
    expert = layers_per_stage * expert_per_layer / fsdp
    return dense, expert


def shard_params(
    model: ModelConfig,
    tp: int,
    pp: int,
    ep: int = 1,
    fsdp: int = 1,
) -> float:
    """Total parameters held by one GPU under the given split."""
    dense, expert = shard_params_split(model, tp=tp, pp=pp, ep=ep, fsdp=fsdp)
    return dense + expert


# Fraction of per-layer activations living inside TP-sharded regions
# (attention/MLP internals); the rest (layernorm I/O, residual stream,
# dropout masks) is replicated across TP ranks unless sequence
# parallelism shards it along the sequence dimension.
TP_SHARDED_ACTIVATION_FRACTION = 0.65


def activation_bytes(
    model: ModelConfig,
    microbatch_size: int,
    tp: int,
    pp: int,
    recompute: bool = False,
    sequence_parallel: bool = True,
    pipeline_schedule: str = "1f1b",
    num_microbatches: int | None = None,
) -> float:
    """Peak stored-activation bytes on the most loaded pipeline rank.

    Under 1F1B (and the schedules that match its warmup depth, such as
    ``zb-h1``), stage 0 keeps activations for up to ``pp`` in-flight
    microbatches; under GPipe every microbatch is in flight at the end
    of the forward wave (pass ``num_microbatches``). The in-flight count
    comes from the schedule class registered in :mod:`repro.schedules`
    (its ``activation_in_flight`` model), so new schedules plug in
    without touching this module. With full recomputation only the
    layer-input tensors are stashed; intermediates are regenerated
    during backward. Sequence parallelism shards the
    otherwise-replicated activation regions along the sequence, so
    everything divides by ``tp``.
    """
    if microbatch_size < 1:
        raise ValueError("microbatch_size must be >= 1")
    # Deferred: repro.schedules sits above the models layer.
    from repro.schedules import get_schedule_class

    tokens = microbatch_size * model.seq_length
    layers_per_stage = max(1, model.num_layers // pp)
    in_flight = get_schedule_class(pipeline_schedule).activation_in_flight(
        pp, num_microbatches
    )

    if recompute:
        per_layer = tokens * model.hidden_size * model.bytes_per_param
        if sequence_parallel:
            per_layer /= tp
    else:
        full = tokens * model.activation_bytes_per_token()
        if sequence_parallel or tp == 1:
            per_layer = full / tp
        else:
            sharded = TP_SHARDED_ACTIVATION_FRACTION
            per_layer = full * (sharded / tp + (1.0 - sharded))
    return layers_per_stage * per_layer * in_flight


def memory_breakdown(
    model: ModelConfig,
    microbatch_size: int,
    tp: int,
    pp: int,
    dp: int = 1,
    ep: int = 1,
    fsdp: int = 1,
    zero1: bool = True,
    recompute: bool = False,
    sequence_parallel: bool = True,
    pipeline_schedule: str = "1f1b",
    num_microbatches: int | None = None,
) -> MemoryBreakdown:
    """Full per-GPU footprint for a training configuration.

    Args:
        zero1: partition optimizer states across the ``dp`` ranks
            (Megatron distributed optimizer / ZeRO-1). The paper enables
            this for all dense models and disables it for MoE.
        pipeline_schedule / num_microbatches: which schedule's
            activation-in-flight model bounds the stash (defaults keep
            the historical 1F1B accounting; GPipe requires
            ``num_microbatches``).
    """
    params = shard_params(model, tp=tp, pp=pp, ep=ep, fsdp=fsdp)
    optimizer_shard = dp * fsdp if zero1 else fsdp
    return MemoryBreakdown(
        weights=params * model.bytes_per_param,
        gradients=params * GRADIENT_BYTES_PER_PARAM,
        optimizer=params * OPTIMIZER_BYTES_PER_PARAM / max(1, optimizer_shard)
        * fsdp,  # FSDP already shards `params`; optimizer follows that shard
        activations=activation_bytes(
            model, microbatch_size, tp=tp, pp=pp, recompute=recompute,
            sequence_parallel=sequence_parallel,
            pipeline_schedule=pipeline_schedule,
            num_microbatches=num_microbatches,
        ),
    )


def kv_cache_bytes_per_token(model: ModelConfig) -> float:
    """KV-cache bytes one sequence position occupies across all layers.

    Two tensors (K and V) per layer, each ``kv_groups * head_dim`` wide
    (grouped-query attention stores one head pair per query group), at
    the model's parameter precision. This is the unit the serving
    simulator's admission control multiplies by resident tokens.
    """
    kv_width = model.kv_groups * model.head_dim
    return 2.0 * model.num_layers * kv_width * model.bytes_per_param


def serving_kv_capacity_tokens(
    model: ModelConfig,
    gpu_memory_bytes: float,
    gpus_per_replica: int,
    headroom_fraction: float = 0.9,
) -> int:
    """KV-cache token capacity of one inference replica.

    A replica holds the full FP16 weight copy sharded across its GPUs
    (no gradients or optimizer states at inference); what remains of
    usable HBM, scaled by ``headroom_fraction`` (activation workspace,
    fragmentation), is the KV-cache budget.

    Raises:
        ValueError: when the weights alone overflow the replica.
    """
    if gpus_per_replica < 1:
        raise ValueError("gpus_per_replica must be >= 1")
    if not 0 < headroom_fraction <= 1:
        raise ValueError("headroom_fraction must be in (0, 1]")
    usable = USABLE_MEMORY_FRACTION * gpu_memory_bytes * gpus_per_replica
    weights = model.total_params * model.bytes_per_param
    budget = (usable - weights) * headroom_fraction
    if budget <= 0:
        raise ValueError(
            f"{model.name} weights ({weights / 1e9:.0f} GB) do not fit "
            f"on {gpus_per_replica} GPUs "
            f"({usable / 1e9:.0f} GB usable)"
        )
    return int(budget / kv_cache_bytes_per_token(model))


def fits_in_memory(
    model: ModelConfig,
    gpu_memory_bytes: float,
    microbatch_size: int,
    tp: int,
    pp: int,
    dp: int = 1,
    ep: int = 1,
    fsdp: int = 1,
    zero1: bool = True,
    recompute: bool = False,
    sequence_parallel: bool = True,
    pipeline_schedule: str = "1f1b",
    num_microbatches: int | None = None,
) -> bool:
    """Whether the configuration fits in ``gpu_memory_bytes`` per GPU."""
    usage = memory_breakdown(
        model,
        microbatch_size,
        tp=tp,
        pp=pp,
        dp=dp,
        ep=ep,
        fsdp=fsdp,
        zero1=zero1,
        recompute=recompute,
        sequence_parallel=sequence_parallel,
        pipeline_schedule=pipeline_schedule,
        num_microbatches=num_microbatches,
    )
    return usage.total <= USABLE_MEMORY_FRACTION * gpu_memory_bytes
