"""Deprecated: static replica routing moved to ``repro.inferserve``.

The replica-router model now lives in
:mod:`repro.inferserve.static_router` as the ``static`` baseline of the
serving subsystem, with clearer names. This module remains as a
warn-once import shim:

========================  =========================================
historical name           canonical name
========================  =========================================
``ServingConfig``         ``repro.inferserve.StaticRouterConfig``
``ServingOutcome``        ``repro.inferserve.RouterOutcome``
``simulate_serving``      ``repro.inferserve.simulate_static_routing``
``compare_routers``       ``repro.inferserve.compare_routers``
``ROUTERS``               ``repro.inferserve.ROUTERS``
========================  =========================================
"""

from __future__ import annotations

from typing import Any

# Historical -> canonical attribute names in inferserve.static_router.
# Kept as strings so the resolution stays lazy (importing this shim must
# not pull in the whole serving subsystem, and the one-time deprecation
# warning should fire on *use*, not on package import).
_RENAMES = {
    "ROUTERS": "ROUTERS",
    "ServingConfig": "StaticRouterConfig",
    "ServingOutcome": "RouterOutcome",
    "compare_routers": "compare_routers",
    "simulate_serving": "simulate_static_routing",
}

__all__ = sorted(_RENAMES)


def __getattr__(name: str) -> Any:
    if name in _RENAMES:
        from repro import api
        from repro.inferserve import static_router

        api.warn_deprecated(f"inference.serving.{name}")
        return getattr(static_router, _RENAMES[name])
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_RENAMES))
