"""Distributed inference characterization helpers (Section 7.2).

Inference runs forward-only with fixed weights: less inter-GPU traffic,
lower average power, but bursty attention/GEMM kernels keep peaks high.
The Figure 23 microbatch sweep lives here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import RunResult
from repro.core.sweep import cached_run


@dataclass(frozen=True)
class InferencePoint:
    """One Figure 23 bar group: a (strategy, microbatch) inference run."""

    parallelism: str
    microbatch_size: int
    result: RunResult

    @property
    def tokens_per_s(self) -> float:
        return self.result.efficiency().tokens_per_s

    @property
    def avg_power_w(self) -> float:
        return self.result.stats().avg_power_w

    @property
    def peak_power_w(self) -> float:
        return self.result.stats().peak_power_w

    @property
    def avg_temp_c(self) -> float:
        return self.result.stats().avg_temp_c


def sweep_inference(
    model: str,
    cluster: str,
    strategies: list[str],
    microbatch_sizes: list[int],
    global_batch_size: int = 128,
) -> list[InferencePoint]:
    """Run the Figure 23 grid: strategies x microbatch sizes."""
    points = []
    for strategy in strategies:
        for mb in microbatch_sizes:
            result = cached_run(
                "infer",
                model=model,
                cluster=cluster,
                parallelism=strategy,
                microbatch_size=mb,
                global_batch_size=global_batch_size,
            )
            points.append(
                InferencePoint(
                    parallelism=strategy, microbatch_size=mb, result=result
                )
            )
    return points
