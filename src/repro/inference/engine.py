"""Distributed inference characterization helpers (Section 7.2).

Inference runs forward-only with fixed weights: less inter-GPU traffic,
lower average power, but bursty attention/GEMM kernels keep peaks high.
The Figure 23 microbatch sweep lives here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import RunResult
from repro.core.sweep import cached_run


@dataclass(frozen=True)
class InferencePoint:
    """One Figure 23 bar group: a (strategy, microbatch) inference run."""

    parallelism: str
    microbatch_size: int
    result: RunResult

    @property
    def tokens_per_s(self) -> float:
        return self.result.efficiency().tokens_per_s

    @property
    def avg_power_w(self) -> float:
        return self.result.stats().avg_power_w

    @property
    def peak_power_w(self) -> float:
        return self.result.stats().peak_power_w

    @property
    def avg_temp_c(self) -> float:
        return self.result.stats().avg_temp_c


def sweep_inference(
    model: str,
    cluster: str,
    strategies: list[str],
    microbatch_sizes: list[int],
    global_batch_size: int = 128,
    jobs: int = 1,
) -> list[InferencePoint]:
    """Run the Figure 23 grid: strategies x microbatch sizes.

    The grid is materialised up front, deduplicated (a strategy or
    microbatch repeated in the input simulates once), and fanned out
    over the crash-proof worker pool when ``jobs != 1`` (0 = auto).
    Results come back in grid order either way, and every point lands
    in the shared memo, so repeating the sweep costs dict lookups.
    """
    from repro.core.parallel import map_runs, resolve_jobs
    from repro.core.sweep import cache_key, seed_memo

    grid = [
        (strategy, mb)
        for strategy in strategies
        for mb in microbatch_sizes
    ]
    payloads = [
        (
            "infer",
            dict(
                model=model,
                cluster=cluster,
                parallelism=strategy,
                microbatch_size=mb,
                global_batch_size=global_batch_size,
            ),
        )
        for strategy, mb in grid
    ]
    distinct: dict[tuple, tuple[str, dict]] = {}
    for payload in payloads:
        distinct.setdefault(cache_key(*payload), payload)
    jobs = 1 if jobs == 1 else resolve_jobs(jobs)
    if jobs == 1 or len(distinct) == 1:
        results = {
            key: cached_run(kind, **kwargs)
            for key, (kind, kwargs) in distinct.items()
        }
    else:
        outputs = map_runs(list(distinct.values()), jobs)
        results = {}
        for (key, (kind, kwargs)), output in zip(
            distinct.items(), outputs
        ):
            seed_memo(kind, kwargs, output)
            results[key] = output
    return [
        InferencePoint(
            parallelism=strategy,
            microbatch_size=mb,
            result=results[cache_key(*payload)],
        )
        for (strategy, mb), payload in zip(grid, payloads)
    ]
