"""Analytic prefill/decode inference latency model.

The paper's related work (Splitwise) splits LLM inference into a
compute-bound **prefill** phase and a memory-bandwidth-bound **decode**
phase with very different power profiles; Section 7.2 observes exactly
that signature (bursty attention/GEMM peaks over a low average). This
module provides the standard first-order latency model for both phases
on our hardware specs, so serving simulations can derive service times
from the actual model/cluster instead of a hand-picked constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.kernels import stage_gemm_efficiency
from repro.hardware.gpu import GPUSpec
from repro.models.config import ModelConfig
from repro.models.flops import model_forward_flops


@dataclass(frozen=True)
class InferenceLatency:
    """Latencies of one batched inference request.

    Attributes:
        prefill_s: time to process the prompt (compute-bound).
        decode_per_token_s: time per generated token (weight-streaming,
            memory-bandwidth-bound).
        tokens_generated: decode length used for the totals.
    """

    prefill_s: float
    decode_per_token_s: float
    tokens_generated: int

    @property
    def decode_s(self) -> float:
        """Total decode time."""
        return self.decode_per_token_s * self.tokens_generated

    @property
    def total_s(self) -> float:
        """End-to-end request latency."""
        return self.prefill_s + self.decode_s

    @property
    def decode_fraction(self) -> float:
        """Share of the request spent decoding."""
        return self.decode_s / self.total_s if self.total_s else 0.0


def prefill_seconds(
    model: ModelConfig,
    gpu: GPUSpec,
    num_gpus: int,
    batch_size: int,
    prompt_tokens: int,
    tp: int = 1,
) -> float:
    """Prompt-processing time: one forward pass over the prompt batch.

    Compute-bound: the full forward FLOPs over ``batch * prompt`` tokens
    at the cluster's sustained rate, degraded by GEMM granularity.
    """
    if num_gpus < 1 or batch_size < 1 or prompt_tokens < 1:
        raise ValueError("counts must be positive")
    tokens = batch_size * prompt_tokens
    flops = model_forward_flops(model, tokens)
    efficiency = stage_gemm_efficiency(
        model, tokens, tp, half_point_tokens=gpu.gemm_half_point_tokens
    )
    return flops / (num_gpus * gpu.sustained_flops * efficiency)


def decode_seconds_per_token(
    model: ModelConfig,
    gpu: GPUSpec,
    num_gpus: int,
    batch_size: int,
) -> float:
    """Per-token decode latency: stream the active weights once.

    Memory-bandwidth-bound: each decode step reads every active
    parameter (top-k experts for MoE) from HBM; batching amortises the
    read across the batch until compute catches up, which at LLM scales
    it does not for moderate batches.
    """
    if num_gpus < 1 or batch_size < 1:
        raise ValueError("counts must be positive")
    active_bytes = model.active_params_per_token * model.bytes_per_param
    bytes_per_gpu = active_bytes / num_gpus
    return bytes_per_gpu / gpu.hbm_bandwidth_bytes_per_s


def request_latency(
    model: ModelConfig,
    gpu: GPUSpec,
    num_gpus: int,
    batch_size: int = 1,
    prompt_tokens: int = 512,
    output_tokens: int = 128,
    tp: int = 1,
) -> InferenceLatency:
    """Latency of one batched request through prefill + decode."""
    return InferenceLatency(
        prefill_s=prefill_seconds(
            model, gpu, num_gpus, batch_size, prompt_tokens, tp
        ),
        decode_per_token_s=decode_seconds_per_token(
            model, gpu, num_gpus, batch_size
        ),
        tokens_generated=output_tokens,
    )


def decode_bound_batch_size(
    model: ModelConfig, gpu: GPUSpec, tp: int = 1
) -> int:
    """Batch size where decode flips from memory- to compute-bound.

    Below this batch, adding requests is nearly free (the weight stream
    dominates); above it, decode steps start paying compute. This is the
    arithmetic-intensity crossover ``HBM_bw * 2 flops/byte`` against the
    sustained FLOP rate.
    """
    flops_per_token = 2.0 * model.active_params_per_token
    seconds_compute_one = flops_per_token / gpu.sustained_flops
    seconds_memory = (
        model.active_params_per_token * model.bytes_per_param
        / gpu.hbm_bandwidth_bytes_per_s
    )
    return max(1, int(seconds_memory / seconds_compute_one))
