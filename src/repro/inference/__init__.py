"""Distributed inference characterization and serving (Section 7.2)."""

from repro.inference.engine import InferencePoint, sweep_inference
from repro.inference.latency import (
    InferenceLatency,
    decode_bound_batch_size,
    decode_seconds_per_token,
    prefill_seconds,
    request_latency,
)
from repro.inference.serving import (
    ROUTERS,
    ServingConfig,
    ServingOutcome,
    compare_routers,
    simulate_serving,
)

__all__ = [
    "ROUTERS",
    "InferenceLatency",
    "InferencePoint",
    "decode_bound_batch_size",
    "decode_seconds_per_token",
    "prefill_seconds",
    "request_latency",
    "ServingConfig",
    "ServingOutcome",
    "compare_routers",
    "simulate_serving",
    "sweep_inference",
]
