"""Distributed inference characterization and serving (Section 7.2)."""

from typing import Any

from repro.inference.engine import InferencePoint, sweep_inference
from repro.inference.latency import (
    InferenceLatency,
    decode_bound_batch_size,
    decode_seconds_per_token,
    prefill_seconds,
    request_latency,
)

# Serving moved to repro.inferserve; these spellings resolve lazily
# through the repro.inference.serving deprecation shim so the one-time
# warning fires on use, not on importing this package.
_SERVING_SHIMS = (
    "ROUTERS",
    "ServingConfig",
    "ServingOutcome",
    "compare_routers",
    "simulate_serving",
)

__all__ = [
    "ROUTERS",
    "InferenceLatency",
    "InferencePoint",
    "decode_bound_batch_size",
    "decode_seconds_per_token",
    "prefill_seconds",
    "request_latency",
    "ServingConfig",
    "ServingOutcome",
    "compare_routers",
    "simulate_serving",
    "sweep_inference",
]


def __getattr__(name: str) -> Any:
    if name in _SERVING_SHIMS:
        from repro.inference import serving

        return getattr(serving, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
