"""Seeded stochastic job arrivals for the fleet simulator.

Jobs arrive on a Poisson process and are sampled from a weighted mix of
:class:`JobTemplate` shapes — training jobs drawn from the paper's model
catalog x parallelism strategies, plus batch-inference jobs (Section
7.2). Everything is driven by one ``random.Random(seed)``, so a given
seed always produces the identical submission trace; placement policies
are compared on the same arrivals, as the serving ablation does for its
routers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datacenter.jobs import JobKind, JobSpec


@dataclass(frozen=True)
class JobTemplate:
    """One sampleable job shape.

    Attributes:
        kind / model / parallelism / nodes_required: job shape (see
            :class:`~repro.datacenter.jobs.JobSpec`).
        min_iterations / max_iterations: uniform range the sampled job's
            iteration debt is drawn from.
        weight: relative sampling probability within the mix.
        microbatch_size / global_batch_size / checkpoint_interval:
            forwarded to the spec.
    """

    kind: JobKind
    model: str
    parallelism: str
    nodes_required: int
    min_iterations: int = 4
    max_iterations: int = 12
    weight: float = 1.0
    microbatch_size: int = 1
    global_batch_size: int = 16
    checkpoint_interval: int = 4

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("template weight must be positive")
        if not 1 <= self.min_iterations <= self.max_iterations:
            raise ValueError("need 1 <= min_iterations <= max_iterations")


# A small-model mix that profiles in well under a second per shape: two
# training shapes, a larger pipeline job, and a batch-inference job.
# Iteration debts are sized so a job runs for a few node-thermal time
# constants — long enough for placement history to matter.
DEFAULT_TEMPLATES: tuple[JobTemplate, ...] = (
    JobTemplate(
        kind=JobKind.TRAINING,
        model="gpt3-13b",
        parallelism="TP8-PP1",
        nodes_required=1,
        weight=3.0,
        min_iterations=12,
        max_iterations=36,
    ),
    JobTemplate(
        kind=JobKind.TRAINING,
        model="gpt3-13b",
        parallelism="TP4-PP2",
        nodes_required=1,
        weight=2.0,
        min_iterations=10,
        max_iterations=24,
    ),
    JobTemplate(
        kind=JobKind.TRAINING,
        model="gpt3-13b",
        parallelism="TP8-PP2",
        nodes_required=2,
        weight=2.0,
        min_iterations=8,
        max_iterations=20,
    ),
    JobTemplate(
        kind=JobKind.INFERENCE,
        model="gpt3-13b",
        parallelism="TP8-PP1",
        nodes_required=1,
        weight=2.0,
        min_iterations=16,
        max_iterations=40,
    ),
)


@dataclass(frozen=True)
class ArrivalConfig:
    """Parameters of the stochastic submission trace.

    Attributes:
        num_jobs: jobs submitted over the run.
        mean_interarrival_s: mean of the exponential gap between
            submissions.
        templates: weighted mix of job shapes.
        seed: RNG seed; the whole trace is a pure function of it.
    """

    num_jobs: int = 12
    mean_interarrival_s: float = 20.0
    templates: tuple[JobTemplate, ...] = DEFAULT_TEMPLATES
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ValueError("num_jobs must be >= 1")
        if self.mean_interarrival_s <= 0:
            raise ValueError("mean_interarrival_s must be positive")
        if not self.templates:
            raise ValueError("need at least one job template")


@dataclass(frozen=True)
class JobArrival:
    """One submission event: a job and the time it enters the queue."""

    time_s: float
    spec: JobSpec


def generate_arrivals(config: ArrivalConfig) -> list[JobArrival]:
    """Sample the full submission trace (deterministic per seed)."""
    rng = random.Random(config.seed)
    weights = [t.weight for t in config.templates]
    arrivals: list[JobArrival] = []
    now = 0.0
    for index in range(config.num_jobs):
        now += rng.expovariate(1.0 / config.mean_interarrival_s)
        template = rng.choices(config.templates, weights=weights, k=1)[0]
        iterations = rng.randint(
            template.min_iterations, template.max_iterations
        )
        spec = JobSpec(
            name=f"job{index:03d}-{template.kind.value[:5]}-{template.model}",
            kind=template.kind,
            model=template.model,
            parallelism=template.parallelism,
            nodes_required=template.nodes_required,
            iterations=iterations,
            microbatch_size=template.microbatch_size,
            global_batch_size=template.global_batch_size,
            checkpoint_interval=template.checkpoint_interval,
            seed=index,
        )
        arrivals.append(JobArrival(time_s=now, spec=spec))
    return arrivals
