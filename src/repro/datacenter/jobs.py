"""Fleet jobs: specs, runtime profiles, and per-job accounting.

A :class:`JobSpec` describes one training or inference job the fleet
must run: which model, which strategy, how many nodes it needs, and how
many optimizer steps (or inference batches) it owes. Before its first
placement a job is *profiled* — simulated once at fine granularity
through the existing :mod:`repro.core.experiment` entrypoints on a
sub-cluster of the right size — and the fleet's discrete-event loop then
advances it analytically from that profile (step time, power draw,
steady-state temperature). Profiles are memoised per job shape, so a
fleet of hundreds of jobs costs only one micro-simulation per distinct
(model, strategy, nodes, batch, fault) combination.

A :class:`JobRecord` carries the durable accounting the paper's Section
7 projection needs to distinguish goodput from throughput: iterations
completed and checkpointed survive a node fault, iterations since the
last checkpoint are *lost* and must be re-simulated after the restart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.faults import HEALTHY, FaultSpec
from repro.hardware.cluster import ClusterSpec


class JobKind(enum.Enum):
    """Workload class of a fleet job."""

    TRAINING = "training"
    INFERENCE = "inference"


class JobState(enum.Enum):
    """Lifecycle of a fleet job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"


@dataclass(frozen=True)
class JobSpec:
    """One job submitted to the fleet.

    Attributes:
        name: unique identifier within a fleet run.
        kind: training or (batch) inference.
        model: catalog model name.
        parallelism: paper-style strategy for ``nodes_required`` nodes
            (leftover GPUs take DP, as everywhere else in the repo).
        nodes_required: whole nodes the job occupies; jobs never span
            clusters.
        iterations: optimizer steps (training) or batches (inference)
            the job owes before it completes.
        microbatch_size / global_batch_size: batch geometry.
        checkpoint_interval: iterations between durable checkpoints;
            progress past the last checkpoint is lost on a node fault.
        seed: per-job seed (arrivals stamp a distinct one per job).
        fault: degradations injected into the job's own micro-simulation
            (:class:`repro.core.faults.FaultSpec`), e.g. a degraded node
            inside the job's allocation.
    """

    name: str
    kind: JobKind
    model: str
    parallelism: str
    nodes_required: int
    iterations: int
    microbatch_size: int = 1
    global_batch_size: int = 16
    checkpoint_interval: int = 4
    seed: int = 0
    fault: FaultSpec = HEALTHY

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.nodes_required < 1:
            raise ValueError("nodes_required must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.microbatch_size < 1 or self.global_batch_size < 1:
            raise ValueError("batch sizes must be >= 1")


@dataclass(frozen=True)
class JobProfile:
    """Steady-state execution profile of one job shape.

    Extracted from one fine-grained micro-simulation (warm-up iteration
    discarded) and reused for every analytical advance of the job.

    Attributes:
        step_time_s: wall time per iteration at full clock.
        tokens_per_iteration: tokens processed per iteration.
        power_w: mean whole-job power draw while running (all nodes).
        idle_power_w: aggregate idle draw of the job's nodes.
        steady_temp_c: mean die temperature the job sustains.
        peak_temp_c: hottest die temperature observed.
    """

    step_time_s: float
    tokens_per_iteration: int
    power_w: float
    idle_power_w: float
    steady_temp_c: float
    peak_temp_c: float

    def dynamic_power_w(self) -> float:
        """Draw above idle attributable to running the job."""
        return max(0.0, self.power_w - self.idle_power_w)


@dataclass(frozen=True)
class PlacementInterval:
    """One execution attempt of a job on concrete fleet nodes."""

    cluster: int
    nodes: tuple[int, ...]
    start_s: float
    end_s: float
    clock: float
    interrupted: bool


@dataclass
class JobRecord:
    """Mutable fleet-side accounting for one job.

    ``completed_iterations`` counts durable progress only (checkpointed,
    or carried to completion); ``lost_iterations`` counts work that was
    simulated but discarded by a fault — the gap between throughput and
    goodput. ``replayed_iterations`` counts the discarded work the job
    must execute a second time after restarting (equal to lost work
    under checkpoint rollback, zero under elastic continuation).
    """

    spec: JobSpec
    submit_s: float
    state: JobState = JobState.QUEUED
    profile: JobProfile | None = None
    completed_iterations: int = 0
    lost_iterations: int = 0
    replayed_iterations: int = 0
    restarts: int = 0
    energy_j: float = 0.0
    queue_wait_s: float = 0.0
    first_start_s: float | None = None
    end_s: float | None = None
    intervals: list[PlacementInterval] = field(default_factory=list)

    @property
    def remaining_iterations(self) -> int:
        """Iterations still owed before the job completes."""
        return self.spec.iterations - self.completed_iterations

    @property
    def goodput_tokens(self) -> int:
        """Durable tokens (survive faults via checkpoints)."""
        if self.profile is None:
            return 0
        return self.completed_iterations * self.profile.tokens_per_iteration

    @property
    def simulated_tokens(self) -> int:
        """All tokens processed, including fault-discarded work."""
        if self.profile is None:
            return 0
        return (
            (self.completed_iterations + self.lost_iterations)
            * self.profile.tokens_per_iteration
        )


# -- profiling ---------------------------------------------------------------

_PROFILE_CACHE: dict[tuple, JobProfile] = {}


def clear_profile_cache() -> None:
    """Drop memoised job profiles (tests use this for isolation)."""
    _PROFILE_CACHE.clear()


def _fault_key(fault: FaultSpec) -> tuple:
    return (
        tuple(sorted(fault.node_power_cap_scale.items())),
        tuple(sorted(fault.node_max_clock.items())),
    )


def _profile_key(
    spec: JobSpec, cluster: ClusterSpec, thermal_placement: bool
) -> tuple:
    return (
        spec.kind,
        spec.model,
        spec.parallelism,
        spec.nodes_required,
        spec.microbatch_size,
        spec.global_batch_size,
        cluster.name,
        _fault_key(spec.fault),
        thermal_placement,
    )


def sub_cluster(cluster: ClusterSpec, num_nodes: int) -> ClusterSpec:
    """A ``num_nodes``-node slice of ``cluster`` for one job.

    Fleet nodes are identical, so a job's fine-grained behaviour depends
    only on how many nodes it holds, not on which physical ones — the
    physical identity matters to the fleet (thermal state, faults), not
    to the micro-simulation.
    """
    from dataclasses import replace

    if not 1 <= num_nodes <= cluster.num_nodes:
        raise ValueError(
            f"job needs {num_nodes} nodes; cluster {cluster.name} "
            f"has {cluster.num_nodes}"
        )
    if num_nodes == cluster.num_nodes:
        return cluster
    return replace(
        cluster, name=f"{cluster.name}-sub{num_nodes}", num_nodes=num_nodes
    )


def profile_job(
    spec: JobSpec,
    cluster: ClusterSpec,
    thermal_placement: bool = False,
) -> JobProfile:
    """Micro-simulate one job shape and distil its fleet profile.

    Args:
        spec: the job to profile.
        cluster: host cluster (the job sees a ``spec.nodes_required``
            slice of it).
        thermal_placement: map pipeline stages cool-GPU-first inside the
            allocation (:func:`repro.scheduling.thermal_aware.
            thermal_aware_placement`) when the strategy permits; the
            fleet's thermal-aware policy enables this.
    """
    key = _profile_key(spec, cluster, thermal_placement)
    cached = _PROFILE_CACHE.get(key)
    if cached is not None:
        return cached

    from repro.core.experiment import execute_inference, execute_training
    from repro.engine.simulator import SimSettings

    sub = sub_cluster(cluster, spec.nodes_required)
    settings = SimSettings(faults=spec.fault)
    if spec.kind is JobKind.TRAINING:
        placement = None
        if thermal_placement:
            placement = _try_thermal_placement(sub, spec.parallelism)
        result = execute_training(
            model=spec.model,
            cluster=sub,
            parallelism=spec.parallelism,
            microbatch_size=spec.microbatch_size,
            global_batch_size=spec.global_batch_size,
            iterations=2,
            placement=placement,
            settings=settings,
        )
    else:
        result = execute_inference(
            model=spec.model,
            cluster=sub,
            parallelism=spec.parallelism,
            microbatch_size=spec.microbatch_size,
            global_batch_size=spec.global_batch_size,
            iterations=2,
            settings=settings,
        )
    efficiency = result.efficiency()
    stats = result.stats()
    idle_w = sub.total_gpus * sub.node.gpu.idle_watts
    profile = JobProfile(
        step_time_s=efficiency.step_time_s,
        tokens_per_iteration=result.outcome.tokens_per_iteration,
        power_w=max(stats.avg_power_w, idle_w),
        idle_power_w=idle_w,
        steady_temp_c=stats.avg_temp_c,
        peak_temp_c=stats.peak_temp_c,
    )
    _PROFILE_CACHE[key] = profile
    return profile


def _profile_payload(item: tuple) -> JobProfile:
    """Top-level worker entry for parallel pre-profiling (picklable)."""
    spec, cluster, thermal = item
    return profile_job(spec, cluster, thermal_placement=thermal)


def preprofile_jobs(
    specs: list[JobSpec],
    clusters: tuple[ClusterSpec, ...],
    thermal_training: bool = False,
    jobs: int = 1,
) -> int:
    """Warm the profile cache for every distinct job shape.

    The fleet's event loop profiles lazily at placement time, one shape
    at a time. This pre-pass simulates all distinct (shape, cluster)
    combinations up front — optionally across ``jobs`` worker processes
    via :func:`repro.core.parallel.map_calls` — so the event loop only
    ever hits the cache. Profiles are placement-independent, which keeps
    results identical to the lazy path. Returns the number of profiles
    simulated.
    """
    from repro.core.parallel import map_calls

    work: list[tuple] = []
    keys: list[tuple] = []
    seen: set[tuple] = set()
    for spec in specs:
        for cluster in clusters:
            if spec.nodes_required > cluster.num_nodes:
                continue
            thermal = thermal_training and spec.kind is JobKind.TRAINING
            key = _profile_key(spec, cluster, thermal)
            if key in seen or key in _PROFILE_CACHE:
                continue
            seen.add(key)
            keys.append(key)
            work.append((spec, cluster, thermal))
    profiles = map_calls(_profile_payload, work, jobs)
    for key, profile in zip(keys, profiles):
        _PROFILE_CACHE.setdefault(key, profile)
    return len(work)


def _try_thermal_placement(
    cluster: ClusterSpec, parallelism: str
) -> list[int] | None:
    """Cool-GPU-first permutation, or None when the strategy forbids it."""
    from repro.parallelism.strategy import parse_strategy
    from repro.scheduling.thermal_aware import thermal_aware_placement

    config = parse_strategy(parallelism)
    if config.world_size != cluster.total_gpus:
        config = config.fill_dp(cluster.total_gpus)
    try:
        return thermal_aware_placement(cluster, config)
    except ValueError:
        return None
