"""Fleet-scale multi-job simulation with thermal/power-aware placement.

The layer above a single run: a pool of clusters, stochastic job
arrivals, placement policies (``packed`` / ``spread`` /
``thermal-aware``), a facility power-cap admission controller, and node
faults with checkpoint/restart recovery. See ``docs/datacenter.md``.
"""

from repro.datacenter.arrivals import (
    DEFAULT_TEMPLATES,
    ArrivalConfig,
    JobArrival,
    JobTemplate,
    generate_arrivals,
)
from repro.datacenter.fleet import (
    FleetConfig,
    FleetFault,
    FleetOutcome,
    FleetSim,
    simulate_fleet,
)
from repro.datacenter.jobs import (
    JobKind,
    JobProfile,
    JobRecord,
    JobSpec,
    JobState,
    PlacementInterval,
    clear_profile_cache,
    preprofile_jobs,
    profile_job,
    sub_cluster,
)
from repro.datacenter.metrics import (
    FleetMetrics,
    FleetSample,
    fleet_metrics,
    format_fleet_summary,
)
from repro.datacenter.placement import (
    POLICIES,
    NodeState,
    Placement,
    select_nodes,
    thermal_derate,
)
from repro.datacenter.powercap import (
    CAP_MODES,
    Admission,
    AdmissionController,
    PowerCapConfig,
)

__all__ = [
    "Admission",
    "AdmissionController",
    "ArrivalConfig",
    "CAP_MODES",
    "DEFAULT_TEMPLATES",
    "FleetConfig",
    "FleetFault",
    "FleetMetrics",
    "FleetOutcome",
    "FleetSample",
    "FleetSim",
    "JobArrival",
    "JobKind",
    "JobProfile",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobTemplate",
    "NodeState",
    "POLICIES",
    "Placement",
    "PlacementInterval",
    "PowerCapConfig",
    "clear_profile_cache",
    "fleet_metrics",
    "format_fleet_summary",
    "generate_arrivals",
    "preprofile_jobs",
    "profile_job",
    "select_nodes",
    "simulate_fleet",
    "sub_cluster",
    "thermal_derate",
]
