"""Fleet-level telemetry and summary metrics.

The fleet samples its aggregate state at every discrete event (arrival,
job start/finish, fault, repair): committed and modelled power,
per-cluster temperature spread, queue depth. After a run,
:func:`fleet_metrics` distils the job records into the headline numbers
the paper's datacenter discussion needs — above all **goodput**: tokens
that survived to a checkpoint or to job completion, as opposed to
throughput, which also counts fault-discarded work. Goodput-per-joule is
the figure of merit the placement benchmark compares policies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datacenter.jobs import JobRecord, JobState


@dataclass(frozen=True)
class FleetSample:
    """One row of fleet telemetry, taken at a discrete event.

    Attributes:
        time_s: event time.
        event: event kind (``arrival``/``start``/``done``/``fault``/
            ``repair``).
        running_jobs / queued_jobs: instantaneous counts.
        busy_nodes: nodes occupied by jobs.
        committed_w: admission-controller ledger (idle floor + admitted
            dynamic draw) — the quantity the power cap bounds.
        power_w: modelled actual draw (idle floor + thermally/cap
            derated dynamic draw of running jobs).
        mean_temp_c / peak_temp_c: across all fleet nodes.
        temp_spread_c: max over clusters of (hottest - coolest node).
    """

    time_s: float
    event: str
    running_jobs: int
    queued_jobs: int
    busy_nodes: int
    committed_w: float
    power_w: float
    mean_temp_c: float
    peak_temp_c: float
    temp_spread_c: float


@dataclass(frozen=True)
class FleetMetrics:
    """Headline numbers of one fleet run.

    ``goodput_tokens_per_joule`` divides durable tokens by *all* energy
    the fleet spent (jobs, lost work, idle nodes) — wasted heat counts
    against the policy that caused it.
    """

    jobs_submitted: int
    jobs_completed: int
    restarts: int
    goodput_tokens: int
    simulated_tokens: int
    makespan_s: float
    goodput_tokens_per_s: float
    throughput_tokens_per_s: float
    energy_j: float
    goodput_tokens_per_joule: float
    mean_queue_wait_s: float
    max_queue_wait_s: float
    peak_committed_w: float
    peak_power_w: float
    mean_temp_spread_c: float
    deferred_admissions: int
    capped_admissions: int

    @property
    def goodput_fraction(self) -> float:
        """Durable share of all simulated tokens (1.0 = no lost work)."""
        if self.simulated_tokens == 0:
            return 1.0
        return self.goodput_tokens / self.simulated_tokens


def fleet_metrics(
    records: list[JobRecord],
    samples: list[FleetSample],
    makespan_s: float,
    energy_j: float,
    peak_committed_w: float,
    deferred: int,
    capped: int,
) -> FleetMetrics:
    """Aggregate job records and telemetry into a :class:`FleetMetrics`."""
    completed = [r for r in records if r.state is JobState.COMPLETED]
    goodput = sum(r.goodput_tokens for r in records)
    simulated = sum(r.simulated_tokens for r in records)
    waits = [r.queue_wait_s for r in records]
    spreads = [s.temp_spread_c for s in samples]
    horizon = max(makespan_s, 1e-9)
    return FleetMetrics(
        jobs_submitted=len(records),
        jobs_completed=len(completed),
        restarts=sum(r.restarts for r in records),
        goodput_tokens=goodput,
        simulated_tokens=simulated,
        makespan_s=makespan_s,
        goodput_tokens_per_s=goodput / horizon,
        throughput_tokens_per_s=simulated / horizon,
        energy_j=energy_j,
        goodput_tokens_per_joule=goodput / energy_j if energy_j > 0 else 0.0,
        mean_queue_wait_s=sum(waits) / len(waits) if waits else 0.0,
        max_queue_wait_s=max(waits) if waits else 0.0,
        peak_committed_w=peak_committed_w,
        peak_power_w=max((s.power_w for s in samples), default=0.0),
        mean_temp_spread_c=(
            sum(spreads) / len(spreads) if spreads else 0.0
        ),
        deferred_admissions=deferred,
        capped_admissions=capped,
    )


def format_fleet_summary(metrics: FleetMetrics) -> str:
    """Human-readable goodput/energy summary for the CLI."""
    lines = [
        f"jobs          : {metrics.jobs_completed}/"
        f"{metrics.jobs_submitted} completed, "
        f"{metrics.restarts} restarts",
        f"makespan      : {metrics.makespan_s:.1f} s",
        f"goodput       : {metrics.goodput_tokens_per_s:,.0f} tokens/s "
        f"({metrics.goodput_tokens:,} durable tokens)",
        f"throughput    : {metrics.throughput_tokens_per_s:,.0f} tokens/s "
        f"({metrics.goodput_fraction * 100:.1f}% goodput)",
        f"energy        : {metrics.energy_j / 1e6:.2f} MJ",
        f"goodput/J     : {metrics.goodput_tokens_per_joule:.4f} tokens/J",
        f"queue wait    : mean {metrics.mean_queue_wait_s:.1f} s, "
        f"max {metrics.max_queue_wait_s:.1f} s",
        f"peak power    : {metrics.peak_power_w / 1000:.1f} kW "
        f"(committed peak {metrics.peak_committed_w / 1000:.1f} kW)",
        f"temp spread   : {metrics.mean_temp_spread_c:.1f} C mean "
        f"per-cluster",
        f"admissions    : {metrics.deferred_admissions} deferred, "
        f"{metrics.capped_admissions} frequency-capped",
    ]
    return "\n".join(lines)
