"""Node-granularity placement policies for the fleet simulator.

A job asks for ``nodes_required`` whole nodes inside a single cluster;
the policy chooses which. Three policies are compared, mirroring the
paper's Section 6 finding that *where* work lands thermally is a
first-order efficiency knob:

* ``packed`` — lowest-numbered free nodes of the lowest-numbered
  cluster. Minimises fragmentation, but keeps re-landing work on the
  nodes that just finished running (and are still hot), so jobs start
  thermally throttled.
* ``spread`` — the cluster with the most free capacity first,
  least-recently-released nodes within it. Rotates work across the
  hardware but is blind to actual temperatures.
* ``thermal-aware`` — coolest free nodes first: the cool-GPU-first idea
  of :mod:`repro.scheduling.thermal_aware` lifted from GPU positions
  within a node to nodes within the fleet. Jobs land on the hardware
  with the most thermal headroom, and (for strategies that allow it)
  additionally get the intra-node cool-first stage permutation in their
  micro-profile.
"""

from __future__ import annotations

from dataclasses import dataclass

POLICIES = ("packed", "spread", "thermal-aware")


@dataclass
class NodeState:
    """Fleet-side state of one physical node.

    Attributes:
        cluster: index of the owning cluster in the fleet pool.
        node: node index within that cluster.
        temp_c: fleet-granularity mean die temperature estimate,
            advanced by the fleet's exponential heating/cooling model.
        last_update_s: when ``temp_c`` was last advanced.
        last_release_s: when the node last finished a job (the
            ``spread`` policy rotates onto the stalest nodes).
        busy: whether a job currently occupies the node.
        healthy: False while the node is down for repair after a fault.
        job: name of the occupying job, if any.
    """

    cluster: int
    node: int
    temp_c: float
    last_update_s: float = 0.0
    last_release_s: float = -1.0
    busy: bool = False
    healthy: bool = True
    job: str | None = None

    @property
    def free(self) -> bool:
        """Whether the node can accept a job right now."""
        return self.healthy and not self.busy


@dataclass(frozen=True)
class Placement:
    """A policy decision: which nodes of which cluster a job gets."""

    cluster: int
    nodes: tuple[int, ...]


def select_nodes(
    policy: str, nodes: list[NodeState], needed: int
) -> Placement | None:
    """Choose ``needed`` free nodes in one cluster, or None if impossible.

    All three policies are deterministic: ties break on (cluster, node)
    index so a fixed seed yields a fixed schedule.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
    if needed < 1:
        raise ValueError("needed must be >= 1")
    free_by_cluster: dict[int, list[NodeState]] = {}
    for state in nodes:
        if state.free:
            free_by_cluster.setdefault(state.cluster, []).append(state)
    candidates = {
        cluster: free
        for cluster, free in free_by_cluster.items()
        if len(free) >= needed
    }
    if not candidates:
        return None

    if policy == "packed":
        cluster = min(candidates)
        chosen = sorted(candidates[cluster], key=lambda s: s.node)[:needed]
    elif policy == "spread":
        cluster = min(
            candidates, key=lambda c: (-len(candidates[c]), c)
        )
        chosen = sorted(
            candidates[cluster], key=lambda s: (s.last_release_s, s.node)
        )[:needed]
    else:  # thermal-aware
        def coolness(cluster: int) -> tuple[float, int]:
            picks = sorted(
                candidates[cluster], key=lambda s: (s.temp_c, s.node)
            )[:needed]
            mean = sum(s.temp_c for s in picks) / needed
            return (mean, cluster)

        cluster = min(candidates, key=coolness)
        chosen = sorted(
            candidates[cluster], key=lambda s: (s.temp_c, s.node)
        )[:needed]

    return Placement(
        cluster=cluster, nodes=tuple(sorted(s.node for s in chosen))
    )


def thermal_derate(
    temp_c: float,
    onset_c: float,
    full_c: float,
    min_clock: float,
) -> float:
    """Clock multiplier a job starting on a ``temp_c``-hot node suffers.

    1.0 below the throttle onset, falling linearly to ``min_clock`` at
    ``full_c`` — the fleet-granularity stand-in for the DVFS governor
    the micro-simulator integrates per GPU.
    """
    if full_c <= onset_c:
        raise ValueError("full_c must exceed onset_c")
    if not 0 < min_clock <= 1.0:
        raise ValueError("min_clock must be in (0, 1]")
    if temp_c <= onset_c:
        return 1.0
    if temp_c >= full_c:
        return min_clock
    frac = (temp_c - onset_c) / (full_c - onset_c)
    return 1.0 - frac * (1.0 - min_clock)
