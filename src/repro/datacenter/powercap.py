"""Facility power-cap admission control (paper Section 7.1 scaled up).

The paper projects single-job power to datacenter scale; this module
closes the loop the other way: given a facility budget, the fleet must
decide what to do when starting one more job would push aggregate draw
over it. Two modes:

* ``defer`` — the job stays queued until enough draw is released
  (capacity-preserving, latency-paying);
* ``cap`` — the job is admitted at a reduced clock chosen so its
  dynamic draw fits the remaining headroom (latency-preserving,
  throughput-paying). Dynamic power is modelled as scaling with the
  square of the clock ratio, the same convexity the paper's DVFS data
  shows.

The controller's ledger works on *committed* power — the idle floor of
every node plus each admitted job's (possibly capped) dynamic draw — so
the invariant "committed draw never exceeds the facility cap" holds by
construction and is asserted by the property tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

CAP_MODES = ("defer", "cap")


@dataclass(frozen=True)
class PowerCapConfig:
    """Facility power budget and the policy for enforcing it.

    Attributes:
        facility_cap_w: total budget across every node in the fleet
            (``inf`` disables admission control).
        mode: ``defer`` or ``cap`` (see module docstring).
        min_clock: floor below which a capped admission is refused and
            the job deferred instead.
    """

    facility_cap_w: float = math.inf
    mode: str = "defer"
    min_clock: float = 0.5

    def __post_init__(self) -> None:
        if self.facility_cap_w <= 0:
            raise ValueError("facility_cap_w must be positive")
        if self.mode not in CAP_MODES:
            raise ValueError(f"unknown mode {self.mode!r}; known: {CAP_MODES}")
        if not 0 < self.min_clock <= 1.0:
            raise ValueError("min_clock must be in (0, 1]")


@dataclass(frozen=True)
class Admission:
    """Outcome of one admission request.

    ``admitted`` with ``clock < 1.0`` means the job was frequency-capped
    to fit; ``admitted=False`` means it must wait in the queue.
    """

    admitted: bool
    clock: float = 1.0
    committed_w: float = 0.0


class AdmissionController:
    """Tracks committed facility draw and admits/defers/caps jobs."""

    def __init__(self, config: PowerCapConfig, idle_floor_w: float) -> None:
        if idle_floor_w < 0:
            raise ValueError("idle_floor_w must be >= 0")
        if config.facility_cap_w < idle_floor_w:
            raise ValueError(
                f"facility cap {config.facility_cap_w:.0f} W is below the "
                f"fleet idle floor {idle_floor_w:.0f} W"
            )
        self.config = config
        self.idle_floor_w = idle_floor_w
        self._committed_dynamic_w = 0.0
        self.deferred = 0
        self.capped = 0
        self.peak_committed_w = idle_floor_w

    @property
    def committed_w(self) -> float:
        """Idle floor plus every admitted job's committed dynamic draw."""
        return self.idle_floor_w + self._committed_dynamic_w

    @property
    def headroom_w(self) -> float:
        """Budget still available for dynamic draw."""
        return self.config.facility_cap_w - self.committed_w

    def admit(self, dynamic_w: float) -> Admission:
        """Try to admit a job that adds ``dynamic_w`` above idle.

        Returns an :class:`Admission`; on success the draw is committed
        until :meth:`release` is called with the same committed value.
        """
        if dynamic_w < 0:
            raise ValueError("dynamic_w must be >= 0")
        headroom = self.headroom_w
        if dynamic_w <= headroom:
            return self._commit(dynamic_w, clock=1.0)
        if self.config.mode == "cap" and dynamic_w > 0 and headroom > 0:
            # Dynamic draw ~ clock^2: the largest admissible clock is
            # sqrt(headroom / full dynamic draw).
            clock = math.sqrt(headroom / dynamic_w)
            if clock >= self.config.min_clock:
                self.capped += 1
                return self._commit(dynamic_w * clock * clock, clock=clock)
        self.deferred += 1
        return Admission(admitted=False)

    def release(self, committed_w: float) -> None:
        """Return a finished (or interrupted) job's committed draw."""
        self._committed_dynamic_w = max(
            0.0, self._committed_dynamic_w - committed_w
        )

    def _commit(self, dynamic_w: float, clock: float) -> Admission:
        self._committed_dynamic_w += dynamic_w
        self.peak_committed_w = max(self.peak_committed_w, self.committed_w)
        return Admission(admitted=True, clock=clock, committed_w=dynamic_w)
