"""Discrete-event fleet simulator: many jobs, one facility.

This is the layer above a single run that the paper's Section 7
projection gestures at: a pool of clusters (built from
:mod:`repro.hardware`), a queue of stochastically arriving jobs, a
placement policy, a facility power-cap admission controller, and node
faults with checkpoint/restart recovery.

Mechanics
---------
Each distinct job shape is micro-simulated once through
:mod:`repro.core.experiment` (see
:func:`repro.datacenter.jobs.profile_job`); the fleet then advances jobs
analytically: an attempt placed at ``t`` on nodes with thermal headroom
runs its remaining iterations at ``step_time / clock`` where ``clock``
combines the admission controller's frequency cap and the thermal derate
of the hottest assigned node. Node temperatures follow a first-order
exponential toward the running job's steady-state temperature (heating)
or the chassis ambient (cooling) — the fleet-granularity analogue of the
per-GPU RC model the micro-simulator integrates.

A node fault (random MTBF draw or injected :class:`FleetFault`)
interrupts the resident job: iterations since its last checkpoint are
discarded as *lost*, the job requeues at the head of the queue, and the
node is down for ``repair_time_s``. Goodput therefore lags throughput by
exactly the work the fault schedule destroyed.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from dataclasses import dataclass, field

from repro.datacenter.arrivals import ArrivalConfig, generate_arrivals
from repro.datacenter.jobs import (
    JobKind,
    JobProfile,
    JobRecord,
    JobState,
    PlacementInterval,
    profile_job,
)
from repro.datacenter.metrics import (
    FleetMetrics,
    FleetSample,
    fleet_metrics,
)
from repro.datacenter.placement import (
    POLICIES,
    NodeState,
    Placement,
    select_nodes,
    thermal_derate,
)
from repro.datacenter.powercap import AdmissionController, PowerCapConfig
from repro.hardware.cluster import ClusterSpec, get_cluster
from repro.powerctl.config import (
    NO_POWER_CONTROL,
    PowerControlConfig,
    freq_for_power_limit,
)
from repro.resilience.recovery import (
    POLICIES as RECOVERY_POLICIES,
    plan_interrupt,
)
from repro.suggest import unknown_name_message


@dataclass(frozen=True)
class FleetFault:
    """An injected node failure at a known time (forced, not random)."""

    time_s: float
    cluster: int
    node: int

    def __post_init__(self) -> None:
        if self.time_s < 0 or self.cluster < 0 or self.node < 0:
            raise ValueError("fault coordinates must be non-negative")


@dataclass(frozen=True)
class FleetConfig:
    """Everything one fleet simulation needs.

    Attributes:
        clusters: pool members — catalog names or
            :class:`~repro.hardware.cluster.ClusterSpec` objects.
        policy: placement policy (:data:`~repro.datacenter.placement.
            POLICIES`).
        power_cap: facility budget and enforcement mode.
        arrivals: stochastic submission trace parameters.
        seed: fleet-level seed (random MTBF fault draws).
        node_mtbf_s: mean time between failures per node; 0 disables
            random faults.
        repair_time_s: downtime after a fault before the node returns.
        recovery_policy: how interrupted jobs recover
            (:data:`repro.resilience.recovery.POLICIES`). ``failstop``
            rolls back to the last checkpoint; ``hot-spare`` rolls back
            too but requeues after only ``spare_swapin_s``; ``elastic``
            keeps all progress (DP survivors hold the model state) and
            requeues after ``reconfig_s``. Interrupt accounting is
            delegated to :func:`repro.resilience.recovery.plan_interrupt`
            so the fleet and the per-job resilience walk agree.
        restart_delay_s / spare_swapin_s / reconfig_s: recovery latency
            before an interrupted job is runnable again, per policy.
            All default to 0, which preserves the legacy
            immediate-requeue behaviour.
        fault_events: forced faults at known times (on top of MTBF).
        heating_tau_s / cooling_tau_s: node thermal time constants.
        throttle_onset_c / throttle_full_c / throttle_min_clock: the
            fleet-granularity derate curve for jobs starting on hot
            nodes.
        straggler_power_fraction: share of a thermally derated job's
            dynamic draw that does *not* scale down with the derate —
            the paper's straggler effect: only the hot GPUs throttle,
            the rest of the job stalls at synchronisation points while
            still burning near-full power. Thermal throttling therefore
            costs energy per token, unlike a coordinated admission
            frequency cap (which scales as clock^2 across the job).
        power_control: fleet-wide GPU power management. Only the
            ``none`` and ``static`` governors compose at fleet
            granularity (a uniform clock ceiling or per-GPU power
            limit applied to every placed job); the closed-loop
            governors need per-step thermal state and run inside
            per-job simulations via ``SimSettings.power_control``.
            The static ceiling multiplies the admission controller's
            frequency cap, and the job's governed draw (scaling as
            setpoint^2) is what the facility power cap admits — so a
            fleet-wide cap frees cap headroom and reduces deferrals.
        max_sim_s: hard wall on simulated time (runaway guard).
    """

    clusters: tuple[str | ClusterSpec, ...] = ("h200x32",)
    policy: str = "packed"
    power_cap: PowerCapConfig = field(default_factory=PowerCapConfig)
    arrivals: ArrivalConfig = field(default_factory=ArrivalConfig)
    seed: int = 0
    node_mtbf_s: float = 0.0
    repair_time_s: float = 180.0
    recovery_policy: str = "failstop"
    restart_delay_s: float = 0.0
    spare_swapin_s: float = 0.0
    reconfig_s: float = 0.0
    fault_events: tuple[FleetFault, ...] = ()
    heating_tau_s: float = 30.0
    cooling_tau_s: float = 120.0
    throttle_onset_c: float = 45.0
    throttle_full_c: float = 95.0
    throttle_min_clock: float = 0.6
    straggler_power_fraction: float = 0.7
    power_control: PowerControlConfig = NO_POWER_CONTROL
    max_sim_s: float = 1e6

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("fleet needs at least one cluster")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; known: {POLICIES}"
            )
        if self.node_mtbf_s < 0 or self.repair_time_s <= 0:
            raise ValueError("MTBF must be >= 0 and repair time positive")
        if self.recovery_policy not in RECOVERY_POLICIES:
            raise ValueError(
                unknown_name_message(
                    "recovery policy", self.recovery_policy,
                    RECOVERY_POLICIES,
                )
            )
        if min(
            self.restart_delay_s, self.spare_swapin_s, self.reconfig_s
        ) < 0:
            raise ValueError("recovery delays must be >= 0")
        if self.heating_tau_s <= 0 or self.cooling_tau_s <= 0:
            raise ValueError("thermal time constants must be positive")
        if not 0.0 <= self.straggler_power_fraction <= 1.0:
            raise ValueError(
                "straggler_power_fraction must be in [0, 1]"
            )
        if self.power_control.active:
            if self.power_control.governor != "static":
                raise ValueError(
                    "fleet power control supports the 'none' and 'static' "
                    f"governors; {self.power_control.governor!r} is "
                    "closed-loop and runs inside per-job simulations "
                    "(SimSettings.power_control)"
                )
            if self.power_control.gpu_freq_setpoints:
                raise ValueError(
                    "fleet power control is uniform per job; per-GPU "
                    "setpoints are not supported at fleet granularity"
                )


@dataclass
class _RunningJob:
    """Book-keeping of one in-flight attempt."""

    record: JobRecord
    placement: Placement
    start_s: float
    attempt: int
    clock: float
    committed_w: float
    dynamic_w: float
    step_time_s: float
    power_w: float


@dataclass
class FleetOutcome:
    """Everything one fleet simulation produced."""

    config: FleetConfig
    clusters: tuple[ClusterSpec, ...]
    records: dict[str, JobRecord]
    samples: list[FleetSample]
    makespan_s: float
    energy_j: float
    idle_floor_w: float
    peak_committed_w: float
    deferred_admissions: int
    capped_admissions: int

    def metrics(self) -> FleetMetrics:
        """Distil the run into headline fleet metrics."""
        return fleet_metrics(
            records=list(self.records.values()),
            samples=self.samples,
            makespan_s=self.makespan_s,
            energy_j=self.energy_j,
            peak_committed_w=self.peak_committed_w,
            deferred=self.deferred_admissions,
            capped=self.capped_admissions,
        )


class FleetSim:
    """Runs one fleet scenario to completion."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self.clusters: tuple[ClusterSpec, ...] = tuple(
            c if isinstance(c, ClusterSpec) else get_cluster(c)
            for c in config.clusters
        )
        max_nodes = max(c.num_nodes for c in self.clusters)
        self._arrivals = generate_arrivals(config.arrivals)
        for arrival in self._arrivals:
            if arrival.spec.nodes_required > max_nodes:
                raise ValueError(
                    f"job {arrival.spec.name} needs "
                    f"{arrival.spec.nodes_required} nodes; largest cluster "
                    f"has {max_nodes}"
                )

        self._nodes: list[NodeState] = []
        for ci, cluster in enumerate(self.clusters):
            for ni in range(cluster.num_nodes):
                self._nodes.append(
                    NodeState(
                        cluster=ci, node=ni, temp_c=cluster.node.ambient_c
                    )
                )
        self._node_index = {
            (s.cluster, s.node): s for s in self._nodes
        }
        idle_floor = sum(
            c.num_nodes * c.node.gpus_per_node * c.node.gpu.idle_watts
            for c in self.clusters
        )
        self.controller = AdmissionController(config.power_cap, idle_floor)
        self.idle_floor_w = idle_floor

        self._rng = random.Random(config.seed)
        self._heap: list[tuple[float, int, str, tuple]] = []
        self._seq = itertools.count()
        self._queue: list[str] = []
        self._records: dict[str, JobRecord] = {}
        self._running: dict[str, _RunningJob] = {}
        self._attempts: dict[str, int] = {}
        self._enqueued_at: dict[str, float] = {}
        self._samples: list[FleetSample] = []
        self._dynamic_energy_j = 0.0
        self._pending_arrivals = len(self._arrivals)
        self._now = 0.0

        for arrival in self._arrivals:
            self._push(arrival.time_s, "arrival", (arrival,))
        for fault in config.fault_events:
            if fault.cluster >= len(self.clusters) or (
                fault.node >= self.clusters[fault.cluster].num_nodes
            ):
                raise ValueError(f"fault targets unknown node: {fault}")
            self._push(fault.time_s, "fault", (fault.cluster, fault.node))
        if config.node_mtbf_s > 0:
            for state in self._nodes:
                self._schedule_random_fault(state, 0.0)

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def run(self) -> FleetOutcome:
        """Process every event until all jobs complete."""
        handlers = {
            "arrival": self._on_arrival,
            "done": self._on_done,
            "fault": self._on_fault,
            "repair": self._on_repair,
            "requeue": self._on_requeue,
        }
        makespan = 0.0
        while self._heap:
            time_s, _, kind, payload = heapq.heappop(self._heap)
            if time_s > self.config.max_sim_s:
                raise RuntimeError(
                    f"fleet simulation exceeded max_sim_s="
                    f"{self.config.max_sim_s}"
                )
            self._now = time_s
            self._advance_all_temps(time_s)
            handlers[kind](time_s, *payload)
            self._sample(kind, time_s)
            if self._all_done():
                makespan = time_s
                break
            self._check_stuck()
        else:
            if not self._all_done():
                self._check_stuck()
            makespan = self._now
        energy = self.idle_floor_w * makespan + self._dynamic_energy_j
        return FleetOutcome(
            config=self.config,
            clusters=self.clusters,
            records=self._records,
            samples=self._samples,
            makespan_s=makespan,
            energy_j=energy,
            idle_floor_w=self.idle_floor_w,
            peak_committed_w=self.controller.peak_committed_w,
            deferred_admissions=self.controller.deferred,
            capped_admissions=self.controller.capped,
        )

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _on_arrival(self, now: float, arrival) -> None:
        record = JobRecord(spec=arrival.spec, submit_s=now)
        self._records[arrival.spec.name] = record
        self._queue.append(arrival.spec.name)
        self._enqueued_at[arrival.spec.name] = now
        self._pending_arrivals -= 1
        self._dispatch(now)

    def _on_done(self, now: float, name: str, attempt: int) -> None:
        running = self._running.get(name)
        if running is None or running.attempt != attempt:
            return  # stale completion from an interrupted attempt
        record = running.record
        duration = now - running.start_s
        record.completed_iterations = record.spec.iterations
        self._account_energy(running, duration)
        record.intervals.append(
            PlacementInterval(
                cluster=running.placement.cluster,
                nodes=running.placement.nodes,
                start_s=running.start_s,
                end_s=now,
                clock=running.clock,
                interrupted=False,
            )
        )
        record.state = JobState.COMPLETED
        record.end_s = now
        self._free_nodes(running.placement, now)
        self.controller.release(running.committed_w)
        del self._running[name]
        self._dispatch(now)

    def _on_fault(self, now: float, cluster: int, node: int) -> None:
        state = self._node_index[(cluster, node)]
        if not state.healthy:
            return  # already down; a repair is scheduled
        state.healthy = False
        victim = state.job
        if victim is not None:
            self._interrupt(victim, now)
        self._push(now + self.config.repair_time_s, "repair", (cluster, node))
        self._dispatch(now)

    def _on_requeue(self, now: float, name: str) -> None:
        """An interrupted job finished recovering and is runnable again."""
        self._queue.insert(0, name)  # resume ahead of newer work
        self._enqueued_at[name] = now
        self._dispatch(now)

    def _on_repair(self, now: float, cluster: int, node: int) -> None:
        state = self._node_index[(cluster, node)]
        state.healthy = True
        if self.config.node_mtbf_s > 0:
            self._schedule_random_fault(state, now)
        self._dispatch(now)

    # ------------------------------------------------------------------
    # Placement and recovery
    # ------------------------------------------------------------------

    def _dispatch(self, now: float) -> None:
        """Place queued jobs (FIFO with backfill) while anything fits."""
        placed = True
        while placed:
            placed = False
            for name in list(self._queue):
                if self._try_place(name, now):
                    placed = True
                    break  # re-scan from the head: FIFO priority

    def _governed_setpoint(self, cluster: ClusterSpec) -> float:
        """Uniform clock ceiling the fleet governor imposes on a job."""
        control = self.config.power_control
        if not control.active:
            return 1.0
        if control.power_limit_w is not None:
            return freq_for_power_limit(
                cluster.node.gpu, control.power_limit_w
            )
        return control.freq_setpoint

    def _try_place(self, name: str, now: float) -> bool:
        record = self._records[name]
        spec = record.spec
        placement = select_nodes(
            self.config.policy, self._nodes, spec.nodes_required
        )
        if placement is None:
            return False
        cluster = self.clusters[placement.cluster]
        thermal = (
            self.config.policy == "thermal-aware"
            and spec.kind is JobKind.TRAINING
        )
        profile = profile_job(spec, cluster, thermal_placement=thermal)
        record.profile = profile
        # A fleet-wide static governor caps the job's clock before the
        # facility cap sees it: the admitted draw is the governed one
        # (coordinated DVFS, ~ setpoint^2), composing with — not
        # stacking under — the admission controller's own cap mode.
        setpoint = self._governed_setpoint(cluster)
        governed_dynamic = profile.dynamic_power_w() * setpoint * setpoint
        admission = self.controller.admit(governed_dynamic)
        if not admission.admitted:
            return False

        hottest = max(
            self._node_index[(placement.cluster, n)].temp_c
            for n in placement.nodes
        )
        derate = thermal_derate(
            hottest,
            self.config.throttle_onset_c,
            self.config.throttle_full_c,
            self.config.throttle_min_clock,
        )
        clock = admission.clock * setpoint * derate
        step = profile.step_time_s / clock
        # Admission caps are coordinated DVFS (draw ~ clock^2); thermal
        # derates are stragglers — most of the job keeps burning power
        # while it waits on the throttled hot node.
        alpha = self.config.straggler_power_fraction
        thermal_power_scale = alpha + (1.0 - alpha) * derate * derate
        dynamic = (
            governed_dynamic
            * admission.clock * admission.clock
            * thermal_power_scale
        )
        attempt = self._attempts.get(name, 0) + 1
        self._attempts[name] = attempt
        self._running[name] = _RunningJob(
            record=record,
            placement=placement,
            start_s=now,
            attempt=attempt,
            clock=clock,
            committed_w=admission.committed_w,
            dynamic_w=dynamic,
            step_time_s=step,
            power_w=profile.idle_power_w + dynamic,
        )
        for n in placement.nodes:
            state = self._node_index[(placement.cluster, n)]
            state.busy = True
            state.job = name
        record.state = JobState.RUNNING
        record.queue_wait_s += now - self._enqueued_at[name]
        if record.first_start_s is None:
            record.first_start_s = now
        self._queue.remove(name)
        finish = now + record.remaining_iterations * step
        self._push(finish, "done", (name, attempt))
        return True

    def _interrupt(self, name: str, now: float) -> None:
        """A fault killed this job's attempt: recover it per policy.

        The accounting — what survives the interrupt, what is lost, what
        must be replayed, and how long recovery takes — is delegated to
        :func:`repro.resilience.recovery.plan_interrupt`, the same
        closed form the per-job resilience walk uses. ``elastic`` is the
        fleet-granularity approximation of DP-shrink continuation: the
        survivors hold the model state, so nothing rolls back and the
        job is runnable again after one re-group delay.
        """
        config = self.config
        running = self._running.pop(name)
        record = running.record
        elapsed = now - running.start_s
        steps = min(
            record.remaining_iterations,
            int(elapsed / running.step_time_s + 1e-9),
        )
        plan = plan_interrupt(
            config.recovery_policy,
            steps,
            record.spec.checkpoint_interval,
            restart_delay_s=config.restart_delay_s,
            spare_swapin_s=config.spare_swapin_s,
            reconfig_s=config.reconfig_s,
        )
        record.completed_iterations += plan.durable_iterations
        record.lost_iterations += plan.lost_iterations
        record.replayed_iterations += plan.replayed_iterations
        record.restarts += 1
        self._account_energy(running, elapsed)
        record.intervals.append(
            PlacementInterval(
                cluster=running.placement.cluster,
                nodes=running.placement.nodes,
                start_s=running.start_s,
                end_s=now,
                clock=running.clock,
                interrupted=True,
            )
        )
        self._free_nodes(running.placement, now)
        self.controller.release(running.committed_w)
        record.state = JobState.QUEUED
        if plan.requeue_delay_s > 0:
            # Recovery latency (restore / spare swap-in / re-group): the
            # job is runnable only once it elapses. Not counted as queue
            # wait — the job is recovering, not waiting for capacity.
            self._push(now + plan.requeue_delay_s, "requeue", (name,))
        else:
            self._queue.insert(0, name)  # resume ahead of newer work
            self._enqueued_at[name] = now

    # ------------------------------------------------------------------
    # Physics, accounting, plumbing
    # ------------------------------------------------------------------

    def _advance_all_temps(self, now: float) -> None:
        for state in self._nodes:
            dt = now - state.last_update_s
            if dt <= 0:
                continue
            running = (
                self._running.get(state.job) if state.job is not None
                else None
            )
            if state.busy and running is not None:
                target = running.record.profile.steady_temp_c
                tau = self.config.heating_tau_s
            else:
                target = self.clusters[state.cluster].node.ambient_c
                tau = self.config.cooling_tau_s
            state.temp_c = target + (state.temp_c - target) * math.exp(
                -dt / tau
            )
            state.last_update_s = now

    def _account_energy(self, running: _RunningJob, duration: float) -> None:
        running.record.energy_j += duration * running.power_w
        self._dynamic_energy_j += duration * running.dynamic_w

    def _free_nodes(self, placement: Placement, now: float) -> None:
        for n in placement.nodes:
            state = self._node_index[(placement.cluster, n)]
            state.busy = False
            state.job = None
            state.last_release_s = now

    def _schedule_random_fault(self, state: NodeState, now: float) -> None:
        delay = self._rng.expovariate(1.0 / self.config.node_mtbf_s)
        self._push(now + delay, "fault", (state.cluster, state.node))

    def _sample(self, event: str, now: float) -> None:
        temps = [s.temp_c for s in self._nodes]
        spread = 0.0
        for ci in range(len(self.clusters)):
            cluster_temps = [
                s.temp_c for s in self._nodes if s.cluster == ci
            ]
            spread = max(spread, max(cluster_temps) - min(cluster_temps))
        power = self.idle_floor_w + sum(
            r.dynamic_w for r in self._running.values()
        )
        self._samples.append(
            FleetSample(
                time_s=now,
                event=event,
                running_jobs=len(self._running),
                queued_jobs=len(self._queue),
                busy_nodes=sum(1 for s in self._nodes if s.busy),
                committed_w=self.controller.committed_w,
                power_w=power,
                mean_temp_c=sum(temps) / len(temps),
                peak_temp_c=max(temps),
                temp_spread_c=spread,
            )
        )

    def _push(self, time_s: float, kind: str, payload: tuple) -> None:
        heapq.heappush(
            self._heap, (time_s, next(self._seq), kind, payload)
        )

    def _all_done(self) -> bool:
        return (
            self._pending_arrivals == 0
            and not self._queue
            and not self._running
            and all(
                r.state is JobState.COMPLETED
                for r in self._records.values()
            )
        )

    def _check_stuck(self) -> None:
        if self._heap or self._pending_arrivals or self._running:
            return
        if self._queue:
            raise RuntimeError(
                f"{len(self._queue)} jobs can never be placed (power cap "
                "too tight for their draw, or nodes permanently down): "
                f"{self._queue[:4]}"
            )


def simulate_fleet(config: FleetConfig, jobs: int = 1) -> FleetOutcome:
    """Convenience wrapper: build a :class:`FleetSim` and run it.

    Args:
        config: the scenario to simulate.
        jobs: worker processes used to pre-profile distinct job shapes
            before the event loop starts (see
            :func:`repro.datacenter.jobs.preprofile_jobs`); 1 keeps the
            serial lazy-profiling path. Results are independent of
            ``jobs``.
    """
    sim = FleetSim(config)
    if jobs != 1:
        from repro.datacenter.jobs import preprofile_jobs

        preprofile_jobs(
            [arrival.spec for arrival in sim._arrivals],
            sim.clusters,
            thermal_training=config.policy == "thermal-aware",
            jobs=jobs,
        )
    return sim.run()
