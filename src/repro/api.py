"""The stable, typed simulation API: ``SimRequest`` in, results out.

This module is the canonical surface every consumer — the CLI, sweeps,
the fleet simulator, and the ``repro.serve`` broker — speaks. One frozen
request schema covers training, inference, serving, and fleet jobs (a
sweep is just :func:`submit_many` over a request grid)::

    from repro.api import SimRequest, submit

    result = submit(SimRequest(
        kind="training",
        model="gpt3-13b",
        cluster="h100x64",
        parallelism="TP4-PP2",
    ))
    print(result.efficiency().tokens_per_s)

Requests validate eagerly (catalog names, strategy strings, fault and
governor flag groups — with the same did-you-mean diagnostics the CLI
prints), round-trip losslessly through ``to_dict``/``from_dict`` and
JSON, and hash to a stable :meth:`SimRequest.digest` that doubles as the
result-store address — which is how the broker answers repeat requests
without simulating.

Next to the run schema sits the search schema:
:class:`OptimizeRequest` (re-exported from :mod:`repro.optimize`) asks
for the *best* configuration instead of one configuration — a joint
plan × microbatch × schedule × setpoint auto-search with the same
validation, serialisation, and digest idioms, accepted by
:func:`submit` / :func:`submit_many`, the broker, and
``python -m repro optimize`` alike (docs/optimize.md).

The historical entrypoints (``run_training``, ``run_inference``,
``cached_run_training``, ``cached_run_inference``, and the setpoint
searches ``powerctl.search_energy_optimal``, ``powerctl.sweep_setpoints``,
``inferserve.search_serving_setpoint``) remain importable as thin
deprecation shims over this module and :mod:`repro.optimize`; see
docs/api.md for the migration table.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import warnings
from dataclasses import dataclass, field, fields
from typing import Any, Iterable, Mapping

from repro.core.experiment import (
    DEFAULT_GLOBAL_BATCH,
    execute_inference,
    execute_training,
)
from repro.core.faults import FaultEvent, FaultKind, FaultSpec, FaultTimeline
from repro.core.results import RunResult
from repro.engine.simulator import SimSettings
from repro.hardware.cluster import get_cluster
from repro.models.catalog import get_model
from repro.optimize.request import OptimizeRequest, OptimizeResult
from repro.parallelism.strategy import OptimizationConfig, parse_strategy
from repro.powerctl.config import (
    GOVERNORS,
    NO_POWER_CONTROL,
    PowerControlConfig,
)
from repro.suggest import normalize_name, unknown_name_message

__all__ = [
    "KINDS",
    "OptimizeRequest",
    "OptimizeResult",
    "SimRequest",
    "submit",
    "submit_many",
]

#: Request kinds the schema covers. A sweep is ``submit_many`` over a
#: grid of ``training``/``inference``/``serving`` requests.
KINDS = ("training", "inference", "fleet", "serving")

_KIND_ALIASES = {
    "train": "training",
    "infer": "inference",
    "serve": "serving",
}

#: Keys accepted in :attr:`SimRequest.fleet` (mirroring the
#: ``repro fleet`` CLI surface; see :meth:`SimRequest.to_fleet_config`).
FLEET_KEYS = (
    "clusters",
    "policy",
    "seed",
    "num_jobs",
    "mean_interarrival_s",
    "power_cap_kw",
    "cap_mode",
    "node_mtbf_s",
    "repair_time_s",
    "recovery_policy",
    "restart_delay_s",
    "spare_swapin_s",
    "reconfig_s",
    "gpu_clock_limit",
    "gpu_power_limit_w",
)

_DEFAULT_FAULT_DURATION_S = 5.0
_DEFAULT_FAULT_POWER_SCALE = 0.25


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class SimRequest:
    """One typed simulation request covering all four kinds
    (training, inference, serving, or fleet).

    Every field is a plain JSON-serialisable value (plus the
    :class:`OptimizationConfig` dataclass of booleans), so a request
    round-trips losslessly through :meth:`to_dict` / :meth:`from_dict`
    and the broker's HTTP endpoint. Validation happens at construction:
    unknown catalog names, misspelled governors or fault kinds, and
    inconsistent flag groups raise :class:`ValueError` with the repo's
    did-you-mean diagnostics.

    Attributes:
        kind: ``"training"`` (default), ``"inference"``, ``"fleet"``,
            or ``"serving"``.
        model / cluster / parallelism: catalog names + paper-style
            strategy string (``"TP2-PP16"``); required unless fleet.
            Serving requests take model + cluster but no parallelism
            (replica width comes from the serving parameters).
        optimizations: optimization toggles (training only; ignored for
            inference, which always runs the forward-only profile).
        microbatch_size / global_batch_size / iterations /
            warmup_iterations: run shape (paper defaults).
        governor / freq_setpoint / power_limit_w: :mod:`repro.powerctl`
            power management; capping flags imply the static governor.
        fault_node / fault_power_scale: whole-run node power fault.
        fault_time / fault_duration / fault_kind / fault_severity:
            transient timed fault on ``fault_node``
            (:mod:`repro.resilience` taxonomy).
        pipeline_schedule: pipeline schedule name from the
            :mod:`repro.schedules` registry (``"1f1b"`` default,
            ``"interleaved"``, ``"gpipe"``, ``"zb-h1"``, ``"seq1f1b"``,
            ...). Normalised at construction; unknown names raise with
            a did-you-mean hint, and schedule constraints (interleaved
            microbatch divisibility, sequence-split support) are
            checked here rather than deep inside the graph builder.
        seq_splits: sequence splits per microbatch, for schedules that
            support them; ``None`` uses the schedule's default.
        timeout_s: per-request wall-clock budget, honoured by the
            broker (the synchronous :func:`submit` ignores it).
        fleet: fleet-job parameters (keys from :data:`FLEET_KEYS`);
            only valid — and only meaningful — when ``kind="fleet"``.
        serving: serving-deployment parameters (the
            :meth:`repro.inferserve.ServingConfig.to_dict` schema, or a
            ``ServingConfig`` itself); only valid when
            ``kind="serving"``. Normalised to the canonical full dict
            at construction so equivalent spellings share one digest.
    """

    kind: str = "training"
    model: str = ""
    cluster: str = ""
    parallelism: str = ""
    optimizations: OptimizationConfig = field(
        default_factory=OptimizationConfig
    )
    microbatch_size: int = 1
    global_batch_size: int = DEFAULT_GLOBAL_BATCH
    iterations: int = 2
    warmup_iterations: int = 1
    governor: str = "none"
    freq_setpoint: float = 1.0
    power_limit_w: float | None = None
    fault_node: int | None = None
    fault_power_scale: float | None = None
    fault_time: float | None = None
    fault_duration: float | None = None
    fault_kind: str | None = None
    fault_severity: float | None = None
    timeout_s: float | None = None
    fleet: dict | None = None
    serving: Any = None
    pipeline_schedule: str = "1f1b"
    seq_splits: int | None = None

    # -- validation -----------------------------------------------------

    def __post_init__(self) -> None:
        kind = normalize_name(str(self.kind))
        kind = _KIND_ALIASES.get(kind, kind)
        if kind not in KINDS:
            raise ValueError(unknown_name_message("request kind", self.kind, KINDS))
        object.__setattr__(self, "kind", kind)
        if kind != "serving":
            _require(self.serving is None,
                     "serving parameters require kind='serving'")
        if kind in ("fleet", "serving"):
            _require(
                self.pipeline_schedule == "1f1b"
                and self.seq_splits is None,
                "pipeline_schedule/seq_splits apply to training and "
                "inference requests",
            )
        if kind == "fleet":
            _require(
                not (self.model or self.cluster or self.parallelism),
                "fleet requests are parameterised via fleet={...}; "
                "model/cluster/parallelism belong to training and "
                "inference requests",
            )
            self._validate_fleet()
        elif kind == "serving":
            _require(self.fleet is None,
                     "fleet parameters require kind='fleet'")
            self._validate_serving()
        else:
            _require(self.fleet is None,
                     "fleet parameters require kind='fleet'")
            self._validate_workload()
        self._validate_power()
        self._validate_faults()
        if self.timeout_s is not None:
            _require(self.timeout_s > 0,
                     f"timeout_s must be > 0, got {self.timeout_s:g}")

    def _validate_workload(self) -> None:
        _require(bool(self.model), f"{self.kind} requests require a model")
        _require(bool(self.cluster),
                 f"{self.kind} requests require a cluster")
        _require(bool(self.parallelism),
                 f"{self.kind} requests require a parallelism strategy")
        try:
            get_model(self.model)
        except KeyError as error:
            raise ValueError(error.args[0]) from None
        try:
            cluster = get_cluster(self.cluster)
        except KeyError as error:
            raise ValueError(error.args[0]) from None
        strategy = parse_strategy(self.parallelism)
        _require(isinstance(self.optimizations, OptimizationConfig),
                 "optimizations must be an OptimizationConfig")
        for name in ("microbatch_size", "global_batch_size", "iterations"):
            value = getattr(self, name)
            _require(isinstance(value, int) and value >= 1,
                     f"{name} must be an integer >= 1, got {value!r}")
        self._validate_schedule(strategy, cluster)
        _require(0 <= self.warmup_iterations < self.iterations,
                 f"warmup_iterations must be in [0, iterations), got "
                 f"{self.warmup_iterations!r}")
        if self.fault_node is not None:
            num_nodes = cluster.num_nodes
            if not 0 <= self.fault_node < num_nodes:
                raise ValueError(
                    "fault_node: "
                    + unknown_name_message(
                        "node", str(self.fault_node),
                        tuple(str(i) for i in range(num_nodes)),
                    )
                    + f" (cluster {self.cluster!r} has {num_nodes} nodes)"
                )

    def _validate_schedule(self, strategy, cluster) -> None:
        """Normalise the schedule name and check its constraints early.

        Errors are spelled in the request's own vocabulary
        (``--pipeline-schedule``, ``--global-batch-size``, ...) so a
        bad combination fails at construction with an actionable
        message instead of a builder-internal one at run time.
        """
        from repro.schedules import (
            canonical_schedule_name,
            get_schedule_class,
        )

        canonical = canonical_schedule_name(self.pipeline_schedule)
        object.__setattr__(self, "pipeline_schedule", canonical)
        schedule_cls = get_schedule_class(canonical)
        if self.seq_splits is not None:
            _require(
                isinstance(self.seq_splits, int) and self.seq_splits >= 1,
                f"seq_splits must be an integer >= 1, got "
                f"{self.seq_splits!r}",
            )
            if self.seq_splits > 1 and not schedule_cls.supports_seq_splits:
                raise ValueError(
                    f"the {canonical!r} schedule does not split "
                    f"sequences; --seq-splits {self.seq_splits} needs a "
                    "sequence-split schedule such as --pipeline-schedule "
                    "seq1f1b"
                )
        if canonical != "interleaved":
            return
        pp = strategy.pp
        _require(
            pp > 1,
            "--pipeline-schedule interleaved needs a pipelined strategy "
            f"(pp >= 2); {self.parallelism!r} has pp={pp}",
        )
        # Resolve dp the same way execution will, to check Megatron's
        # microbatch-divisibility constraint before any graph is built.
        try:
            filled = strategy.fill_dp(cluster.total_gpus)
        except ValueError:
            return  # the strategy itself is the problem; reported there
        shards = filled.dp * self.microbatch_size
        if self.global_batch_size % shards == 0:
            num_microbatches = self.global_batch_size // shards
            if num_microbatches % pp:
                raise ValueError(
                    "interleaved schedule requires num_microbatches to "
                    f"be a multiple of num_stages: --global-batch-size "
                    f"{self.global_batch_size} with --microbatch-size "
                    f"{self.microbatch_size} and dp={filled.dp} gives "
                    f"{num_microbatches} microbatches, not a multiple "
                    f"of pp={pp}; adjust --global-batch-size or pick "
                    "--pipeline-schedule 1f1b"
                )

    def _validate_serving(self) -> None:
        from repro.inferserve.config import ServingConfig

        _require(bool(self.model), "serving requests require a model")
        _require(bool(self.cluster),
                 "serving requests require a cluster")
        _require(not self.parallelism,
                 "serving requests take no parallelism strategy; "
                 "replica width is serving={'batcher': "
                 "{'gpus_per_replica': ...}}")
        try:
            get_model(self.model)
        except KeyError as error:
            raise ValueError(error.args[0]) from None
        try:
            get_cluster(self.cluster)
        except KeyError as error:
            raise ValueError(error.args[0]) from None
        _require(self.governor == "none" and self.power_limit_w is None,
                 "serving power management is freq_setpoint only; "
                 "governors and power caps apply to training and "
                 "inference requests")
        _require(self.fault_node is None and self.fault_time is None,
                 "fault injection applies to training and inference "
                 "requests")
        payload = self.serving
        if payload is None:
            payload = {}
        if isinstance(payload, ServingConfig):
            config = payload
        elif isinstance(payload, Mapping):
            try:
                config = ServingConfig.from_dict(payload)
            except (TypeError, ValueError) as error:
                raise ValueError(f"serving: {error}") from None
        else:
            raise ValueError(
                "serving parameters must be a mapping or a "
                "ServingConfig"
            )
        if self.freq_setpoint != 1.0:
            _require(
                config.freq_setpoint in (1.0, self.freq_setpoint),
                "freq_setpoint given twice (request field and "
                "serving['freq_setpoint']) with different values",
            )
            config = dataclasses.replace(
                config, freq_setpoint=self.freq_setpoint
            )
        object.__setattr__(self, "serving", config.to_dict())

    def _validate_fleet(self) -> None:
        if self.fleet is None:
            return
        _require(isinstance(self.fleet, dict),
                 "fleet parameters must be a mapping")
        for key in self.fleet:
            if key not in FLEET_KEYS:
                raise ValueError(
                    "fleet: "
                    + unknown_name_message("fleet key", key, FLEET_KEYS)
                )

    def _validate_power(self) -> None:
        governor = normalize_name(str(self.governor))
        if governor not in GOVERNORS:
            raise ValueError(
                unknown_name_message("governor", self.governor, GOVERNORS)
            )
        object.__setattr__(self, "governor", governor)
        _require(0.0 < self.freq_setpoint <= 1.0,
                 f"freq_setpoint must be in (0, 1], got "
                 f"{self.freq_setpoint:g}")
        if self.power_limit_w is not None:
            _require(self.power_limit_w > 0,
                     f"power_limit_w must be > 0, got "
                     f"{self.power_limit_w:g}")

    def _validate_faults(self) -> None:
        dependent = (
            ("fault_duration", self.fault_duration),
            ("fault_kind", self.fault_kind),
            ("fault_severity", self.fault_severity),
        )
        if self.fault_time is None:
            for name, value in dependent:
                _require(value is None,
                         f"{name} requires fault_time (when does the "
                         "fault start?)")
        else:
            _require(self.fault_node is not None,
                     "fault_time requires fault_node (which node is hit?)")
            _require(self.fault_time >= 0,
                     f"fault_time must be >= 0, got {self.fault_time:g}")
            if self.fault_duration is not None:
                _require(self.fault_duration > 0,
                         f"fault_duration must be > 0, got "
                         f"{self.fault_duration:g}")
            if self.fault_kind is not None:
                kind_name = normalize_name(self.fault_kind).replace("-", "_")
                try:
                    FaultKind(kind_name)
                except ValueError:
                    raise ValueError(
                        "fault_kind: "
                        + unknown_name_message(
                            "fault kind", self.fault_kind,
                            tuple(k.value for k in FaultKind),
                        )
                    ) from None
                object.__setattr__(self, "fault_kind", kind_name)
        if self.fault_power_scale is not None:
            _require(self.fault_node is not None,
                     "fault_power_scale requires fault_node")
            _require(0.0 < self.fault_power_scale <= 1.0,
                     f"fault_power_scale must be in (0, 1], got "
                     f"{self.fault_power_scale:g}")
        if self.fault_node is not None:
            _require(self.fault_node >= 0,
                     f"fault_node must be >= 0, got {self.fault_node}")

    # -- derived configuration ------------------------------------------

    @property
    def cacheable(self) -> bool:
        """Whether results land in the content-addressed store
        (training, inference, and serving runs; fleet outcomes do
        not)."""
        return self.kind in ("training", "inference", "serving")

    @property
    def label(self) -> str:
        """Compact human-readable identity for logs and progress."""
        if self.kind == "fleet":
            return f"fleet|{(self.fleet or {}).get('policy', 'packed')}"
        if self.kind == "serving":
            params = self.serving or {}
            batcher = params.get("batcher") or {}
            return (
                f"serving|{self.model}|{self.cluster}"
                f"|r{params.get('replicas', 2)}"
                f"x{batcher.get('gpus_per_replica', 4)}"
                f"|{batcher.get('scheduler', 'continuous')}"
            )
        label = (
            f"{self.kind}|{self.model}|{self.cluster}|{self.parallelism}"
            f"|mb{self.microbatch_size}|{self.optimizations.label}"
        )
        if self.pipeline_schedule != "1f1b":
            label += f"|{self.pipeline_schedule}"
        return label

    def settings(self) -> SimSettings:
        """The :class:`SimSettings` this request's fault/governor
        fields describe (default settings when none are set)."""
        kwargs: dict = {}
        if self.fault_time is not None:
            event_kwargs: dict = {}
            if self.fault_severity is not None:
                event_kwargs["severity"] = self.fault_severity
            event = FaultEvent(
                kind=FaultKind(self.fault_kind or "power_sag"),
                node=self.fault_node,
                time_s=self.fault_time,
                duration_s=(
                    self.fault_duration
                    if self.fault_duration is not None
                    else _DEFAULT_FAULT_DURATION_S
                ),
                **event_kwargs,
            )
            kwargs["fault_timeline"] = FaultTimeline(events=(event,))
        elif self.fault_node is not None:
            scale = (
                self.fault_power_scale
                if self.fault_power_scale is not None
                else _DEFAULT_FAULT_POWER_SCALE
            )
            kwargs["faults"] = FaultSpec(
                node_power_cap_scale={self.fault_node: scale}
            )
        control = self.power_control()
        if control.active:
            kwargs["power_control"] = control
        return SimSettings(**kwargs)

    def power_control(self) -> PowerControlConfig:
        """The governor config; capping flags imply ``static``."""
        governor = self.governor
        if governor == "none" and (
            self.power_limit_w is not None or self.freq_setpoint < 1.0
        ):
            governor = "static"
        if governor == "none":
            return NO_POWER_CONTROL
        return PowerControlConfig(
            governor=governor,
            freq_setpoint=self.freq_setpoint,
            power_limit_w=self.power_limit_w,
        )

    def to_run_payload(self) -> tuple[str, dict]:
        """``(kind, kwargs)`` for :func:`repro.core.sweep.cached_run`.

        Only non-default knobs are materialised into kwargs, so a
        request and a hand-written ``cached_run`` call of the same
        shape share one cache address.
        """
        _require(self.cacheable,
                 f"{self.kind} requests have no run payload")
        if self.kind == "serving":
            from repro.inferserve.config import ServingConfig

            return (
                "serve",
                dict(
                    model=self.model,
                    cluster=self.cluster,
                    config=ServingConfig.from_dict(self.serving or {}),
                ),
            )
        kwargs: dict = dict(
            model=self.model,
            cluster=self.cluster,
            parallelism=self.parallelism,
            microbatch_size=self.microbatch_size,
            global_batch_size=self.global_batch_size,
            iterations=self.iterations,
        )
        if self.kind == "training":
            kwargs["optimizations"] = self.optimizations
        if self.warmup_iterations != 1:
            kwargs["warmup_iterations"] = self.warmup_iterations
        if self.pipeline_schedule != "1f1b":
            kwargs["pipeline_schedule"] = self.pipeline_schedule
        if self.seq_splits is not None:
            kwargs["seq_splits"] = self.seq_splits
        settings = self.settings()
        if settings != SimSettings():
            kwargs["settings"] = settings
        return ("train" if self.kind == "training" else "infer", kwargs)

    def to_fleet_config(self):
        """Build the :class:`repro.datacenter.FleetConfig` a fleet
        request describes (CLI-equivalent defaults)."""
        import math

        from repro.datacenter import (
            ArrivalConfig,
            FleetConfig,
            PowerCapConfig,
        )

        _require(self.kind == "fleet",
                 f"to_fleet_config() on a {self.kind} request")
        params = dict(self.fleet or {})
        cap_kw = params.get("power_cap_kw")
        control = NO_POWER_CONTROL
        if params.get("gpu_power_limit_w") is not None:
            control = PowerControlConfig(
                governor="static",
                power_limit_w=params["gpu_power_limit_w"],
            )
        elif params.get("gpu_clock_limit") is not None:
            control = PowerControlConfig(
                governor="static",
                freq_setpoint=params["gpu_clock_limit"],
            )
        seed = params.get("seed", 0)
        return FleetConfig(
            clusters=tuple(params.get("clusters") or ("h200x32",)),
            policy=params.get("policy", "packed"),
            seed=seed,
            power_cap=PowerCapConfig(
                facility_cap_w=(
                    math.inf if cap_kw is None else cap_kw * 1e3
                ),
                mode=params.get("cap_mode", "defer"),
            ),
            arrivals=ArrivalConfig(
                num_jobs=params.get("num_jobs", 12),
                mean_interarrival_s=params.get("mean_interarrival_s", 20.0),
                seed=seed,
            ),
            node_mtbf_s=params.get("node_mtbf_s", 0.0),
            repair_time_s=params.get("repair_time_s", 180.0),
            recovery_policy=params.get("recovery_policy", "failstop"),
            restart_delay_s=params.get("restart_delay_s", 0.0),
            spare_swapin_s=params.get("spare_swapin_s", 0.0),
            reconfig_s=params.get("reconfig_s", 0.0),
            power_control=control,
        )

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> dict:
        """Plain JSON-serialisable dict; inverse of :meth:`from_dict`."""
        data: dict = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "optimizations":
                value = dataclasses.asdict(value)
            elif spec.name in ("fleet", "serving") and value is not None:
                value = dict(value)
            data[spec.name] = value
        return data

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys; digest input)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimRequest":
        """Rebuild a request, rejecting unknown keys with did-you-mean."""
        known = {spec.name for spec in fields(cls)}
        kwargs: dict = {}
        for key, value in dict(data).items():
            if key not in known:
                raise ValueError(
                    unknown_name_message(
                        "request field", key, sorted(known)
                    )
                )
            kwargs[key] = value
        opts = kwargs.get("optimizations")
        if isinstance(opts, Mapping):
            opt_fields = {spec.name for spec in fields(OptimizationConfig)}
            for key in opts:
                if key not in opt_fields:
                    raise ValueError(
                        "optimizations: "
                        + unknown_name_message(
                            "optimization field", key, sorted(opt_fields)
                        )
                    )
            kwargs["optimizations"] = OptimizationConfig(**dict(opts))
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SimRequest":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"invalid request JSON: {error}") from None
        if not isinstance(data, dict):
            raise ValueError("request JSON must be an object")
        return cls.from_dict(data)

    def digest(self) -> str:
        """Stable identity hash; for cacheable kinds this is exactly
        the result-store address :func:`repro.core.sweep.cached_run`
        writes to, so a digest match *is* a cache hit."""
        if self.cacheable:
            from repro.core.sweep import cache_key, key_digest

            return key_digest(cache_key(*self.to_run_payload()))
        return hashlib.sha256(self.to_json().encode()).hexdigest()


def submit(request: SimRequest | OptimizeRequest, *, cache: bool = True):
    """Execute one request synchronously and return its result.

    Training/inference requests return a :class:`RunResult`; serving
    requests a :class:`repro.inferserve.ServingOutcome`; fleet
    requests a :class:`repro.datacenter.FleetOutcome`; optimize
    requests an :class:`OptimizeResult`. With ``cache=True`` (default)
    runs go through the memo + persistent store; ``cache=False`` forces
    a fresh simulation (results are deterministic either way).
    """
    if isinstance(request, OptimizeRequest):
        from repro.optimize.search import run_optimize

        return run_optimize(request, cached=cache)
    if not isinstance(request, SimRequest):
        raise TypeError(
            f"submit() takes a SimRequest or OptimizeRequest, "
            f"got {type(request).__name__}"
        )
    if request.kind == "fleet":
        from repro.datacenter import simulate_fleet

        return simulate_fleet(request.to_fleet_config())
    kind, kwargs = request.to_run_payload()
    if cache:
        from repro.core.sweep import cached_run

        return cached_run(kind, **kwargs)
    if kind == "serve":
        from repro.inferserve.engine import execute_serving

        return execute_serving(**kwargs)
    runner = execute_training if kind == "train" else execute_inference
    return runner(**kwargs)


class BatchResult(list):
    """:func:`submit_many`'s return value: results in request order.

    A plain list (fully backwards compatible) carrying one extra
    attribute, :attr:`report` — the
    :class:`repro.core.parallel.ExecutionReport` describing how the
    batch actually executed (worker crashes survived, payloads that
    fell back in-process).
    """

    def __init__(self, items, report) -> None:
        super().__init__(items)
        self.report = report


def submit_many(
    requests: Iterable[SimRequest | OptimizeRequest],
    *,
    jobs: int = 1,
    report=None,
) -> BatchResult:
    """Execute a batch of requests; results come back in input order.

    Duplicate requests (same :meth:`SimRequest.digest`) simulate once.
    With ``jobs == 1`` cacheable requests stay in-process and batch
    through :func:`repro.engine.batched.evaluate_grid` (shared-graph
    grids anchor once and replay). With ``jobs > 1`` (values below 1
    mean auto) the whole batch shares one persistent
    :class:`repro.serve.workers.WorkerPool` — workers are spawned once
    for the batch, steal work from each other, and crashed payloads are
    retried then completed in-process, so no request is dropped. Fleet
    requests run in-process either way.

    Returns a :class:`BatchResult` (a list) whose ``report`` attribute
    records any crash recovery; pass your own ``report`` to accumulate
    across batches.
    """
    from repro.core.parallel import ExecutionReport, map_runs, resolve_jobs
    from repro.core.sweep import seed_memo

    requests = list(requests)
    for request in requests:
        if not isinstance(request, (SimRequest, OptimizeRequest)):
            raise TypeError(
                "submit_many() takes SimRequests/OptimizeRequests, got "
                f"{type(request).__name__}"
            )
    if report is None:
        report = ExecutionReport()
    jobs = 1 if jobs == 1 else resolve_jobs(jobs)
    distinct: dict[str, SimRequest] = {}
    for request in requests:
        distinct.setdefault(request.digest(), request)
    pooled = [
        (digest, request)
        for digest, request in distinct.items()
        if request.cacheable
    ]
    payloads = [request.to_run_payload() for _, request in pooled]
    if jobs > 1 and len(payloads) > 1:
        from repro.serve.workers import WorkerPool

        with WorkerPool(min(jobs, len(payloads))) as pool:
            outputs = pool.map(payloads, report)
    else:
        outputs = map_runs(payloads, 1, report)
    results: dict[str, Any] = {}
    for (digest, _), payload, output in zip(pooled, payloads, outputs):
        seed_memo(payload[0], payload[1], output)
        results[digest] = output
    for digest, request in distinct.items():
        if not request.cacheable:
            results[digest] = submit(request)
    return BatchResult(
        [results[request.digest()] for request in requests], report
    )


def legacy_run(kind: str, args: tuple, kwargs: dict, *, cached: bool):
    """Execution path behind the four deprecated entrypoints.

    Behaviour (argument handling, cache addressing, return types) is
    bit-identical to the historical functions: cached shims keep their
    kwargs verbatim as the cache key; uncached shims accept the full
    positional/object-typed signatures of ``execute_*``.
    """
    if cached:
        from repro.core.sweep import cached_run

        return cached_run(kind, **kwargs)
    runner = execute_training if kind == "train" else execute_inference
    return runner(*args, **kwargs)


_LEGACY_REPLACEMENTS = {
    "run_training": "repro.api.submit(SimRequest(kind='training', ...))",
    "run_inference": "repro.api.submit(SimRequest(kind='inference', ...))",
    "cached_run_training": "repro.api.submit (cached by default)",
    "cached_run_inference": "repro.api.submit (cached by default)",
    "inference.serving.ROUTERS": "repro.inferserve.ROUTERS",
    "inference.serving.ServingConfig":
        "repro.inferserve.StaticRouterConfig",
    "inference.serving.ServingOutcome":
        "repro.inferserve.RouterOutcome",
    "inference.serving.compare_routers":
        "repro.inferserve.compare_routers",
    "inference.serving.simulate_serving":
        "repro.inferserve.simulate_static_routing",
    "powerctl.search_energy_optimal":
        "repro.optimize.optimize_setpoint (or repro.api.submit("
        "OptimizeRequest(...)) for the joint search)",
    "powerctl.sweep_setpoints": "repro.optimize.evaluate_setpoints",
    "inferserve.search_serving_setpoint":
        "repro.optimize.optimize_serving_setpoint (or repro.api.submit("
        "OptimizeRequest(kind='serving', ...)) for the joint search)",
}

_warned: set[str] = set()


def warn_deprecated(name: str) -> None:
    """Emit the one-time deprecation warning for a legacy entrypoint."""
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"repro.{name}() is deprecated; use "
        f"{_LEGACY_REPLACEMENTS.get(name, 'repro.api.submit')} "
        "(see docs/api.md)",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_deprecation_warnings() -> None:
    """Re-arm the one-time warnings (test isolation hook)."""
    _warned.clear()
