"""Enumeration of valid parallelism configurations for a model + cluster.

Implements the paper's methodology (Section 3.1): find the minimal total
model parallelism (TP x PP x EP) that fits GPU memory, then explore valid
configurations, limiting tensor parallelism to within-node execution.
Expert parallelism is carved out of the data-parallel dimension
(Megatron semantics), so EP widths must divide the DP width left over by
the TP x PP grid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cluster import ClusterSpec
from repro.models.config import ModelConfig
from repro.models.memory import fits_in_memory
from repro.parallelism.strategy import ParallelismConfig


@dataclass(frozen=True)
class ConfigSearchSpace:
    """Bounds for the configuration search.

    Attributes:
        max_pp: cap on pipeline depth (layers per stage must stay >= 1).
        microbatch_size: microbatch used for the memory-fit check.
        allow_fsdp: include TP+FSDP 2-D configurations.
        require_tp_intra_node: reject TP groups spanning nodes (the paper
            always restricts TP to a node).
        sequence_parallel: assume Megatron sequence parallelism for the
            activation-memory check (the NeMo default).
    """

    max_pp: int = 32
    microbatch_size: int = 1
    allow_fsdp: bool = True
    require_tp_intra_node: bool = True
    sequence_parallel: bool = True


def _powers_of_two_up_to(limit: int) -> list[int]:
    values = []
    width = 1
    while width <= limit:
        values.append(width)
        width *= 2
    return values


def raw_configs(
    model: ModelConfig,
    cluster: ClusterSpec,
    space: ConfigSearchSpace | None = None,
) -> list[ParallelismConfig]:
    """Every tiling-valid strategy, with **no** memory-fit filtering.

    The raw plan grid the joint optimizer (:mod:`repro.optimize.space`)
    prunes with its schedule-aware analytic memory model: same axes and
    divisibility rules as :func:`valid_configs` (powers of two, TP
    within a node, EP dividing experts and DP, DP filled over leftover
    GPUs) but every candidate that tiles the cluster is returned, fit
    or not — pruning stays observable instead of happening here.
    """
    space = space or ConfigSearchSpace()
    total = cluster.total_gpus
    per_node = cluster.node.gpus_per_node
    tp_limit = per_node if space.require_tp_intra_node else total
    experts = model.moe.num_experts if model.moe else 1

    found: list[ParallelismConfig] = []
    for tp in _powers_of_two_up_to(min(tp_limit, total)):
        for pp in _powers_of_two_up_to(min(space.max_pp, total)):
            if pp > model.num_layers:
                continue
            grid = tp * pp
            if grid > total or total % grid:
                continue
            dp = total // grid
            for ep in _powers_of_two_up_to(experts):
                if model.moe is None and ep > 1:
                    continue
                if dp % ep:
                    continue
                found.append(ParallelismConfig(tp=tp, pp=pp, dp=dp, ep=ep))
    if space.allow_fsdp and model.moe is None:
        for tp in _powers_of_two_up_to(per_node):
            if total % tp or total // tp < 2:
                continue
            found.append(ParallelismConfig(
                tp=tp, pp=1, dp=total // tp, use_fsdp=True
            ))
    return found


def valid_configs(
    model: ModelConfig,
    cluster: ClusterSpec,
    space: ConfigSearchSpace | None = None,
    recompute: bool = False,
    zero1: bool = True,
) -> list[ParallelismConfig]:
    """All strategies that fit memory and cover the cluster exactly.

    Returned configs have DP filled across leftover GPUs. MoE models get
    EP widths dividing both the expert count and the DP width; dense
    models have ``ep == 1``.
    """
    space = space or ConfigSearchSpace()
    total = cluster.total_gpus
    per_node = cluster.node.gpus_per_node
    tp_limit = per_node if space.require_tp_intra_node else total
    experts = model.moe.num_experts if model.moe else 1

    found: list[ParallelismConfig] = []
    for tp in _powers_of_two_up_to(min(tp_limit, total)):
        for pp in _powers_of_two_up_to(min(space.max_pp, total)):
            if pp > model.num_layers:
                continue
            grid = tp * pp
            if grid > total or total % grid:
                continue
            dp = total // grid
            for ep in _powers_of_two_up_to(experts):
                if model.moe is None and ep > 1:
                    continue
                if dp % ep:
                    continue
                candidate = ParallelismConfig(tp=tp, pp=pp, dp=dp, ep=ep)
                if _fits(model, cluster, candidate, space, recompute, zero1):
                    found.append(candidate)
    if space.allow_fsdp and model.moe is None:
        found.extend(_fsdp_configs(model, cluster, space, recompute))
    return found


def _fsdp_configs(model, cluster, space, recompute) -> list[ParallelismConfig]:
    total = cluster.total_gpus
    per_node = cluster.node.gpus_per_node
    configs = []
    for tp in _powers_of_two_up_to(per_node):
        if total % tp or total // tp < 2:
            continue
        candidate = ParallelismConfig(
            tp=tp, pp=1, dp=total // tp, use_fsdp=True
        )
        if _fits(model, cluster, candidate, space, recompute, zero1=False):
            configs.append(candidate)
    return configs


def _fits(model, cluster, config, space, recompute, zero1) -> bool:
    return fits_in_memory(
        model,
        cluster.node.gpu.memory_bytes,
        microbatch_size=space.microbatch_size,
        tp=config.tp,
        pp=config.pp,
        dp=config.dp,
        ep=config.ep,
        fsdp=config.dp if config.use_fsdp else 1,
        zero1=zero1 and not config.use_fsdp,
        recompute=recompute,
        sequence_parallel=space.sequence_parallel,
    )


def minimal_model_parallel(
    model: ModelConfig,
    cluster: ClusterSpec,
    space: ConfigSearchSpace | None = None,
    recompute: bool = False,
) -> int:
    """Smallest TP x PP x EP product that fits GPU memory.

    Raises:
        ValueError: if nothing fits even at the largest split.
    """
    configs = valid_configs(model, cluster, space, recompute=recompute)
    plain = [c for c in configs if not c.use_fsdp]
    if not plain:
        raise ValueError(
            f"{model.name} does not fit on {cluster.name} at any "
            "searched parallelism"
        )
    return min(c.model_parallel_size for c in plain)
