"""Distributed training strategy configuration.

The paper's notation (Section 3.1): ``EP<e>-TP<t>-PP<p>`` names the
model-parallel split; any GPUs left over take data parallelism. Following
Megatron/NeMo semantics, expert parallelism is carved out of the
data-parallel dimension: EP ranks process distinct batch shards for the
attention blocks (like DP) while exchanging MoE tokens via AllToAll, so
the world size is ``tp * pp * dp`` with ``ep`` dividing ``dp``.
``TP8-FSDP4`` means 8-way tensor parallelism with a 4-wide fully-sharded
data-parallel dimension in place of plain DP.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

from repro.suggest import normalize_name


@dataclass(frozen=True)
class ParallelismConfig:
    """One point in the parallelism design space.

    Attributes:
        tp: tensor-parallel width (splits matmuls; AllReduce per layer).
        pp: pipeline-parallel depth (splits layers; P2P SendRecv).
        dp: total data-parallel width (replicas of the TP x PP grid),
            also the FSDP width when ``use_fsdp`` is set. Expert
            parallelism is carved out of this dimension (Megatron
            semantics), so ``ep`` must divide ``dp``.
        ep: expert-parallel width (splits MoE experts; AllToAll). EP
            ranks run attention data-parallel but exchange MoE tokens.
        use_fsdp: shard parameters/optimizer across the ``dp`` dimension
            (per-layer AllGather + ReduceScatter instead of gradient
            AllReduce).
        interleaved: use the interleaved (virtual-stage) pipeline schedule
            instead of plain 1F1B.
        pipeline_schedule: any schedule registered in
            :mod:`repro.schedules` — ``"1f1b"`` (Megatron default),
            ``"interleaved"``, ``"gpipe"``, ``"zb-h1"`` (zero-bubble),
            ``"seq1f1b"`` (sequence-split), ... Names are normalised
            (``ZB_H1`` -> ``zb-h1``); unknown names raise with a
            did-you-mean hint.

    A freshly parsed strategy (e.g. ``"EP8-TP1-PP4"``) may have
    ``dp < ep``; :meth:`fill_dp` completes it against a cluster size.
    :attr:`is_complete` tells whether the config is runnable as-is.
    """

    tp: int = 1
    pp: int = 1
    dp: int = 1
    ep: int = 1
    use_fsdp: bool = False
    interleaved: bool = False
    pipeline_schedule: str = "1f1b"

    def __post_init__(self) -> None:
        # Registry lookup (not a hardcoded whitelist): any schedule in
        # repro.schedules is a valid pipeline_schedule, and unknown
        # names get a did-you-mean error. Deferred import: the engine
        # imports this module at startup, repro.schedules does not.
        from repro.schedules import canonical_schedule_name

        object.__setattr__(
            self,
            "pipeline_schedule",
            canonical_schedule_name(self.pipeline_schedule),
        )
        if self.pipeline_schedule == "gpipe" and self.interleaved:
            raise ValueError("GPipe cannot be interleaved")
        if self.interleaved and self.pipeline_schedule not in (
            "1f1b", "interleaved"
        ):
            raise ValueError(
                f"the {self.pipeline_schedule!r} schedule does not "
                "combine with interleaved virtual stages"
            )
        for label, width in (
            ("tp", self.tp),
            ("pp", self.pp),
            ("dp", self.dp),
            ("ep", self.ep),
        ):
            if width < 1:
                raise ValueError(f"{label} must be >= 1, got {width}")
        if self.use_fsdp and self.dp < 2:
            raise ValueError("FSDP requires dp >= 2")
        if self.use_fsdp and self.ep > 1:
            raise ValueError("FSDP configs do not combine with EP here")

    @property
    def world_size(self) -> int:
        """Total GPUs the strategy occupies (EP lives inside DP)."""
        return self.tp * self.pp * self.dp

    @property
    def is_complete(self) -> bool:
        """Whether EP tiles the DP dimension (runnable as-is)."""
        return self.dp % self.ep == 0

    @property
    def dp_outer(self) -> int:
        """Data-parallel replicas per expert-parallel group (dp / ep)."""
        if not self.is_complete:
            raise ValueError(
                f"{self.name}: dp={self.dp} not a multiple of ep={self.ep};"
                " call fill_dp against a cluster first"
            )
        return self.dp // self.ep

    @property
    def model_parallel_size(self) -> int:
        """TP x PP x EP, the paper's 'total model parallelism'."""
        return self.tp * self.pp * self.ep

    @property
    def name(self) -> str:
        """Paper-style name, e.g. ``"EP8-TP1-PP4"`` or ``"TP8-FSDP4"``."""
        parts: list[str] = []
        if self.ep > 1:
            parts.append(f"EP{self.ep}")
        parts.append(f"TP{self.tp}")
        if self.use_fsdp:
            parts.append(f"FSDP{self.dp}")
        if self.pp > 1 or not parts:
            parts.append(f"PP{self.pp}")
        return "-".join(parts)

    def with_dp(self, dp: int) -> "ParallelismConfig":
        """A copy with the data-parallel width replaced."""
        return replace(self, dp=dp)

    def fill_dp(self, total_gpus: int) -> "ParallelismConfig":
        """Apply data parallelism across leftover GPUs (paper Section 3.1).

        Raises:
            ValueError: if ``total_gpus`` does not tile into TP x PP, or
                the resulting DP width is not a multiple of EP.
        """
        grid = self.tp * self.pp
        if self.use_fsdp:
            if total_gpus != grid * self.dp:
                raise ValueError(
                    "FSDP configs must already cover the cluster"
                )
            return self
        if total_gpus % grid:
            raise ValueError(
                f"{total_gpus} GPUs not divisible by the TPxPP grid "
                f"({grid}) of {self.name}"
            )
        dp = total_gpus // grid
        if dp % self.ep:
            raise ValueError(
                f"{self.name}: DP width {dp} on {total_gpus} GPUs is not "
                f"a multiple of ep={self.ep}"
            )
        return replace(self, dp=dp)


_NAME_PART = re.compile(r"(EP|TP|PP|FSDP|DP)(\d+)$", re.IGNORECASE)

_EXPECTED_FORMAT = (
    "expected '-'-separated EP/TP/PP/DP/FSDP widths, "
    "e.g. 'TP2-PP16', 'EP8-TP1-PP4', or 'tp2-pp2-dp8'"
)


def _strategy_error(name: str, part: str) -> str:
    message = (
        f"cannot parse strategy component {part!r} in {name!r}; "
        f"{_EXPECTED_FORMAT}"
    )
    normalized = normalize_name(name)
    if normalized != name.strip().lower():
        try:
            parse_strategy(normalized)
        except ValueError:
            pass
        else:
            message += f"; did you mean {normalized!r}?"
    return message


def parse_strategy(name: str) -> ParallelismConfig:
    """Parse a paper-style strategy name like ``"EP8-TP1-PP4"``.

    DP, when present, is explicit (``"TP2-PP4-DP4"``); otherwise it
    defaults to 1 and callers use :meth:`ParallelismConfig.fill_dp`.
    """
    widths = {"ep": 1, "tp": 1, "pp": 1, "dp": 1}
    use_fsdp = False
    for part in name.strip().split("-"):
        match = _NAME_PART.match(part.strip())
        if not match:
            raise ValueError(_strategy_error(name, part))
        key, width = match.group(1).lower(), int(match.group(2))
        if key == "fsdp":
            use_fsdp = True
            key = "dp"
        widths[key] = width
    return ParallelismConfig(
        tp=widths["tp"],
        pp=widths["pp"],
        dp=widths["dp"],
        ep=widths["ep"],
        use_fsdp=use_fsdp,
    )


@dataclass(frozen=True)
class OptimizationConfig:
    """Training-time optimization toggles studied in Section 4.3.

    Attributes:
        activation_recompute: recompute activations in backward ("act").
        cc_overlap: overlap communication with computation ("cc").
        distributed_optimizer: ZeRO-1 optimizer-state sharding across DP
            ranks (the paper enables it for all dense models).
        lora: parameter-efficient LoRA finetuning instead of full training.
        lora_rank: adapter rank when ``lora`` is set.
        sequence_parallel: Megatron sequence parallelism: shard the
            non-tensor-parallel activation regions along the sequence.
            The TP communication volume is unchanged (each AllReduce
            becomes a ReduceScatter + AllGather pair of equal total
            bytes; the paper's breakdowns keep labelling it AllReduce),
            but activation memory divides fully by ``tp`` without
            recomputation's compute cost (Korthikanti et al., the
            paper's reference [6]). **Defaults to True**, matching the
            NeMo/Megatron stack the paper runs; switching it off is the
            ablation.
    """

    activation_recompute: bool = False
    cc_overlap: bool = False
    distributed_optimizer: bool = True
    lora: bool = False
    lora_rank: int = 16
    sequence_parallel: bool = True

    @property
    def label(self) -> str:
        """Paper-style label: "Base", "act", "cc", "act+cc", "lora"."""
        parts = []
        if self.activation_recompute:
            parts.append("act")
        if self.cc_overlap:
            parts.append("cc")
        if not self.sequence_parallel:
            parts.append("nosp")
        if self.lora:
            parts.append("lora")
        return "+".join(parts) if parts else "Base"


BASE = OptimizationConfig()
ACT = OptimizationConfig(activation_recompute=True)
CC = OptimizationConfig(cc_overlap=True)
ACT_CC = OptimizationConfig(activation_recompute=True, cc_overlap=True)
