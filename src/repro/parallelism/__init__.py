"""Parallelism strategies, rank mapping, and configuration search."""

from repro.parallelism.enumerate import (
    ConfigSearchSpace,
    minimal_model_parallel,
    valid_configs,
)
from repro.parallelism.mapping import (
    DeviceMesh,
    RankCoords,
    all_dp_groups,
    all_ep_groups,
    all_pp_groups,
    all_tp_groups,
    coords_of,
    dp_group,
    ep_group,
    pp_group,
    rank_of,
    tp_group,
)
from repro.parallelism.strategy import (
    ACT,
    ACT_CC,
    BASE,
    CC,
    OptimizationConfig,
    ParallelismConfig,
    parse_strategy,
)

__all__ = [
    "ACT",
    "ACT_CC",
    "BASE",
    "CC",
    "ConfigSearchSpace",
    "DeviceMesh",
    "OptimizationConfig",
    "ParallelismConfig",
    "RankCoords",
    "all_dp_groups",
    "all_ep_groups",
    "all_pp_groups",
    "all_tp_groups",
    "coords_of",
    "dp_group",
    "ep_group",
    "minimal_model_parallel",
    "parse_strategy",
    "pp_group",
    "rank_of",
    "tp_group",
    "valid_configs",
]
