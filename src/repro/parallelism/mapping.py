"""Rank mapping and communication groups in Megatron order.

NeMo and Megatron-LM assign ranks in the order TP -> EP -> DP -> PP
(paper Section 3.1): TP varies fastest across consecutive ranks, PP
slowest. Expert parallelism lives *inside* the data-parallel dimension:
the full DP width ``dp`` factors into ``ep`` (inner, consecutive ranks)
times ``dp_outer = dp / ep`` (outer). This ordering keeps TP groups — and,
when TP is narrow, EP groups — inside a node, and it is the root cause of
several communication patterns the paper observes.

A :class:`DeviceMesh` binds a strategy to a cluster, optionally through a
placement permutation (logical rank -> physical GPU), which is how the
Section 6 thermal-aware placement is expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cluster import ClusterSpec
from repro.parallelism.strategy import ParallelismConfig


@dataclass(frozen=True)
class RankCoords:
    """Position of one rank in the parallelism grid.

    Attributes:
        tp: tensor-parallel index, in ``[0, tp)``.
        ep: expert-parallel index, in ``[0, ep)``.
        dp: *outer* data-parallel index, in ``[0, dp / ep)``.
        pp: pipeline stage, in ``[0, pp)``.
    """

    tp: int
    ep: int
    dp: int
    pp: int


def _check_complete(config: ParallelismConfig) -> None:
    if not config.is_complete:
        raise ValueError(
            f"{config.name}: ep={config.ep} does not divide dp={config.dp}"
        )


def coords_of(rank: int, config: ParallelismConfig) -> RankCoords:
    """Grid coordinates of a global rank under Megatron ordering."""
    _check_complete(config)
    if not 0 <= rank < config.world_size:
        raise ValueError(f"rank {rank} out of range for {config.world_size}")
    tp_idx = rank % config.tp
    rest = rank // config.tp
    ep_idx = rest % config.ep
    rest //= config.ep
    dp_idx = rest % config.dp_outer
    pp_idx = rest // config.dp_outer
    return RankCoords(tp=tp_idx, ep=ep_idx, dp=dp_idx, pp=pp_idx)


def rank_of(coords: RankCoords, config: ParallelismConfig) -> int:
    """Inverse of :func:`coords_of`."""
    _check_complete(config)
    for label, idx, width in (
        ("tp", coords.tp, config.tp),
        ("ep", coords.ep, config.ep),
        ("dp", coords.dp, config.dp_outer),
        ("pp", coords.pp, config.pp),
    ):
        if not 0 <= idx < width:
            raise ValueError(f"{label} index {idx} out of range [0, {width})")
    return (
        ((coords.pp * config.dp_outer + coords.dp) * config.ep + coords.ep)
        * config.tp
        + coords.tp
    )


def replica_index(coords: RankCoords, config: ParallelismConfig) -> int:
    """Full data-parallel replica index (batch shard) of a rank.

    Every (ep, dp_outer) pair is one replica for batch-sharding purposes;
    there are ``dp`` replicas in total.
    """
    return coords.dp * config.ep + coords.ep


def tp_group(rank: int, config: ParallelismConfig) -> list[int]:
    """Ranks sharing this rank's tensor-parallel AllReduce group."""
    base = coords_of(rank, config)
    return [
        rank_of(RankCoords(t, base.ep, base.dp, base.pp), config)
        for t in range(config.tp)
    ]


def ep_group(rank: int, config: ParallelismConfig) -> list[int]:
    """Ranks sharing this rank's expert-parallel AllToAll group."""
    base = coords_of(rank, config)
    return [
        rank_of(RankCoords(base.tp, e, base.dp, base.pp), config)
        for e in range(config.ep)
    ]


def dp_group(rank: int, config: ParallelismConfig) -> list[int]:
    """Full data-parallel group (non-expert gradient synchronisation).

    Spans both the EP and outer-DP dimensions: attention/embedding
    parameters are replicated across all of them.
    """
    base = coords_of(rank, config)
    return [
        rank_of(RankCoords(base.tp, e, d, base.pp), config)
        for d in range(config.dp_outer)
        for e in range(config.ep)
    ]


def expert_dp_group(rank: int, config: ParallelismConfig) -> list[int]:
    """Outer-DP group for expert-parameter gradient synchronisation.

    Expert weights are sharded across EP, so their gradients reduce only
    across the outer data-parallel replicas.
    """
    base = coords_of(rank, config)
    return [
        rank_of(RankCoords(base.tp, base.ep, d, base.pp), config)
        for d in range(config.dp_outer)
    ]


def pp_group(rank: int, config: ParallelismConfig) -> list[int]:
    """Ranks forming this rank's pipeline, ordered by stage."""
    base = coords_of(rank, config)
    return [
        rank_of(RankCoords(base.tp, base.ep, base.dp, p), config)
        for p in range(config.pp)
    ]


@dataclass(frozen=True)
class DeviceMesh:
    """A strategy bound to a cluster through a placement permutation.

    Attributes:
        cluster: physical cluster.
        config: parallelism strategy; ``config.world_size`` must equal
            ``cluster.total_gpus`` and EP must tile DP.
        placement: ``placement[logical_rank] -> physical gpu id``;
            defaults to the identity (consecutive-ID placement, the
            baseline the paper's Section 6 improves on).
    """

    cluster: ClusterSpec
    config: ParallelismConfig
    placement: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        _check_complete(self.config)
        if self.config.world_size != self.cluster.total_gpus:
            raise ValueError(
                f"strategy {self.config.name} needs {self.config.world_size} "
                f"GPUs but cluster {self.cluster.name} has "
                f"{self.cluster.total_gpus}"
            )
        if self.placement:
            if sorted(self.placement) != list(range(self.cluster.total_gpus)):
                raise ValueError("placement must be a permutation of GPUs")
        else:
            object.__setattr__(
                self, "placement", tuple(range(self.cluster.total_gpus))
            )

    def gpu_of(self, rank: int) -> int:
        """Physical GPU hosting a logical rank."""
        return self.placement[rank]

    def gpus_of(self, ranks: list[int]) -> list[int]:
        """Physical GPUs hosting the given logical ranks, in order."""
        return [self.placement[r] for r in ranks]

    def spans_nodes(self, ranks: list[int]) -> bool:
        """Whether a logical group crosses node boundaries physically."""
        nodes = {self.cluster.node_of(self.placement[r]) for r in ranks}
        return len(nodes) > 1

    def with_placement(self, placement: list[int]) -> "DeviceMesh":
        """A copy with a different logical->physical permutation."""
        return DeviceMesh(
            cluster=self.cluster,
            config=self.config,
            placement=tuple(placement),
        )


def all_tp_groups(config: ParallelismConfig) -> list[list[int]]:
    """Every distinct TP group, each a list of global ranks."""
    return _all_groups(config, tp_group)


def all_ep_groups(config: ParallelismConfig) -> list[list[int]]:
    """Every distinct EP group."""
    return _all_groups(config, ep_group)


def all_dp_groups(config: ParallelismConfig) -> list[list[int]]:
    """Every distinct full-DP group."""
    return _all_groups(config, dp_group)


def all_pp_groups(config: ParallelismConfig) -> list[list[int]]:
    """Every distinct pipeline, ordered by stage."""
    return _all_groups(config, pp_group)


def _all_groups(config, group_fn) -> list[list[int]]:
    seen: set[tuple[int, ...]] = set()
    groups: list[list[int]] = []
    for rank in range(config.world_size):
        group = group_fn(rank, config)
        key = tuple(group)
        if key not in seen:
            seen.add(key)
            groups.append(group)
    return groups
