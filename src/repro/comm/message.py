"""Message-size effects on transfer time (chunking and pipelining).

Two effects, both central to the paper's Section 4.2 findings:

1. **Ramp-up**: small messages achieve a fraction of peak bandwidth.
   Effective bandwidth follows the classic half-bandwidth-point curve
   ``bw_eff(size) = bw_peak * size / (size + n_half)`` where ``n_half`` is
   the message size at which half of peak is reached (latency * bandwidth
   product of the path).

2. **Chunked vs. unchunked multi-hop transfers**: NCCL-style chunked
   transfers pipeline chunks across path segments, so a multi-hop transfer
   runs at the bottleneck segment's speed. The "sparse SendRecv calls that
   lack data chunking" the paper blames for TP+PP bandwidth
   underutilisation instead pay store-and-forward: each hop's serialization
   adds up.
"""

from __future__ import annotations

from repro.hardware.topology import Path


def effective_bandwidth(
    peak_bandwidth: float, latency_s: float, message_bytes: float
) -> float:
    """Achieved bandwidth for one message over one segment (bytes/s).

    The half-bandwidth point is the latency-bandwidth product: a message
    must fill the pipe for one latency to reach half of peak.
    """
    if message_bytes <= 0:
        raise ValueError("message_bytes must be positive")
    n_half = peak_bandwidth * latency_s
    return peak_bandwidth * message_bytes / (message_bytes + n_half)


def segment_time(
    peak_bandwidth: float, latency_s: float, message_bytes: float
) -> float:
    """Time for one message over one segment, latency included."""
    bandwidth = effective_bandwidth(peak_bandwidth, latency_s, message_bytes)
    return latency_s + message_bytes / bandwidth


def transfer_time(
    path: Path,
    message_bytes: float,
    chunked: bool = True,
    bandwidth_scale: float = 1.0,
) -> float:
    """Time to move ``message_bytes`` along ``path``.

    Args:
        path: traversed segments (from :func:`repro.hardware.resolve_path`).
        message_bytes: payload size.
        chunked: pipelined chunked transfer (runs at the bottleneck
            segment) vs. unchunked store-and-forward (hops serialize).
        bandwidth_scale: divisor applied to every segment's bandwidth,
            used by the contention model (0 < scale <= 1 means slower).
    """
    if message_bytes <= 0:
        raise ValueError("message_bytes must be positive")
    if not 0 < bandwidth_scale <= 1:
        raise ValueError("bandwidth_scale must be in (0, 1]")

    times = [
        segment_time(
            link.peak_effective_bandwidth * bandwidth_scale,
            link.latency_s,
            message_bytes,
        )
        for link in path.links
    ]
    if chunked:
        # Chunks pipeline: total time ~ slowest segment + other latencies.
        slowest = max(times)
        other_latency = sum(link.latency_s for link in path.links) - (
            path.links[times.index(slowest)].latency_s
        )
        return slowest + other_latency
    return sum(times)


def chunking_efficiency(path: Path, message_bytes: float) -> float:
    """Ratio of chunked to unchunked throughput for a message on a path.

    1.0 on single-segment paths; > 1 whenever pipelining across hops wins.
    Reported alongside Figure 6-style results.
    """
    chunked = transfer_time(path, message_bytes, chunked=True)
    unchunked = transfer_time(path, message_bytes, chunked=False)
    return unchunked / chunked
