"""Shared-NIC and PCIe-lane contention model.

Unlike DGX systems that assume dedicated communication paths, the paper's
scale-out clusters share NICs and PCIe lanes between every GPU of a node
(Section 4.2). The :class:`NicContention` tracker counts concurrently
active inter-node flows per node; the bandwidth a new flow receives is the
fair share ``1 / concurrent_flows`` of the node's NIC capacity (bounded
below so a flood of tiny flows cannot starve completely).
"""

from __future__ import annotations

from dataclasses import dataclass, field

MIN_SHARE = 0.05  # a flow never gets less than 5% of the fabric


@dataclass
class NicContention:
    """Per-node count of active inter-node flows."""

    num_nodes: int
    _active: dict[int, int] = field(default_factory=dict)

    def begin(self, nodes: tuple[int, ...]) -> float:
        """Register a flow over ``nodes``' NICs; return its bandwidth share.

        The share is computed *after* registering, against the most
        contended involved node.
        """
        for node in nodes:
            self._check(node)
            self._active[node] = self._active.get(node, 0) + 1
        return self.share(nodes)

    def end(self, nodes: tuple[int, ...]) -> None:
        """Unregister a flow previously passed to :meth:`begin`."""
        for node in nodes:
            self._check(node)
            count = self._active.get(node, 0)
            if count <= 0:
                raise ValueError(f"no active flows on node {node}")
            self._active[node] = count - 1

    def share(self, nodes: tuple[int, ...]) -> float:
        """Fair bandwidth share for a flow crossing ``nodes``' NICs."""
        if not nodes:
            return 1.0
        worst = max(self._active.get(node, 0) for node in nodes)
        if worst <= 1:
            return 1.0
        return max(MIN_SHARE, 1.0 / worst)

    def active_flows(self, node: int) -> int:
        """Currently active inter-node flows through ``node``'s NICs."""
        self._check(node)
        return self._active.get(node, 0)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
