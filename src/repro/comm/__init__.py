"""Communication cost models, traffic accounting, and contention."""

from repro.comm.collectives import (
    CommCost,
    allgather,
    allreduce,
    alltoall,
    broadcast,
    reduce_scatter,
    send_recv,
)
from repro.comm.contention import MIN_SHARE, NicContention
from repro.comm.message import (
    chunking_efficiency,
    effective_bandwidth,
    segment_time,
    transfer_time,
)
from repro.comm.traffic import TrafficLedger

__all__ = [
    "MIN_SHARE",
    "CommCost",
    "NicContention",
    "TrafficLedger",
    "allgather",
    "allreduce",
    "alltoall",
    "broadcast",
    "chunking_efficiency",
    "effective_bandwidth",
    "reduce_scatter",
    "segment_time",
    "send_recv",
    "transfer_time",
]
