"""Analytic cost models for the communication collectives of LLM training.

Each estimator returns a :class:`CommCost`: wall time for the whole group,
per-GPU bytes moved per fabric class (feeding the Figure 5 traffic
accounting), and the set of nodes whose NIC the operation occupies
(feeding the contention model).

Cost models follow the standard alpha-beta formulation specialised to the
logical algorithms NCCL/RCCL use:

* AllReduce: ring, ``2 (n-1)/n * bytes`` per rank over the slowest hop;
* AllGather / ReduceScatter: ring, ``(n-1)/n * bytes``;
* AllToAll: pairwise exchange, split into intra-node and inter-node parts
  (the inter-node part serialises on the shared NICs);
* SendRecv: point-to-point, chunked or unchunked (see
  :mod:`repro.comm.message`);
* Broadcast: pipelined chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cluster import ClusterSpec
from repro.hardware.interconnect import LinkKind
from repro.hardware.topology import resolve_path, ring_paths
from repro.comm.message import transfer_time


@dataclass
class CommCost:
    """Outcome of one collective operation.

    Attributes:
        duration_s: wall time until every participant completes.
        link_bytes: ``gpu -> {link kind -> bytes moved}``.
        nic_nodes: nodes whose NIC the operation keeps busy.
        inter_node_bytes: total bytes crossing node boundaries.
    """

    duration_s: float
    link_bytes: dict[int, dict[LinkKind, float]] = field(default_factory=dict)
    nic_nodes: tuple[int, ...] = ()
    inter_node_bytes: float = 0.0


def _add_traffic(
    cost: CommCost, gpu: int, kind: LinkKind, num_bytes: float
) -> None:
    cost.link_bytes.setdefault(gpu, {}).setdefault(kind, 0.0)
    cost.link_bytes[gpu][kind] += num_bytes


def _record_path_traffic(
    cost: CommCost, cluster: ClusterSpec, src: int, dst: int, num_bytes: float
) -> None:
    """Attribute a transfer's bytes to both endpoints' fabric counters."""
    path = resolve_path(cluster, src, dst)
    for link in path.links:
        if link.kind is LinkKind.INFINIBAND:
            cost.inter_node_bytes += num_bytes
            continue
        # NVLink/xGMI touch both endpoints; PCIe is per-host.
        if link.kind is LinkKind.PCIE:
            _add_traffic(cost, src, LinkKind.PCIE, num_bytes)
            _add_traffic(cost, dst, LinkKind.PCIE, num_bytes)
        else:
            _add_traffic(cost, src, link.kind, num_bytes)
            _add_traffic(cost, dst, link.kind, num_bytes)


def _nic_nodes(cluster: ClusterSpec, gpus: list[int]) -> tuple[int, ...]:
    nodes = sorted({cluster.node_of(g) for g in gpus})
    return tuple(nodes) if len(nodes) > 1 else ()


def allreduce(
    cluster: ClusterSpec,
    gpus: list[int],
    payload_bytes: float,
    bandwidth_scale: float = 1.0,
) -> CommCost:
    """Ring AllReduce of ``payload_bytes`` per rank across ``gpus``."""
    n = len(gpus)
    if n < 2:
        return CommCost(duration_s=0.0)
    per_hop = payload_bytes / n
    steps = 2 * (n - 1)
    paths = ring_paths(cluster, gpus)
    hop_times = [
        transfer_time(p, per_hop, chunked=True, bandwidth_scale=bandwidth_scale)
        for p in paths
    ]
    cost = CommCost(duration_s=steps * max(hop_times))
    for path in paths:
        _record_path_traffic(
            cost, cluster, path.src, path.dst, steps * per_hop
        )
    cost.nic_nodes = _nic_nodes(cluster, gpus)
    return cost


def allgather(
    cluster: ClusterSpec,
    gpus: list[int],
    payload_bytes: float,
    bandwidth_scale: float = 1.0,
) -> CommCost:
    """Ring AllGather: each rank ends with the ``payload_bytes`` total."""
    return _ring_one_pass(cluster, gpus, payload_bytes, bandwidth_scale)


def reduce_scatter(
    cluster: ClusterSpec,
    gpus: list[int],
    payload_bytes: float,
    bandwidth_scale: float = 1.0,
) -> CommCost:
    """Ring ReduceScatter of a ``payload_bytes`` buffer."""
    return _ring_one_pass(cluster, gpus, payload_bytes, bandwidth_scale)


def _ring_one_pass(cluster, gpus, payload_bytes, bandwidth_scale) -> CommCost:
    n = len(gpus)
    if n < 2:
        return CommCost(duration_s=0.0)
    per_hop = payload_bytes / n
    steps = n - 1
    paths = ring_paths(cluster, gpus)
    hop_times = [
        transfer_time(p, per_hop, chunked=True, bandwidth_scale=bandwidth_scale)
        for p in paths
    ]
    cost = CommCost(duration_s=steps * max(hop_times))
    for path in paths:
        _record_path_traffic(cost, cluster, path.src, path.dst, steps * per_hop)
    cost.nic_nodes = _nic_nodes(cluster, gpus)
    return cost


def alltoall(
    cluster: ClusterSpec,
    gpus: list[int],
    payload_bytes: float,
    bandwidth_scale: float = 1.0,
) -> CommCost:
    """Pairwise AllToAll: each rank sends ``payload_bytes`` split evenly
    across the other ranks.

    The inter-node portion of every rank on a node serialises through that
    node's NICs, which is why EP groups that span nodes are so expensive
    (paper Section 4.2); the intra-node portion rides NVLink/xGMI in
    parallel.
    """
    n = len(gpus)
    if n < 2:
        return CommCost(duration_s=0.0)
    per_peer = payload_bytes / (n - 1)
    cost = CommCost(duration_s=0.0)

    intra_times: list[float] = [0.0]
    node_nic_bytes: dict[int, float] = {}
    inter_latency = 0.0
    for src in gpus:
        for dst in gpus:
            if src == dst:
                continue
            path = resolve_path(cluster, src, dst)
            _record_path_traffic(cost, cluster, src, dst, per_peer)
            if path.inter_node:
                node = cluster.node_of(src)
                node_nic_bytes[node] = node_nic_bytes.get(node, 0.0) + per_peer
                inter_latency = max(inter_latency, path.latency_s)
            else:
                intra_times.append(
                    transfer_time(
                        path,
                        per_peer,
                        chunked=True,
                        bandwidth_scale=bandwidth_scale,
                    )
                )

    inter_time = 0.0
    if node_nic_bytes:
        nic_bw = (
            cluster.inter_node_link.peak_effective_bandwidth
            * cluster.node.nic_count
            * bandwidth_scale
        )
        worst_node_bytes = max(node_nic_bytes.values())
        inter_time = inter_latency + worst_node_bytes / nic_bw
    cost.duration_s = max(max(intra_times), inter_time)
    cost.nic_nodes = _nic_nodes(cluster, gpus)
    return cost


def send_recv(
    cluster: ClusterSpec,
    src: int,
    dst: int,
    payload_bytes: float,
    chunked: bool = True,
    bandwidth_scale: float = 1.0,
) -> CommCost:
    """Point-to-point transfer (pipeline-parallel activations/gradients).

    ``chunked=False`` models the sparse, uncoordinated SendRecv calls the
    paper observes under TP+PP, which lack data chunking and pay
    store-and-forward across PCIe -> IB -> PCIe.
    """
    path = resolve_path(cluster, src, dst)
    duration = transfer_time(
        path, payload_bytes, chunked=chunked, bandwidth_scale=bandwidth_scale
    )
    cost = CommCost(duration_s=duration)
    _record_path_traffic(cost, cluster, src, dst, payload_bytes)
    if path.inter_node:
        cost.nic_nodes = (cluster.node_of(src), cluster.node_of(dst))
    return cost


def broadcast(
    cluster: ClusterSpec,
    gpus: list[int],
    payload_bytes: float,
    bandwidth_scale: float = 1.0,
) -> CommCost:
    """Pipelined chain broadcast from ``gpus[0]`` to the rest."""
    n = len(gpus)
    if n < 2:
        return CommCost(duration_s=0.0)
    paths = [
        resolve_path(cluster, gpus[i], gpus[i + 1]) for i in range(n - 1)
    ]
    hop_times = [
        transfer_time(p, payload_bytes, chunked=True,
                      bandwidth_scale=bandwidth_scale)
        for p in paths
    ]
    cost = CommCost(duration_s=max(hop_times) + sum(p.latency_s for p in paths))
    for path in paths:
        _record_path_traffic(cost, cluster, path.src, path.dst, payload_bytes)
    cost.nic_nodes = _nic_nodes(cluster, gpus)
    return cost
