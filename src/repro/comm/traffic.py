"""Per-GPU fabric traffic accounting (paper Figure 5).

The :class:`TrafficLedger` accumulates, for every physical GPU, the bytes
moved per fabric class over a run. The Figure 5 heatmap is a direct dump
of this ledger's NVLink + PCIe totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.interconnect import LinkKind
from repro.comm.collectives import CommCost


@dataclass
class TrafficLedger:
    """Cumulative per-GPU, per-fabric byte counters."""

    num_gpus: int
    _bytes: dict[int, dict[LinkKind, float]] = field(default_factory=dict)
    inter_node_bytes: float = 0.0

    def record(self, cost: CommCost, repeat: int = 1) -> None:
        """Fold one collective's traffic into the ledger ``repeat`` times."""
        for gpu, by_kind in cost.link_bytes.items():
            if not 0 <= gpu < self.num_gpus:
                raise ValueError(f"gpu {gpu} out of range")
            own = self._bytes.setdefault(gpu, {})
            for kind, amount in by_kind.items():
                own[kind] = own.get(kind, 0.0) + amount * repeat
        self.inter_node_bytes += cost.inter_node_bytes * repeat

    def bytes_for(self, gpu: int, kind: LinkKind) -> float:
        """Bytes GPU ``gpu`` moved over fabric ``kind``."""
        return self._bytes.get(gpu, {}).get(kind, 0.0)

    def total_for(self, gpu: int) -> float:
        """Bytes GPU ``gpu`` moved over all fabrics."""
        return sum(self._bytes.get(gpu, {}).values())

    def per_gpu_matrix(self, kinds: tuple[LinkKind, ...] | None = None
                       ) -> list[float]:
        """Per-GPU traffic totals over the given fabrics (Figure 5 rows).

        Defaults to NVLink + xGMI + PCIe, the fabrics the paper plots.
        """
        kinds = kinds or (LinkKind.NVLINK, LinkKind.XGMI, LinkKind.PCIE)
        return [
            sum(self.bytes_for(gpu, kind) for kind in kinds)
            for gpu in range(self.num_gpus)
        ]

    def skew(self) -> float:
        """Max/mean ratio of per-GPU totals (1.0 = perfectly balanced)."""
        totals = [self.total_for(g) for g in range(self.num_gpus)]
        mean = sum(totals) / len(totals) if totals else 0.0
        if mean == 0:
            return 1.0
        return max(totals) / mean

    def merged(self, other: "TrafficLedger") -> "TrafficLedger":
        """A new ledger combining this one and ``other``."""
        if other.num_gpus != self.num_gpus:
            raise ValueError("ledgers cover different GPU counts")
        merged = TrafficLedger(num_gpus=self.num_gpus)
        for source in (self, other):
            for gpu, by_kind in source._bytes.items():
                own = merged._bytes.setdefault(gpu, {})
                for kind, amount in by_kind.items():
                    own[kind] = own.get(kind, 0.0) + amount
        merged.inter_node_bytes = (
            self.inter_node_bytes + other.inter_node_bytes
        )
        return merged
