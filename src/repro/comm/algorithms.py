"""Alternative collective algorithms: tree and hierarchical AllReduce.

The paper's Section 4.2 insight calls for "topology-aware collectives
that adapt communication patterns to the underlying network layout". The
baseline cost models in :mod:`repro.comm.collectives` implement the flat
NCCL ring; this module adds the two standard alternatives:

* **binary-tree AllReduce** — reduce up, broadcast down. Latency scales
  as ``O(log n)`` instead of ``O(n)``, winning for small payloads and
  large groups;
* **hierarchical (2-level) AllReduce** — ReduceScatter+AllGather inside
  each node over NVLink/xGMI with the cross-node reduction carried by
  per-shard rings that share the NICs. Every byte still crosses the
  inter-node fabric once (the reduction is information-theoretically
  NIC-bound), so the win over the flat ring is the latency term and the
  intra-node hops running at NVLink instead of the ring's bottleneck
  speed — the realistic gain of NCCL's tree/collnet modes.

The ablation benchmark (`benchmarks/test_ablation_collectives.py`)
quantifies how much of the paper's Figure 22 AllReduce bottleneck a
topology-aware algorithm recovers.
"""

from __future__ import annotations

import math

from repro.comm.collectives import (
    CommCost,
    _nic_nodes,
    _record_path_traffic,
    allgather,
    allreduce,
    reduce_scatter,
)
from repro.comm.message import transfer_time
from repro.hardware.cluster import ClusterSpec
from repro.hardware.topology import resolve_path


def tree_allreduce(
    cluster: ClusterSpec,
    gpus: list[int],
    payload_bytes: float,
    bandwidth_scale: float = 1.0,
) -> CommCost:
    """Binary-tree AllReduce: reduce up the tree, broadcast back down.

    Each of the ``2 * ceil(log2 n)`` phases moves the full payload over
    the slowest participating link; cheap for latency-bound (small)
    payloads, expensive for bandwidth-bound ones (no pipelining credit
    is modelled, matching a naive tree).
    """
    n = len(gpus)
    if n < 2:
        return CommCost(duration_s=0.0)
    levels = max(1, math.ceil(math.log2(n)))
    cost = CommCost(duration_s=0.0)
    total = 0.0
    for level in range(levels):
        stride = 1 << level
        level_times = [0.0]
        for i in range(0, n - stride, 2 * stride):
            src, dst = gpus[i + stride], gpus[i]
            path = resolve_path(cluster, src, dst)
            level_times.append(
                transfer_time(
                    path, payload_bytes, chunked=True,
                    bandwidth_scale=bandwidth_scale,
                )
            )
            _record_path_traffic(cost, cluster, src, dst, payload_bytes)
            # Broadcast phase mirrors the reduce phase.
            _record_path_traffic(cost, cluster, dst, src, payload_bytes)
        total += 2 * max(level_times)
    cost.duration_s = total
    cost.nic_nodes = _nic_nodes(cluster, gpus)
    return cost


def hierarchical_allreduce(
    cluster: ClusterSpec,
    gpus: list[int],
    payload_bytes: float,
    bandwidth_scale: float = 1.0,
) -> CommCost:
    """Two-level AllReduce: intra-node RS -> inter-node ring -> intra AG.

    The intra-node phases run at NVLink/xGMI speed; the cross-node
    reduction remains NIC-bound (every byte crosses the fabric once), so
    the win over the flat ring is the latency and intra-hop terms — the
    topology-aware pattern the paper's insight calls for, with honest
    physics.
    """
    n = len(gpus)
    if n < 2:
        return CommCost(duration_s=0.0)

    by_node: dict[int, list[int]] = {}
    for gpu in gpus:
        by_node.setdefault(cluster.node_of(gpu), []).append(gpu)
    node_groups = list(by_node.values())

    if len(node_groups) == 1:
        return allreduce(cluster, gpus, payload_bytes, bandwidth_scale)

    total = 0.0
    merged = CommCost(duration_s=0.0)

    # Phase 1: ReduceScatter inside each node (parallel across nodes).
    phase = [0.0]
    for group in node_groups:
        if len(group) > 1:
            cost = reduce_scatter(
                cluster, group, payload_bytes, bandwidth_scale
            )
            phase.append(cost.duration_s)
            _merge(merged, cost)
    total += max(phase)

    # Phase 2: cross-node reduction. After the intra-node ReduceScatter
    # each GPU owns one shard; the per-shard inter-node rings run in
    # parallel but share the node's NICs, so their aggregate behaves
    # like one full-payload ring between node leaders.
    leaders = [group[0] for group in node_groups]
    leader_cost = allreduce(cluster, leaders, payload_bytes, bandwidth_scale)
    total += leader_cost.duration_s
    _merge(merged, leader_cost)

    # Phase 3: AllGather inside each node.
    phase = [0.0]
    for group in node_groups:
        if len(group) > 1:
            cost = allgather(cluster, group, payload_bytes, bandwidth_scale)
            phase.append(cost.duration_s)
            _merge(merged, cost)
    total += max(phase)

    merged.duration_s = total
    merged.nic_nodes = _nic_nodes(cluster, gpus)
    return merged


def _merge(into: CommCost, other: CommCost) -> None:
    for gpu, by_kind in other.link_bytes.items():
        own = into.link_bytes.setdefault(gpu, {})
        for kind, amount in by_kind.items():
            own[kind] = own.get(kind, 0.0) + amount
    into.inter_node_bytes += other.inter_node_bytes


def best_allreduce(
    cluster: ClusterSpec,
    gpus: list[int],
    payload_bytes: float,
    bandwidth_scale: float = 1.0,
) -> tuple[str, CommCost]:
    """Pick the cheapest AllReduce algorithm for this group and payload.

    Returns ``(algorithm_name, cost)`` — the auto-tuning step a
    topology-aware collective library performs.
    """
    candidates = {
        "ring": allreduce(cluster, gpus, payload_bytes, bandwidth_scale),
        "tree": tree_allreduce(
            cluster, gpus, payload_bytes, bandwidth_scale
        ),
        "hierarchical": hierarchical_allreduce(
            cluster, gpus, payload_bytes, bandwidth_scale
        ),
    }
    name = min(candidates, key=lambda k: candidates[k].duration_s)
    return name, candidates[name]
