"""Command-line interface: run experiments without writing Python.

Usage::

    python -m repro catalog
    python -m repro configs --model gpt3-175b --cluster h200x32
    python -m repro run --model gpt3-175b --cluster h200x32 \\
        --parallelism TP2-PP16 --act --output results/tp2pp16
    python -m repro sweep --model gpt3-30b --cluster mi250x32 \\
        --parallelism TP8-PP2 --parallelism TP2-PP8 --microbatch 1 2 4
    python -m repro figures --model gpt3-30b --cluster h200x32 \\
        --parallelism TP4-PP8-DP1 --output figures/
    python -m repro full-sweep --cluster h200x32 --cluster h100x64 \\
        --output results/
    python -m repro fleet --policy thermal-aware --seed 0 \\
        --power-cap-kw 10 --output results/fleet
    python -m repro powerctl sweep --model gpt3-13b --cluster h100x64 \\
        --parallelism TP4-PP2 --setpoint 0.6 0.7 0.8 0.9 1.0
    python -m repro powerctl search --model gpt3-13b --cluster h100x64 \\
        --parallelism TP4-PP2 --max-slowdown 0.05 --jobs 3
    python -m repro optimize --model gpt3-13b --cluster h100x64 \\
        --objective energy_delay --max-slowdown 0.05
    python -m repro optimize --kind serving --model llama3-70b \\
        --cluster h100x64 --replicas 2 4 8 --gpus-per-replica 4 8
    python -m repro run --model gpt3-13b --cluster h100x64 \\
        --parallelism TP4-PP2 --fault-node 1 --fault-time 2.0 \\
        --fault-kind power_sag --fault-duration 3.0
    python -m repro resilience run --model gpt3-13b --cluster h100x64 \\
        --parallelism TP4-PP2 --policy elastic --mtbf-s 3600
    python -m repro resilience sweep --model gpt3-13b --cluster h100x64 \\
        --parallelism TP4-PP2 --mtbf-s 1800 3600 7200 --output results/res
    python -m repro inferserve run --model llama3-70b --cluster h100x64 \\
        --trace diurnal --daily-users 2e6 --replicas 8 --autoscale \\
        --output results/serving
    python -m repro inferserve sweep --model llama3-70b --cluster h100x64 \\
        --setpoint 0.6 0.8 1.0 --search --jobs 3
    python -m repro serve --port 8053 --concurrency 2
    python -m repro chaos --scenario soak --seed 0 --json
    python -m repro cache stats
    python -m repro cache clear

Mirrors the paper artifact's script surface (prepare/launch/
full_sweep/visualize) on top of the simulated testbed. Workload
subcommands build a :class:`repro.api.SimRequest` and execute through
:func:`repro.api.submit` — the same typed surface the ``serve`` broker
speaks over HTTP.

Conventions shared by every subcommand:

- ``--json`` prints a machine-readable summary to stdout instead of the
  human tables.
- exit codes: 0 ok, 2 bad arguments (unknown names, invalid flag
  combinations), 3 simulation/runtime failure (worker crash, timeout,
  unplaceable fleet).
- ``--jobs N`` fans simulations out over worker processes (``0`` =
  auto); results are identical regardless of ``N``.
- simulations are cached persistently under ``.repro_cache/``;
  ``--cache-dir`` redirects the store and ``--no-cache`` skips it for
  one invocation (see ``repro cache`` and docs/performance.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from dataclasses import asdict
from pathlib import Path

from repro.api import SimRequest, submit, submit_many
from repro.core.artifact import run_summary, write_run_artifact
from repro.engine.simulator import SimSettings
from repro.hardware.cluster import cluster_names, get_cluster
from repro.models.catalog import get_model, model_names
from repro.parallelism.enumerate import ConfigSearchSpace, valid_configs
from repro.parallelism.strategy import OptimizationConfig

#: SimRequest field names -> the CLI spelling, so validation errors from
#: :mod:`repro.api` read as flag errors (longest names first, so e.g.
#: ``fault_power_scale`` is not half-rewritten by ``fault_power``).
_FLAG_SPELLINGS = (
    ("max_ttft_regression", "--max-ttft-regression"),
    ("setpoint_tolerance", "--tolerance"),
    ("fault_power_scale", "--fault-power-scale"),
    ("pipeline_schedule", "--pipeline-schedule"),
    ("global_batch_size", "--global-batch"),
    ("gpus_per_replica", "--gpus-per-replica"),
    ("microbatch_sizes", "--microbatch"),
    ("microbatch_size", "--microbatch"),
    ("max_slowdown", "--max-slowdown"),
    ("setpoint_lo", "--lo"),
    ("setpoint_hi", "--hi"),
    ("power_cap_w", "--power-cap-w"),
    ("beam_width", "--beam-width"),
    ("refine_top", "--refine-top"),
    ("allow_fsdp", "--allow-fsdp"),
    ("fault_duration", "--fault-duration"),
    ("fault_severity", "--fault-severity"),
    ("freq_setpoint", "--freq-setpoint"),
    ("power_limit_w", "--power-limit-w"),
    ("fault_kind", "--fault-kind"),
    ("fault_node", "--fault-node"),
    ("fault_time", "--fault-time"),
    ("timeout_s", "--timeout-s"),
    ("seq_splits", "--seq-splits"),
)


def _flagify(message: str) -> str:
    """Rewrite request-field names in an error to their flag spellings."""
    for field_name, flag in _FLAG_SPELLINGS:
        message = message.replace(field_name, flag)
    return message


def _emit_json(payload) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags describing what to run (shared by run/figures/powerctl)."""
    parser.add_argument("--model", required=True, help="catalog model name")
    parser.add_argument("--cluster", required=True,
                        help="catalog cluster name")
    parser.add_argument(
        "--parallelism", required=True,
        help="paper-style strategy, e.g. TP2-PP16 or EP8-TP1-PP4",
    )
    parser.add_argument("--microbatch", type=int, default=1)
    parser.add_argument("--global-batch", type=int, default=128)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument(
        "--pipeline-schedule", default="1f1b",
        help="pipeline schedule from the repro.schedules registry: "
             "1f1b (default), interleaved, gpipe, zb-h1, seq1f1b",
    )
    parser.add_argument(
        "--seq-splits", type=int, default=None,
        help="sequence splits per microbatch (seq1f1b; schedule default "
             "when omitted)",
    )
    parser.add_argument("--act", action="store_true",
                        help="activation recomputation")
    parser.add_argument("--cc", action="store_true",
                        help="compute-communication overlap")
    parser.add_argument("--lora", action="store_true",
                        help="LoRA finetuning")


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    _add_workload_arguments(parser)
    parser.add_argument(
        "--fail-node", type=int, default=None,
        help="alias for --fault-node with the default power scale",
    )
    parser.add_argument(
        "--fault-node", type=int, default=None,
        help="inject a power fault on this node (Section 1 incident)",
    )
    parser.add_argument(
        "--fault-power-scale", type=float, default=0.25,
        help="power-cap multiplier the faulted node is pinned to",
    )
    parser.add_argument(
        "--fault-time", type=float, default=None,
        help="onset second of a transient timed fault on --fault-node "
             "(instead of the whole-run fault above)",
    )
    parser.add_argument(
        "--fault-duration", type=float, default=None,
        help="timed fault duration in seconds (default 5)",
    )
    parser.add_argument(
        "--fault-kind", default=None,
        help="timed fault class: power_sag (default), link_degrade, "
             "gpu_failstop, thermal_runaway, or ecc_stall",
    )
    parser.add_argument(
        "--fault-severity", type=float, default=None,
        help="kind-specific severity (default: per-kind paper value)",
    )
    parser.add_argument(
        "--governor", default="none",
        help="powerctl governor: none, static, thermal, or straggler",
    )
    parser.add_argument(
        "--freq-setpoint", type=float, default=1.0,
        help="static governor: uniform clock-ratio ceiling (implies "
             "--governor static when below 1.0)",
    )
    parser.add_argument(
        "--power-limit-w", type=float, default=None,
        help="static governor: per-GPU board power limit in W (implies "
             "--governor static)",
    )


def _opts_from(args: argparse.Namespace) -> OptimizationConfig:
    return OptimizationConfig(
        activation_recompute=args.act,
        cc_overlap=args.cc,
        lora=args.lora,
    )


def _request_from_args(args: argparse.Namespace) -> SimRequest:
    """One run-style flag namespace -> the typed request it describes.

    Validation (names, flag-group consistency, node ranges) happens in
    :class:`SimRequest` itself; :func:`main` rewrites field names back
    to flag spellings in any error.
    """
    node = getattr(args, "fault_node", None)
    if node is None:
        node = getattr(args, "fail_node", None)
    return SimRequest(
        kind="training",
        model=args.model,
        cluster=args.cluster,
        parallelism=args.parallelism,
        optimizations=_opts_from(args),
        microbatch_size=args.microbatch,
        global_batch_size=args.global_batch,
        iterations=args.iterations,
        governor=getattr(args, "governor", "none"),
        freq_setpoint=getattr(args, "freq_setpoint", 1.0),
        power_limit_w=getattr(args, "power_limit_w", None),
        fault_node=node,
        fault_power_scale=(
            getattr(args, "fault_power_scale", None)
            if node is not None else None
        ),
        fault_time=getattr(args, "fault_time", None),
        fault_duration=getattr(args, "fault_duration", None),
        fault_kind=getattr(args, "fault_kind", None),
        fault_severity=getattr(args, "fault_severity", None),
        pipeline_schedule=getattr(args, "pipeline_schedule", "1f1b"),
        seq_splits=getattr(args, "seq_splits", None),
    )


def _print_summary(result) -> None:
    efficiency = result.efficiency()
    stats = result.stats()
    print(f"run           : {result.label}")
    print(f"dp            : {result.parallelism.dp}")
    print(f"step time     : {efficiency.step_time_s:.2f} s")
    print(f"throughput    : {efficiency.tokens_per_s:,.0f} tokens/s")
    print(f"energy        : {efficiency.tokens_per_joule:.3f} tokens/J")
    print(f"avg power     : {stats.avg_power_w / 1000:.1f} kW")
    per_gpu_power = result.per_gpu_mean_power_w()
    mean_power = sum(per_gpu_power) / len(per_gpu_power)
    print(
        f"per-GPU power : {min(per_gpu_power):.0f}/{mean_power:.0f}/"
        f"{max(per_gpu_power):.0f} W (min/mean/max)"
    )
    print(f"total energy  : {efficiency.energy_j:,.0f} J")
    print(f"peak temp     : {stats.peak_temp_c:.1f} C")
    print(f"mean clock    : {stats.mean_freq_ratio:.3f}")
    print(f"max throttle  : {max(result.throttle_ratio()):.2f}")
    trace = result.outcome.power_control
    if trace is not None:
        print(
            f"governor      : {trace.governor} "
            f"({len(trace.decisions)} actuations)"
        )
    faults = result.outcome.fault_trace
    if faults is not None:
        print(
            f"faults        : {faults.applied} applied, "
            f"{len(faults.hangs)} collective hang(s) detected"
        )


def cmd_catalog(args: argparse.Namespace) -> int:
    """List the models and clusters available."""
    if getattr(args, "as_json", False):
        _emit_json({
            "models": [
                {
                    "name": name,
                    "params_b": get_model(name).total_params / 1e9,
                    "kind": "moe" if get_model(name).is_moe else "dense",
                }
                for name in model_names()
            ],
            "clusters": [
                {
                    "name": name,
                    "nodes": get_cluster(name).num_nodes,
                    "gpus_per_node":
                        get_cluster(name).node.gpus_per_node,
                    "gpu": get_cluster(name).node.gpu.name,
                }
                for name in cluster_names()
            ],
        })
        return 0
    print("models:")
    for name in model_names():
        model = get_model(name)
        kind = "MoE" if model.is_moe else "dense"
        print(f"  {name:<16} {model.total_params / 1e9:6.0f}B {kind}")
    print("clusters:")
    for name in cluster_names():
        cluster = get_cluster(name)
        print(
            f"  {name:<10} {cluster.num_nodes} nodes x "
            f"{cluster.node.gpus_per_node} {cluster.node.gpu.name}"
        )
    return 0


def cmd_configs(args: argparse.Namespace) -> int:
    """List memory-valid parallelism configurations."""
    model = get_model(args.model)
    cluster = get_cluster(args.cluster)
    space = ConfigSearchSpace(microbatch_size=args.microbatch)
    configs = valid_configs(model, cluster, space, recompute=args.act)
    if getattr(args, "as_json", False):
        _emit_json({
            "model": model.name,
            "cluster": cluster.name,
            "configs": [
                {"name": config.name, "dp": config.dp}
                for config in configs
            ],
        })
        return 0
    print(
        f"{len(configs)} valid configurations for {model.name} on "
        f"{cluster.name}:"
    )
    for config in configs:
        print(f"  {config.name:<16} dp={config.dp}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run one experiment; optionally write an artifact directory."""
    request = _request_from_args(args)
    result = submit(request)
    fault_warning = None
    if request.fault_time is not None and \
            result.fault_events_applied() == 0:
        # Horizon is only known after the run: surface a fault that
        # landed past the end instead of silently simulating a clean run.
        fault_warning = (
            f"--fault-time {request.fault_time:g}s never fired; the run "
            f"ended at {result.window_end_s:.1f}s (raise --iterations or "
            "--global-batch to lengthen the run)"
        )
    directory = None
    if args.output:
        directory = write_run_artifact(result, args.output)
    if getattr(args, "as_json", False):
        payload = run_summary(result)
        payload["request_digest"] = request.digest()
        payload["artifact"] = (
            str(directory) if directory is not None else None
        )
        if fault_warning is not None:
            payload["warning"] = fault_warning
        _emit_json(payload)
        return 0
    _print_summary(result)
    if fault_warning is not None:
        print(f"warning: {fault_warning}", file=sys.stderr)
    if directory is not None:
        print(f"artifact      : {directory}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a strategy x microbatch grid and print the table."""
    from repro.core.parallel import ExecutionReport

    opts = _opts_from(args)
    schedules = getattr(args, "pipeline_schedule", None) or ["1f1b"]
    requests = [
        SimRequest(
            kind="training",
            model=args.model,
            cluster=args.cluster,
            parallelism=strategy,
            optimizations=opts,
            microbatch_size=microbatch,
            global_batch_size=args.global_batch,
            iterations=args.iterations,
            pipeline_schedule=schedule,
        )
        for strategy in args.parallelism
        for microbatch in args.microbatch
        for schedule in schedules
    ]
    report = ExecutionReport()
    results = submit_many(requests, jobs=args.jobs, report=report)
    if report.crashed:
        print(
            f"warning: sweep survived worker crashes "
            f"({report.describe()})",
            file=sys.stderr,
        )
    rows = []
    for request, result in zip(requests, results):
        efficiency = result.efficiency()
        stats = result.stats()
        rows.append({
            "strategy": request.parallelism,
            "microbatch": request.microbatch_size,
            "schedule": request.pipeline_schedule,
            "tokens_per_s": efficiency.tokens_per_s,
            "tokens_per_joule": efficiency.tokens_per_joule,
            "peak_temp_c": stats.peak_temp_c,
            "mean_freq_ratio": stats.mean_freq_ratio,
        })
    if getattr(args, "as_json", False):
        _emit_json({"rows": rows})
        return 0
    print(
        f"{'strategy':<16} {'mb':>3} {'schedule':<11} {'tok/s':>10} "
        f"{'tok/J':>7} {'peakT':>6} {'clock':>6}"
    )
    for row in rows:
        print(
            f"{row['strategy']:<16} {row['microbatch']:>3} "
            f"{row['schedule']:<11} "
            f"{row['tokens_per_s']:>10,.0f} "
            f"{row['tokens_per_joule']:>7.3f} "
            f"{row['peak_temp_c']:>6.1f} "
            f"{row['mean_freq_ratio']:>6.3f}"
        )
    return 0


def cmd_full_sweep(args: argparse.Namespace) -> int:
    """Run the paper's evaluation grid and write all artifacts."""
    from repro.core.campaign import paper_campaign, run_campaign

    as_json = getattr(args, "as_json", False)
    specs = paper_campaign(clusters=tuple(args.cluster))
    if not as_json:
        print(f"{len(specs)} experiments -> {args.output}")

    def progress(spec, result):
        print(
            f"  {spec.name:<48} "
            f"{result.efficiency().tokens_per_s:>10,.0f} tok/s"
        )

    campaign = run_campaign(
        specs,
        output_dir=args.output,
        on_result=None if as_json else progress,
        jobs=args.jobs,
    )
    summary_csv = campaign.directory / "summary.csv"
    if as_json:
        _emit_json({
            "experiments": len(specs),
            "summary_csv": str(summary_csv),
            "rows": campaign.summary_rows,
        })
        return 0
    print(f"summary: {summary_csv}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Render the figure bundle for one configuration."""
    from repro.viz.figures import (
        kernel_breakdown_figure,
        powerctl_timeline_figure,
        schedule_timeline_figure,
        temperature_heatmap_figure,
        thermal_timeseries_figure,
        throttle_heatmap_figure,
        throughput_comparison,
    )

    result = submit(_request_from_args(args))
    output = Path(args.output)
    label = result.parallelism.name
    throughput_comparison({label: result}, path=output / "throughput.svg")
    kernel_breakdown_figure({label: result}, path=output / "breakdown.svg")
    temperature_heatmap_figure(result, path=output / "temperature.svg")
    throttle_heatmap_figure(result, path=output / "throttling.svg")
    thermal_timeseries_figure(result, path=output / "timeseries.svg")
    names = [
        "throughput.svg", "breakdown.svg", "temperature.svg",
        "throttling.svg", "timeseries.svg",
    ]
    if result.parallelism.pp > 1:
        schedule_timeline_figure(result, path=output / "schedule.svg")
        names.append("schedule.svg")
    if result.outcome.power_control is not None:
        powerctl_timeline_figure(result, path=output / "powerctl.svg")
        names.append("powerctl.svg")
    if getattr(args, "as_json", False):
        _emit_json({
            "output": str(output),
            "figures": [str(output / name) for name in names],
        })
        return 0
    print(f"wrote {len(names)} figures to {output}")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Simulate a multi-job fleet and print the goodput/energy summary."""
    from repro.datacenter import format_fleet_summary, simulate_fleet

    request = SimRequest(
        kind="fleet",
        fleet={
            "clusters": list(args.cluster or ("h200x32",)),
            "policy": args.policy,
            "seed": args.seed,
            "num_jobs": args.num_jobs,
            "mean_interarrival_s": args.mean_arrival_s,
            "power_cap_kw": args.power_cap_kw,
            "cap_mode": args.cap_mode,
            "node_mtbf_s": args.mtbf_s,
            "repair_time_s": args.repair_s,
            "recovery_policy": args.recovery,
            "restart_delay_s": args.restart_delay_s,
            "spare_swapin_s": args.spare_swapin_s,
            "reconfig_s": args.reconfig_s,
            "gpu_clock_limit": args.gpu_clock_limit,
            "gpu_power_limit_w": args.gpu_power_limit_w,
        },
    )
    outcome = simulate_fleet(request.to_fleet_config(), jobs=args.jobs)
    telemetry_csv = timeline_svg = None
    if args.output:
        from repro.telemetry.export import write_fleet_telemetry_csv
        from repro.viz.figures import fleet_timeline_figure

        output = Path(args.output)
        telemetry_csv = write_fleet_telemetry_csv(
            outcome.samples, output / "fleet_telemetry.csv"
        )
        timeline_svg = output / "fleet_timeline.svg"
        fleet_timeline_figure(outcome, path=timeline_svg)
    if getattr(args, "as_json", False):
        payload = asdict(outcome.metrics())
        payload["telemetry_csv"] = (
            str(telemetry_csv) if telemetry_csv else None
        )
        payload["timeline_svg"] = (
            str(timeline_svg) if timeline_svg else None
        )
        _emit_json(payload)
        return 0
    print(format_fleet_summary(outcome.metrics()))
    if telemetry_csv is not None:
        print(f"telemetry     : {telemetry_csv}")
        print(f"timeline      : {timeline_svg}")
    return 0


def _powerctl_workload_kwargs(args: argparse.Namespace) -> dict:
    return dict(
        optimizations=_opts_from(args),
        microbatch_size=args.microbatch,
        global_batch_size=args.global_batch,
        iterations=args.iterations,
        settings=SimSettings(),
        jobs=args.jobs,
        # None (not "1f1b") keeps default-run cache keys unchanged.
        pipeline_schedule=(
            schedule if (schedule := getattr(
                args, "pipeline_schedule", None)) != "1f1b" else None
        ),
        seq_splits=getattr(args, "seq_splits", None),
    )


def _probe_dict(probe, baseline) -> dict:
    saving = (
        1.0 - probe.energy_j / baseline.energy_j
        if baseline.energy_j > 0 else 0.0
    )
    slowdown = (
        probe.step_time_s / baseline.step_time_s - 1.0
        if baseline.step_time_s > 0 else 0.0
    )
    return {
        "setpoint": probe.setpoint,
        "tokens_per_s": probe.tokens_per_s,
        "energy_j": probe.energy_j,
        "mean_freq_ratio": probe.mean_freq_ratio,
        "peak_temp_c": probe.peak_temp_c,
        "energy_saving_fraction": saving,
        "slowdown_fraction": slowdown,
        "feasible": probe.feasible,
    }


def _print_probe_table(probes, baseline) -> None:
    print(
        f"{'setpoint':>8} {'tok/s':>10} {'energy_J':>12} "
        f"{'clock':>6} {'peakT':>6} {'dE%':>7} {'slow%':>6}"
    )
    for probe in sorted(probes, key=lambda p: p.setpoint):
        row = _probe_dict(probe, baseline)
        flag = "" if probe.feasible else "  (infeasible)"
        print(
            f"{probe.setpoint:>8.4f} {probe.tokens_per_s:>10,.0f} "
            f"{probe.energy_j:>12,.0f} "
            f"{probe.mean_freq_ratio:>6.3f} {probe.peak_temp_c:>6.1f} "
            f"{100 * row['energy_saving_fraction']:>7.1f} "
            f"{100 * row['slowdown_fraction']:>6.1f}{flag}"
        )


def cmd_powerctl_sweep(args: argparse.Namespace) -> int:
    """Run a grid of static clock ceilings and print the table."""
    from repro.optimize import evaluate_setpoints

    rows = evaluate_setpoints(
        args.model,
        args.cluster,
        args.parallelism,
        args.setpoint,
        **_powerctl_workload_kwargs(args),
    )
    baseline = max(rows, key=lambda row: row[0])[1]
    base_eff = baseline.efficiency()
    if getattr(args, "as_json", False):
        _emit_json({
            "rows": [
                {
                    "setpoint": setpoint,
                    "tokens_per_s": result.efficiency().tokens_per_s,
                    "energy_j": result.efficiency().energy_j,
                    "tokens_per_joule":
                        result.efficiency().tokens_per_joule,
                    "mean_freq_ratio": result.stats().mean_freq_ratio,
                    "peak_temp_c": result.stats().peak_temp_c,
                }
                for setpoint, result in rows
            ],
        })
        return 0
    print(
        f"{'setpoint':>8} {'tok/s':>10} {'energy_J':>12} {'tok/J':>7} "
        f"{'clock':>6} {'peakT':>6} {'dE%':>7} {'slow%':>6}"
    )
    for setpoint, result in rows:
        eff = result.efficiency()
        stats = result.stats()
        saving = (
            100.0 * (1.0 - eff.energy_j / base_eff.energy_j)
            if base_eff.energy_j > 0 else 0.0
        )
        slowdown = 100.0 * (eff.step_time_s / base_eff.step_time_s - 1.0)
        print(
            f"{setpoint:>8.4f} {eff.tokens_per_s:>10,.0f} "
            f"{eff.energy_j:>12,.0f} {eff.tokens_per_joule:>7.3f} "
            f"{stats.mean_freq_ratio:>6.3f} {stats.peak_temp_c:>6.1f} "
            f"{saving:>7.1f} {slowdown:>6.1f}"
        )
    return 0


def cmd_powerctl_search(args: argparse.Namespace) -> int:
    """Golden-section energy-optimal setpoint search."""
    from repro.optimize import SearchSettings, optimize_setpoint

    max_slowdown = args.max_slowdown if args.max_slowdown >= 0 else None
    search = SearchSettings(
        lo=args.lo,
        hi=args.hi,
        tolerance=args.tolerance,
        edp_exponent=args.edp_exponent,
        max_slowdown=max_slowdown,
    )
    outcome = optimize_setpoint(
        args.model,
        args.cluster,
        args.parallelism,
        search=search,
        **_powerctl_workload_kwargs(args),
    )
    directory = None
    if args.output:
        directory = write_run_artifact(outcome.best_result, args.output)
        if outcome.best_result.outcome.power_control is not None:
            from repro.viz.figures import powerctl_timeline_figure

            powerctl_timeline_figure(
                outcome.best_result, path=directory / "powerctl.svg"
            )
    if getattr(args, "as_json", False):
        _emit_json({
            "best_setpoint": outcome.best.setpoint,
            "energy_saving_fraction": outcome.energy_saving_fraction,
            "slowdown_fraction": outcome.slowdown_fraction,
            "probes": [
                _probe_dict(probe, outcome.baseline)
                for probe in sorted(
                    outcome.probes, key=lambda p: p.setpoint
                )
            ],
            "iterations": outcome.iterations,
            "artifact": str(directory) if directory else None,
        })
        return 0
    print(
        f"search        : energy x delay^{search.edp_exponent:g}, "
        f"bracket [{search.lo:g}, {search.hi:g}], "
        f"{len(outcome.probes)} probes "
        f"({outcome.iterations} refinements)"
    )
    _print_probe_table(outcome.probes, outcome.baseline)
    print(
        f"best setpoint : {outcome.best.setpoint:.4f} "
        f"({100 * outcome.energy_saving_fraction:.1f}% energy saved, "
        f"{100 * outcome.slowdown_fraction:+.1f}% step time)"
    )
    if directory is not None:
        print(f"artifact      : {directory}")
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    """Joint configuration auto-search (docs/optimize.md)."""
    from repro.api import OptimizeRequest
    from repro.core.parallel import resolve_jobs
    from repro.optimize import run_optimize

    serving = None
    if args.serving is not None:
        serving = json.loads(args.serving)
    request = OptimizeRequest(
        kind=args.kind,
        model=args.model,
        cluster=args.cluster,
        objective=args.objective,
        max_slowdown=(
            None if args.max_slowdown < 0 else args.max_slowdown
        ),
        max_ttft_regression=args.max_ttft_regression,
        power_cap_w=args.power_cap_w,
        global_batch_size=args.global_batch,
        iterations=args.iterations,
        microbatch_sizes=tuple(args.microbatch),
        schedules=tuple(args.schedule) if args.schedule else None,
        parallelisms=(
            tuple(args.parallelism) if args.parallelism else None
        ),
        allow_fsdp=args.allow_fsdp,
        beam_width=args.beam_width,
        refine_top=args.refine_top,
        setpoint_lo=args.lo,
        setpoint_hi=args.hi,
        setpoint_tolerance=args.tolerance,
        replicas=tuple(args.replicas or ()),
        gpus_per_replica=tuple(args.gpus_per_replica or ()),
        serving=serving,
        timeout_s=args.timeout_s,
    )
    jobs = 1 if args.jobs == 1 else resolve_jobs(args.jobs)
    result = run_optimize(request, jobs=jobs)
    if getattr(args, "as_json", False):
        _emit_json(result.to_dict())
        return 0
    prune = result.prune
    print(
        f"search        : min {result.objective} over {prune.raw} "
        f"candidates ({args.model} on {args.cluster}, "
        f"kind={result.kind})"
    )
    print(
        f"pruned        : {prune.raw - prune.simulated}/{prune.raw} "
        f"before simulation ({100 * prune.pruned_fraction:.1f}%): "
        f"tiling {prune.pruned_tiling}, "
        f"schedule {prune.pruned_schedule}, "
        f"memory {prune.pruned_memory}, "
        f"power cap {prune.pruned_power_cap}, "
        f"ranked out {prune.ranked_out}"
    )
    print(
        f"probes        : {result.probes_total} simulations, "
        f"{result.probes_cached} answered from cache"
    )
    print(
        f"{'config':<22} {'mb':>3} {'schedule':>11} {'setpoint':>8} "
        f"{'cost':>12} {'feasible':>8}"
    )
    for c in result.candidates:
        print(
            f"{c.parallelism:<22} {c.microbatch_size:>3} "
            f"{c.pipeline_schedule or '-':>11} {c.setpoint:>8.4f} "
            f"{c.cost:>12.5g} {'yes' if c.feasible else 'no':>8}"
        )
    best = result.best
    print(
        f"best          : {best.parallelism} mb={best.microbatch_size} "
        f"{best.pipeline_schedule or '-'} @ setpoint "
        f"{best.setpoint:.4f} (cost {best.cost:.5g})"
    )
    if result.baseline is not None and result.baseline is not best:
        base = result.baseline
        print(
            f"baseline      : {base.parallelism} "
            f"mb={base.microbatch_size} "
            f"{base.pipeline_schedule or '-'} @ setpoint "
            f"{base.setpoint:.4f} (cost {base.cost:.5g})"
        )
        print(
            f"improvement   : "
            f"{100 * result.improvement_fraction:.1f}% vs the default "
            "schedule/setpoint"
        )
    return 0


def _serving_dict_from(args: argparse.Namespace) -> dict:
    """The ``SimRequest.serving`` payload the inferserve flags describe."""
    from repro.inferserve import rate_from_daily_users

    rate = args.rate
    if args.daily_users is not None:
        rate = rate_from_daily_users(args.daily_users)
    trace = dict(
        kind=args.trace,
        duration_s=args.duration_s,
        mean_rate_per_s=rate,
        seed=args.seed,
        prompt_tokens_mean=args.prompt_tokens,
        decode_tokens_mean=args.decode_tokens,
    )
    if args.diurnal_period_s is not None:
        trace["diurnal_period_s"] = args.diurnal_period_s
    batcher = dict(
        scheduler=args.scheduler,
        gpus_per_replica=args.gpus_per_replica,
        max_batch_requests=args.max_batch,
        disaggregated=args.disaggregated,
    )
    serving: dict = dict(
        trace=trace,
        batcher=batcher,
        slo=dict(ttft_p99_s=args.slo_ttft, tpot_p99_s=args.slo_tpot),
        replicas=args.replicas,
    )
    if args.autoscale:
        serving["autoscale"] = dict(
            enabled=True,
            min_replicas=args.min_replicas,
            max_replicas=args.max_replicas,
        )
    return serving


def _serving_metrics_dict(outcome) -> dict:
    return asdict(outcome.metrics())


def _print_serving_outcome(outcome) -> None:
    metrics = outcome.metrics()
    print(
        f"requests      : {metrics.arrived} arrived, "
        f"{metrics.completed} completed, {metrics.rejected} rejected, "
        f"{metrics.preemptions} preemption(s)"
    )
    print(
        f"goodput       : {metrics.goodput_per_s:.2f} req/s within SLO "
        f"({100 * metrics.slo_attainment:.1f}% attainment)"
    )
    print(
        f"latency       : TTFT p50 {metrics.ttft_p50_s:.3f} s / "
        f"p99 {metrics.ttft_p99_s:.3f} s, TPOT p99 "
        f"{metrics.tpot_p99_s * 1e3:.1f} ms, E2E p99 "
        f"{metrics.e2e_p99_s:.2f} s"
    )
    print(
        f"energy        : {metrics.energy_j:,.0f} J total, "
        f"{metrics.energy_per_token_j:.3f} J/token, "
        f"mean {metrics.mean_power_w / 1e3:.2f} kW"
    )
    print(
        f"replicas      : {len(outcome.replicas)} used, "
        f"{len(outcome.scale_events)} scale event(s), "
        f"{metrics.active_replica_seconds:,.0f} replica-seconds"
    )


def _write_serving_artifacts(outcome, output: str) -> dict:
    from repro.telemetry.export import (
        write_serving_requests_csv,
        write_serving_timeline_csv,
    )
    from repro.viz.figures import serving_timeline_figure

    directory = Path(output)
    paths = {
        "requests_csv": str(
            write_serving_requests_csv(
                outcome, directory / "serving_requests.csv"
            )
        ),
        "timeline_csv": str(
            write_serving_timeline_csv(
                outcome, directory / "serving_timeline.csv"
            )
        ),
        "figure": str(directory / "serving.svg"),
    }
    serving_timeline_figure(outcome, path=directory / "serving.svg")
    return paths


def cmd_inferserve_run(args: argparse.Namespace) -> int:
    """Simulate one serving deployment and print its headline metrics."""
    request = SimRequest(
        kind="serving",
        model=args.model,
        cluster=args.cluster,
        freq_setpoint=args.freq_setpoint,
        serving=_serving_dict_from(args),
    )
    outcome = submit(request)
    artifacts = {}
    if args.output:
        artifacts = _write_serving_artifacts(outcome, args.output)
    if getattr(args, "as_json", False):
        payload = _serving_metrics_dict(outcome)
        payload["digest"] = request.digest()
        payload.update(artifacts)
        _emit_json(payload)
        return 0
    print(f"deployment    : {request.label}")
    _print_serving_outcome(outcome)
    for name, path in artifacts.items():
        print(f"{name:<14}: {path}")
    return 0


def cmd_inferserve_sweep(args: argparse.Namespace) -> int:
    """Sweep DVFS setpoints (optionally refine with the golden search)."""
    serving = _serving_dict_from(args)
    requests = [
        SimRequest(
            kind="serving",
            model=args.model,
            cluster=args.cluster,
            freq_setpoint=setpoint,
            serving=serving,
        )
        for setpoint in args.setpoint
    ]
    outcomes = submit_many(requests, jobs=args.jobs)
    rows = list(zip(args.setpoint, outcomes))
    search_outcome = None
    if args.search:
        from repro.inferserve import ServingConfig
        from repro.optimize import (
            ServingSearchSettings,
            optimize_serving_setpoint,
        )

        settings = ServingSearchSettings(
            lo=min(args.setpoint),
            hi=max(args.setpoint),
            max_ttft_regression=args.max_ttft_regression,
        )
        search_outcome = optimize_serving_setpoint(
            args.model,
            args.cluster,
            ServingConfig.from_dict(serving),
            settings=settings,
            jobs=args.jobs,
        )
    if getattr(args, "as_json", False):
        payload: dict = {
            "rows": [
                dict(setpoint=setpoint, **_serving_metrics_dict(outcome))
                for setpoint, outcome in rows
            ],
        }
        if search_outcome is not None:
            payload["search"] = {
                "best_setpoint": search_outcome.best.setpoint,
                "energy_saving_fraction":
                    search_outcome.energy_saving_fraction,
                "ttft_regression_fraction":
                    search_outcome.ttft_regression_fraction,
                "iterations": search_outcome.iterations,
                "probes": len(search_outcome.probes),
            }
        _emit_json(payload)
        return 0
    baseline = max(rows, key=lambda row: row[0])[1].metrics()
    print(
        f"{'setpoint':>8} {'goodput':>8} {'attain%':>8} {'ttft99':>8} "
        f"{'J/token':>8} {'dE%':>7}"
    )
    for setpoint, outcome in rows:
        metrics = outcome.metrics()
        saving = (
            100.0 * (1.0 - metrics.energy_per_token_j
                     / baseline.energy_per_token_j)
            if baseline.energy_per_token_j > 0 else 0.0
        )
        print(
            f"{setpoint:>8.4f} {metrics.goodput_per_s:>8.2f} "
            f"{100 * metrics.slo_attainment:>8.1f} "
            f"{metrics.ttft_p99_s:>8.3f} "
            f"{metrics.energy_per_token_j:>8.3f} {saving:>7.1f}"
        )
    if search_outcome is not None:
        print(
            f"best setpoint : {search_outcome.best.setpoint:.4f} "
            f"({100 * search_outcome.energy_saving_fraction:.1f}% "
            "energy/token saved, "
            f"{100 * search_outcome.ttft_regression_fraction:+.1f}% "
            "p99 TTFT)"
        )
    return 0


def _recovery_config_from(args: argparse.Namespace):
    from repro.resilience.recovery import RecoveryConfig

    return RecoveryConfig(
        policy=getattr(args, "policy", "failstop"),
        total_iterations=args.total_iterations,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_bw_gb_s=args.checkpoint_bw_gb_s,
        repair_time_s=args.repair_s,
        restart_delay_s=args.restart_delay_s,
        spare_swapin_s=args.spare_swapin_s,
        reconfig_s=args.reconfig_s,
        mtbf_s=getattr(args, "mtbf_s", 0.0) or 0.0,
        fault_times_s=tuple(getattr(args, "fault_at", None) or ()),
        seed=args.seed,
    )


def _probe_kwargs_from(args: argparse.Namespace) -> dict:
    return dict(
        global_batch_size=args.global_batch,
        microbatch_size=args.microbatch,
    )


def _resilience_run_dict(run) -> dict:
    return {
        "policy": run.policy,
        "mtbf_s": run.mtbf_s,
        "faults_seen": run.faults_seen,
        "hangs_detected": run.hangs_detected,
        "completed": run.completed,
        "replayed": run.replayed,
        "lost": run.lost,
        "scheduled": run.scheduled,
        "makespan_s": run.makespan_s,
        "ideal_makespan_s": run.ideal_makespan_s,
        "goodput_fraction": run.goodput_fraction,
        "energy_per_token_j": run.energy_per_token_j,
        "checkpoint_writes": run.checkpoint_writes,
        "checkpoint_write_s": run.checkpoint_write_s,
    }


def _print_resilience_run(run) -> None:
    print(f"policy        : {run.policy}")
    print(
        f"faults        : {run.faults_seen} seen, "
        f"{run.hangs_detected} hang(s) detected"
    )
    print(
        f"iterations    : {run.completed} completed + {run.replayed} "
        f"replayed + {run.lost} lost = {run.scheduled} scheduled"
    )
    print(
        f"makespan      : {run.makespan_s:,.1f} s "
        f"(fault-free {run.ideal_makespan_s:,.1f} s)"
    )
    print(f"goodput       : {100 * run.goodput_fraction:.1f}% of fault-free")
    print(f"energy/token  : {run.energy_per_token_j:.4f} J")
    print(
        f"checkpoints   : {run.checkpoint_writes} writes x "
        f"{run.checkpoint_write_s:.2f} s"
    )


def cmd_resilience_run(args: argparse.Namespace) -> int:
    """Walk one recovery policy over one fault schedule."""
    from repro.resilience.recovery import simulate_recovery

    if args.mtbf_s and args.fault_at:
        raise ValueError(
            "--mtbf-s and --fault-at are exclusive: give either a "
            "failure rate or explicit fault times"
        )
    run = simulate_recovery(
        args.model, args.cluster, args.parallelism,
        _recovery_config_from(args), **_probe_kwargs_from(args),
    )
    csv_path = None
    if args.output:
        from repro.telemetry.export import write_resilience_csv

        csv_path = write_resilience_csv(
            [run], Path(args.output) / "resilience.csv"
        )
    if getattr(args, "as_json", False):
        payload = _resilience_run_dict(run)
        payload["csv"] = str(csv_path) if csv_path else None
        _emit_json(payload)
        return 0
    _print_resilience_run(run)
    if csv_path is not None:
        print(f"csv           : {csv_path}")
    return 0


def cmd_resilience_sweep(args: argparse.Namespace) -> int:
    """Compare every recovery policy across an MTBF grid."""
    from repro.resilience.recovery import POLICIES, sweep_mtbf
    from repro.suggest import unknown_name_message

    policies = tuple(args.policies or POLICIES)
    for policy in policies:
        if policy not in POLICIES:
            raise ValueError(
                "--policy: "
                + unknown_name_message("recovery policy", policy, POLICIES)
            )
    rows = sweep_mtbf(
        args.model, args.cluster, args.parallelism,
        args.mtbf_grid, _recovery_config_from(args),
        policies=policies, **_probe_kwargs_from(args),
    )
    csv_path = figure_path = None
    if args.output:
        from repro.telemetry.export import write_resilience_csv
        from repro.viz.figures import mtbf_goodput_figure

        output = Path(args.output)
        runs = [row[policy] for row in rows for policy in policies]
        csv_path = write_resilience_csv(runs, output / "resilience.csv")
        figure_path = output / "mtbf_goodput.svg"
        mtbf_goodput_figure(rows, path=figure_path)
    if getattr(args, "as_json", False):
        _emit_json({
            "rows": [
                _resilience_run_dict(row[policy])
                for row in rows
                for policy in policies
            ],
            "csv": str(csv_path) if csv_path else None,
            "figure": str(figure_path) if figure_path else None,
        })
        return 0
    header = f"{'mtbf_s':>8}"
    for policy in policies:
        header += f" {policy + ' good%':>16} {'lost':>5}"
    print(header)
    for row in rows:
        mtbf = row[policies[0]].mtbf_s
        line = f"{mtbf:>8,.0f}"
        for policy in policies:
            run = row[policy]
            line += (
                f" {100 * run.goodput_fraction:>15.1f}% {run.lost:>5}"
            )
        print(line)
    if csv_path is not None:
        print(f"csv           : {csv_path}")
        print(f"figure        : {figure_path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation broker as a long-lived HTTP service."""
    from repro.serve import BrokerConfig, BrokerServer

    # The deployed service runs with the self-healing stack on (crash
    # retries, circuit breakers, degraded answers); the library-level
    # BrokerConfig defaults keep them off for embedders and tests.
    config = BrokerConfig(
        concurrency=max(args.concurrency, args.workers),
        queue_limit=args.queue_limit,
        default_timeout_s=(
            args.timeout_s if args.timeout_s > 0 else None
        ),
        use_processes=not args.inline,
        workers=args.workers,
        slo_target_s=(
            args.slo_target_s if args.slo_target_s > 0 else None
        ),
        retry_attempts=args.retry_attempts,
        breaker_failures=args.breaker_failures,
        hedge_s=args.hedge_s if args.hedge_s > 0 else None,
        degraded=not args.no_degraded,
    )
    server = BrokerServer(
        config, host=args.host, port=args.port, verbose=True
    )
    if args.worker_listen > 0:
        if not args.worker_authkey:
            print(
                "error: --worker-listen requires --worker-authkey",
                file=sys.stderr,
            )
            server.stop()
            return 2
        if server.broker.pool is None:
            print(
                "error: --worker-listen requires --workers >= 1 "
                "(remote workers join the local pool)",
                file=sys.stderr,
            )
            server.stop()
            return 2
        host, port = server.broker.pool.listen(
            (args.host, args.worker_listen),
            args.worker_authkey.encode(),
        )
        print(
            f"accepting remote workers on {host}:{port} "
            "(python -m repro worker --connect ...)"
        )
    print(
        f"serving on http://{server.address} "
        "(POST /v1/simulate, GET /v1/status, GET /v1/metrics; "
        "Ctrl-C to stop)"
    )
    server.run()
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Join a broker's worker pool from this host (TCP).

    By default a lost broker (restart, network partition) is re-dialled
    with capped full-jitter backoff instead of killing the worker; each
    connection-state change is logged as one structured JSON line on
    stderr so supervisors can alert on ``reconnect_wait`` storms.
    """
    from repro.chaos.policies import RetryPolicy
    from repro.serve import serve_worker

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(
            f"error: --connect must be HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2

    def log_event(event: dict) -> None:
        print(json.dumps({"worker": True, **event}), file=sys.stderr)

    print(f"joining worker pool at {host}:{port} (Ctrl-C to leave)")
    try:
        serve_worker(
            (host, int(port)),
            args.authkey.encode(),
            reconnect=not args.no_reconnect,
            retry=RetryPolicy(
                attempts=2, base_s=0.5,
                cap_s=max(0.5, args.retry_cap_s),
            ),
            max_retries=(
                args.max_retries if args.max_retries >= 0 else None
            ),
            on_event=log_event,
        )
    except KeyboardInterrupt:
        pass
    except (ConnectionError, OSError) as error:
        print(f"error: could not join pool: {error}", file=sys.stderr)
        return 3
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run seeded fault-injection scenarios against the serve stack."""
    from repro.chaos import SCENARIOS, get_scenario, run_scenario

    if args.list:
        if args.as_json:
            _emit_json({
                name: scenario.description
                for name, scenario in sorted(SCENARIOS.items())
            })
        else:
            for name, scenario in sorted(SCENARIOS.items()):
                print(f"{name:<14} {scenario.description}")
        return 0
    names = args.scenario or ["soak"]
    scenarios = [get_scenario(name) for name in names]
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    scratch = None
    if cache_dir is None:
        # Corruption faults must never touch a real cache.
        scratch = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        cache_dir = scratch.name
    reports = []
    try:
        for scenario in scenarios:
            if not args.as_json:
                print(f"running {scenario.name} "
                      f"(seed {args.seed}, {args.requests} requests, "
                      f"{args.workers} workers)...")
            report = run_scenario(
                scenario,
                seed=args.seed,
                requests=args.requests,
                workers=args.workers,
                cache_dir=cache_dir,
            )
            reports.append(report)
            if not args.as_json:
                print(report.describe())
    finally:
        if scratch is not None:
            scratch.cleanup()
    payload = {
        "seed": args.seed,
        "requests": args.requests,
        "workers": args.workers,
        "scenarios": [report.to_dict() for report in reports],
        "survived": all(report.survived for report in reports),
    }
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2))
        if not args.as_json:
            print(f"wrote {args.out}")
    if args.as_json:
        _emit_json(payload)
    return 0 if payload["survived"] else 3


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the persistent result cache."""
    from repro.core.store import result_store

    store = result_store()
    as_json = getattr(args, "as_json", False)
    if args.action == "clear":
        removed = store.clear()
        if as_json:
            _emit_json({"removed": removed, "root": str(store.root)})
        else:
            print(f"removed {removed} cached results from {store.root}")
        return 0
    stats = store.stats()
    if as_json:
        _emit_json({
            "root": str(stats.root),
            "schema_version": stats.schema_version,
            "entries": stats.entries,
            "total_mb": stats.total_mb,
            "stale_entries": stats.stale_entries,
            "quarantined_entries": stats.quarantined_entries,
            "entries_by_version": dict(stats.entries_by_version),
        })
        return 0
    print(f"cache root    : {stats.root}")
    print(f"schema        : v{stats.schema_version}")
    print(f"entries       : {stats.entries}")
    print(f"size          : {stats.total_mb:.1f} MiB")
    for version, count in stats.entries_by_version:
        marker = (
            "" if version == f"v{stats.schema_version}" else " (stale)"
        )
        print(f"  {version:<11} : {count}{marker}")
    if stats.stale_entries:
        print(
            f"stale entries : {stats.stale_entries} "
            "(older schema; 'repro cache clear' removes them)"
        )
    if stats.quarantined_entries:
        print(
            f"quarantined   : {stats.quarantined_entries} corrupt "
            "entries moved aside (recomputed on next use; 'repro cache "
            "clear' removes them)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "CharLLM-PPT: power/performance/thermal characterization of "
            "distributed LLM training on a simulated testbed"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Shared flag groups, declared once and attached via parents=[...]:
    # every result-producing subcommand speaks the same --json / --jobs /
    # cache dialect (the CLI consistency contract in docs/api.md).
    json_flags = argparse.ArgumentParser(add_help=False)
    json_flags.add_argument(
        "--json", dest="as_json", action="store_true",
        help="print a machine-readable JSON summary to stdout",
    )
    jobs_flags = argparse.ArgumentParser(add_help=False)
    jobs_flags.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for simulations (0 = auto: cpu_count-1)",
    )
    cache_flags = argparse.ArgumentParser(add_help=False)
    cache_flags.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent result store for this invocation",
    )
    cache_flags.add_argument(
        "--cache-dir", default=None,
        help="redirect the persistent result store "
             "(default: .repro_cache, or $REPRO_CACHE_DIR)",
    )
    sim_parents = [json_flags, jobs_flags, cache_flags]

    catalog = subparsers.add_parser(
        "catalog", help="list models and clusters", parents=[json_flags]
    )
    catalog.set_defaults(func=cmd_catalog)

    configs = subparsers.add_parser(
        "configs", help="list valid parallelism configurations",
        parents=[json_flags],
    )
    configs.add_argument("--model", required=True)
    configs.add_argument("--cluster", required=True)
    configs.add_argument("--microbatch", type=int, default=1)
    configs.add_argument("--act", action="store_true")
    configs.set_defaults(func=cmd_configs)

    run = subparsers.add_parser(
        "run", help="run one experiment", parents=sim_parents
    )
    _add_run_arguments(run)
    run.add_argument("--output", default=None,
                     help="write an artifact directory here")
    run.set_defaults(func=cmd_run)

    sweep = subparsers.add_parser(
        "sweep", help="run a strategy x microbatch x schedule grid",
        parents=sim_parents,
    )
    sweep.add_argument("--model", required=True)
    sweep.add_argument("--cluster", required=True)
    sweep.add_argument(
        "--parallelism", action="append", required=True,
        help="repeatable: one strategy per flag",
    )
    sweep.add_argument(
        "--microbatch", type=int, nargs="+", default=[1],
    )
    sweep.add_argument(
        "--pipeline-schedule", action="append", default=None,
        help="repeatable sweep axis: one registered schedule per flag "
             "(default: 1f1b only)",
    )
    sweep.add_argument("--global-batch", type=int, default=128)
    sweep.add_argument("--iterations", type=int, default=2)
    sweep.add_argument("--act", action="store_true")
    sweep.add_argument("--cc", action="store_true")
    sweep.add_argument("--lora", action="store_true")
    sweep.set_defaults(func=cmd_sweep, fail_node=None)

    figures = subparsers.add_parser(
        "figures", help="render the SVG figure bundle for one run",
        parents=sim_parents,
    )
    _add_run_arguments(figures)
    figures.add_argument("--output", required=True)
    figures.set_defaults(func=cmd_figures)

    full_sweep = subparsers.add_parser(
        "full-sweep",
        help="run the paper's evaluation grid and write all artifacts",
        parents=sim_parents,
    )
    full_sweep.add_argument(
        "--cluster", action="append", required=True,
        help="repeatable: h200x32/h100x64 together, or mi250x32",
    )
    full_sweep.add_argument("--output", required=True)
    full_sweep.set_defaults(func=cmd_full_sweep)

    fleet = subparsers.add_parser(
        "fleet",
        help="simulate a multi-job fleet with power/thermal-aware placement",
        parents=sim_parents,
    )
    fleet.add_argument(
        "--policy", default="packed",
        choices=("packed", "spread", "thermal-aware"),
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--cluster", action="append", default=None,
        help="repeatable: clusters in the fleet pool (default h200x32)",
    )
    fleet.add_argument("--num-jobs", type=int, default=12,
                       help="number of arriving jobs")
    fleet.add_argument("--mean-arrival-s", type=float, default=20.0,
                       help="mean interarrival time (exponential)")
    fleet.add_argument(
        "--power-cap-kw", type=float, default=None,
        help="facility power cap in kW (default: uncapped)",
    )
    fleet.add_argument("--cap-mode", default="defer",
                       choices=("defer", "cap"))
    fleet.add_argument("--mtbf-s", "--node-mtbf-s", dest="mtbf_s",
                       type=float, default=0.0,
                       help="per-node mean time between failures (0 = off)")
    fleet.add_argument("--repair-s", "--repair-time-s", dest="repair_s",
                       type=float, default=180.0,
                       help="node repair time after a fault")
    fleet.add_argument(
        "--recovery", default="failstop",
        help="recovery policy for fault-interrupted jobs: failstop "
             "(default), hot-spare, or elastic",
    )
    fleet.add_argument("--restart-delay-s", type=float, default=0.0,
                       help="failstop: restore delay before requeue")
    fleet.add_argument("--spare-swapin-s", type=float, default=0.0,
                       help="hot-spare: swap-in delay before requeue")
    fleet.add_argument("--reconfig-s", type=float, default=0.0,
                       help="elastic: re-group delay before requeue")
    fleet.add_argument(
        "--gpu-clock-limit", type=float, default=None,
        help="fleet-wide static clock ceiling applied to every placed "
             "job (composes with the facility power cap)",
    )
    fleet.add_argument(
        "--gpu-power-limit-w", type=float, default=None,
        help="fleet-wide per-GPU board power limit in W "
             "(overrides --gpu-clock-limit)",
    )
    fleet.add_argument("--output", default=None,
                       help="write fleet telemetry CSV + timeline SVG here")
    fleet.set_defaults(func=cmd_fleet)

    powerctl = subparsers.add_parser(
        "powerctl",
        help="GPU power management: setpoint sweeps and the "
             "energy-optimal search (docs/powerctl.md)",
    )
    modes = powerctl.add_subparsers(dest="mode", required=True)

    pc_sweep = modes.add_parser(
        "sweep", help="run a grid of static clock ceilings",
        parents=sim_parents,
    )
    _add_workload_arguments(pc_sweep)
    pc_sweep.add_argument(
        "--setpoint", type=float, nargs="+",
        default=[0.6, 0.7, 0.8, 0.9, 1.0],
        help="clock-ratio ceilings to evaluate",
    )
    pc_sweep.set_defaults(func=cmd_powerctl_sweep)

    pc_search = modes.add_parser(
        "search",
        help="golden-section search for the energy-optimal setpoint",
        parents=sim_parents,
    )
    _add_workload_arguments(pc_search)
    pc_search.add_argument("--lo", type=float, default=0.55,
                           help="lower bracket bound")
    pc_search.add_argument("--hi", type=float, default=1.0,
                           help="upper bracket bound")
    pc_search.add_argument("--tolerance", type=float, default=0.03,
                           help="stop when the bracket is this narrow")
    pc_search.add_argument(
        "--edp-exponent", type=float, default=1.0,
        help="n in the energy x delay^n cost (0 = pure energy)",
    )
    pc_search.add_argument(
        "--max-slowdown", type=float, default=0.05,
        help="max step-time inflation vs uncapped (negative = unbounded)",
    )
    pc_search.add_argument(
        "--output", default=None,
        help="write the best run's artifact + powerctl figure here",
    )
    pc_search.set_defaults(func=cmd_powerctl_search)

    optimize = subparsers.add_parser(
        "optimize",
        help="joint auto-search: plan x microbatch x schedule x "
             "setpoint under constraints (docs/optimize.md)",
        parents=sim_parents,
    )
    optimize.add_argument("--model", required=True,
                          help="catalog model name")
    optimize.add_argument("--cluster", required=True,
                          help="catalog cluster name")
    optimize.add_argument(
        "--kind", choices=["training", "serving"], default="training",
        help="search a training plan grid or a serving deployment grid",
    )
    optimize.add_argument(
        "--objective", default="energy_delay",
        help="energy | energy_delay | energy_delay^N | time | "
             "energy_per_token (serving)",
    )
    optimize.add_argument(
        "--max-slowdown", type=float, default=0.05,
        help="max step-time inflation vs the fastest simulated plan "
             "(negative = unbounded)",
    )
    optimize.add_argument(
        "--max-ttft-regression", type=float, default=0.05,
        help="serving: max p99 TTFT inflation during setpoint "
             "refinement",
    )
    optimize.add_argument(
        "--power-cap-w", type=float, default=None,
        help="facility power cap on the cluster's mean draw",
    )
    optimize.add_argument("--global-batch", type=int, default=32)
    optimize.add_argument("--iterations", type=int, default=2)
    optimize.add_argument(
        "--microbatch", type=int, nargs="+", default=[1, 2, 4],
        help="microbatch sizes on the grid",
    )
    optimize.add_argument(
        "--schedule", action="append", default=None,
        help="pin the schedule axis (repeatable; default: every "
             "registered pipeline schedule)",
    )
    optimize.add_argument(
        "--parallelism", action="append", default=None,
        help="pin the plan axis to explicit strategies (repeatable; "
             "default: every tiling-valid layout)",
    )
    optimize.add_argument("--allow-fsdp", action="store_true",
                          help="include FSDP layouts in the plan axis")
    optimize.add_argument(
        "--beam-width", type=int, default=4,
        help="distinct layouts simulated after analytic ranking",
    )
    optimize.add_argument(
        "--refine-top", type=int, default=2,
        help="feasible plans given the golden-section setpoint search",
    )
    optimize.add_argument("--lo", type=float, default=0.55,
                          help="setpoint bracket lower bound")
    optimize.add_argument("--hi", type=float, default=1.0,
                          help="setpoint bracket upper bound")
    optimize.add_argument("--tolerance", type=float, default=0.03,
                          help="setpoint bracket width at convergence")
    optimize.add_argument(
        "--replicas", type=int, nargs="+", default=None,
        help="serving: replica counts on the deployment grid",
    )
    optimize.add_argument(
        "--gpus-per-replica", type=int, nargs="+", default=None,
        help="serving: per-replica GPU counts on the deployment grid",
    )
    optimize.add_argument(
        "--serving", default=None,
        help="serving: ServingConfig JSON (catalog defaults when "
             "omitted)",
    )
    optimize.add_argument("--timeout-s", type=float, default=None,
                          help="broker deadline when served over HTTP")
    optimize.set_defaults(func=cmd_optimize)

    inferserve = subparsers.add_parser(
        "inferserve",
        help="LLM serving: continuous batching, SLO goodput, and "
             "energy-per-token under DVFS (docs/inferserve.md)",
    )
    is_modes = inferserve.add_subparsers(dest="mode", required=True)

    def _add_serving_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--model", required=True,
                         help="catalog model name")
        sub.add_argument("--cluster", required=True,
                         help="catalog cluster name")
        sub.add_argument(
            "--trace", default="poisson",
            choices=("poisson", "diurnal", "bursty"),
            help="arrival process",
        )
        sub.add_argument("--duration-s", type=float, default=600.0,
                         help="simulated horizon")
        sub.add_argument("--rate", type=float, default=1.0,
                         help="mean request arrival rate per second")
        sub.add_argument(
            "--daily-users", type=float, default=None,
            help="size the mean rate from users/day instead of --rate",
        )
        sub.add_argument(
            "--diurnal-period-s", type=float, default=None,
            help="diurnal cycle length (default: 24 h)",
        )
        sub.add_argument("--seed", type=int, default=0,
                         help="trace seed")
        sub.add_argument("--prompt-tokens", type=int, default=512,
                         help="mean prompt length")
        sub.add_argument("--decode-tokens", type=int, default=128,
                         help="mean decode length")
        sub.add_argument("--replicas", type=int, default=2,
                         help="initial model replicas")
        sub.add_argument("--gpus-per-replica", type=int, default=4,
                         help="tensor-parallel width of one replica")
        sub.add_argument("--max-batch", type=int, default=64,
                         help="in-flight request ceiling per replica")
        sub.add_argument(
            "--scheduler", default="continuous",
            choices=("continuous", "run_to_completion"),
            help="batching discipline",
        )
        sub.add_argument(
            "--disaggregated", action="store_true",
            help="split replicas into prefill and decode pools",
        )
        sub.add_argument(
            "--autoscale", action="store_true",
            help="enable the reactive queue-depth autoscaler",
        )
        sub.add_argument("--min-replicas", type=int, default=1)
        sub.add_argument("--max-replicas", type=int, default=64)
        sub.add_argument("--slo-ttft", type=float, default=2.0,
                         help="p99 TTFT target in seconds")
        sub.add_argument("--slo-tpot", type=float, default=0.2,
                         help="p99 TPOT target in seconds")

    is_run = is_modes.add_parser(
        "run", help="simulate one serving deployment",
        parents=sim_parents,
    )
    _add_serving_arguments(is_run)
    is_run.add_argument("--freq-setpoint", type=float, default=1.0,
                        help="DVFS clock cap for every serving GPU")
    is_run.add_argument(
        "--output", default=None,
        help="write request/timeline CSVs + serving figure here",
    )
    is_run.set_defaults(func=cmd_inferserve_run)

    is_sweep = is_modes.add_parser(
        "sweep",
        help="sweep DVFS setpoints for energy-per-token "
             "(--search refines with the golden-section search)",
        parents=sim_parents,
    )
    _add_serving_arguments(is_sweep)
    is_sweep.add_argument(
        "--setpoint", type=float, nargs="+",
        default=[0.6, 0.7, 0.8, 0.9, 1.0],
        help="clock-ratio ceilings to evaluate",
    )
    is_sweep.add_argument(
        "--search", action="store_true",
        help="run the golden-section energy-per-token search over "
             "the setpoint bracket",
    )
    is_sweep.add_argument(
        "--max-ttft-regression", type=float, default=0.05,
        help="admissible p99 TTFT inflation for the search",
    )
    is_sweep.set_defaults(func=cmd_inferserve_sweep)

    resilience = subparsers.add_parser(
        "resilience",
        help="fault timelines and checkpoint/restart recovery policies "
             "(docs/resilience.md)",
    )
    res_modes = resilience.add_subparsers(dest="mode", required=True)

    def _add_resilience_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--model", required=True,
                         help="catalog model name")
        sub.add_argument("--cluster", required=True,
                         help="catalog cluster name")
        sub.add_argument("--parallelism", required=True,
                         help="paper-style strategy, e.g. TP4-PP2")
        sub.add_argument("--microbatch", type=int, default=1)
        sub.add_argument("--global-batch", type=int, default=16)
        sub.add_argument("--total-iterations", type=int, default=200,
                         help="optimizer steps the job owes")
        sub.add_argument("--checkpoint-interval", type=int, default=10,
                         help="iterations between checkpoint writes")
        sub.add_argument("--checkpoint-bw-gb-s", type=float, default=25.0,
                         help="effective checkpoint write bandwidth")
        sub.add_argument("--repair-s", "--repair-time-s", dest="repair_s",
                         type=float, default=900.0,
                         help="failstop: node repair time")
        sub.add_argument("--restart-delay-s", type=float, default=120.0,
                         help="failstop: job restart delay after repair")
        sub.add_argument("--spare-swapin-s", type=float, default=180.0,
                         help="hot-spare: spare swap-in time")
        sub.add_argument("--reconfig-s", type=float, default=15.0,
                         help="elastic: DP re-group time")
        sub.add_argument("--seed", type=int, default=0,
                         help="fault schedule seed")
        sub.add_argument("--output", default=None,
                         help="write resilience CSV (and figure) here")

    res_run = res_modes.add_parser(
        "run", help="walk one recovery policy over one fault schedule",
        parents=[json_flags, cache_flags],
    )
    _add_resilience_arguments(res_run)
    res_run.add_argument(
        "--policy", default="failstop",
        help="recovery policy: failstop, hot-spare, or elastic",
    )
    res_run.add_argument(
        "--mtbf-s", "--node-mtbf-s", dest="mtbf_s",
        type=float, default=0.0,
        help="per-node mean time between failures (0 = fault-free)",
    )
    res_run.add_argument(
        "--fault-at", type=float, nargs="+", default=None,
        help="explicit fault onset seconds (exclusive with --mtbf-s)",
    )
    res_run.set_defaults(func=cmd_resilience_run)

    res_sweep = res_modes.add_parser(
        "sweep", help="compare recovery policies across an MTBF grid",
        parents=[json_flags, cache_flags],
    )
    _add_resilience_arguments(res_sweep)
    res_sweep.add_argument(
        "--mtbf-s", "--node-mtbf-s", dest="mtbf_grid",
        type=float, nargs="+", required=True,
        help="MTBF grid points in seconds",
    )
    res_sweep.add_argument(
        "--policy", action="append", dest="policies", default=None,
        help="repeatable: policies to compare (default: all three)",
    )
    res_sweep.set_defaults(func=cmd_resilience_sweep)

    serve = subparsers.add_parser(
        "serve",
        help="run the simulation broker as an HTTP service "
             "(POST /v1/simulate; docs/api.md)",
        parents=[cache_flags],
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address")
    serve.add_argument("--port", type=int, default=8053,
                       help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--concurrency", type=int, default=2,
        help="simulations executing at once",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=16,
        help="waiting requests before new misses are rejected (429)",
    )
    serve.add_argument(
        "--timeout-s", type=float, default=300.0,
        help="default per-request deadline (0 = unlimited)",
    )
    serve.add_argument(
        "--inline", action="store_true",
        help="execute in-process instead of supervised worker "
             "processes (no kill-on-timeout; mainly for debugging)",
    )
    serve.add_argument(
        "--workers", type=int, default=0,
        help="persistent worker-pool processes executing misses "
             "(0 = fork one supervised child per request); raises "
             "--concurrency to match when larger",
    )
    serve.add_argument(
        "--slo-target-s", type=float, default=0.0,
        help="reject misses whose predicted wait (queue depth x mean "
             "service time) exceeds this bound with 429 + Retry-After "
             "(0 = disabled)",
    )
    serve.add_argument(
        "--worker-listen", type=int, default=0,
        help="also accept remote TCP workers on this port "
             "(requires --workers and --worker-authkey)",
    )
    serve.add_argument(
        "--worker-authkey", default="",
        help="shared secret authenticating remote workers",
    )
    serve.add_argument(
        "--retry-attempts", type=int, default=3,
        help="execution attempts per miss after worker crashes "
             "(1 = never retry)",
    )
    serve.add_argument(
        "--breaker-failures", type=int, default=5,
        help="consecutive execution failures that open the broker's "
             "circuit breaker (0 = disabled)",
    )
    serve.add_argument(
        "--hedge-s", type=float, default=0.0,
        help="hedged requests: duplicate a pool dispatch that has not "
             "answered after this many seconds, first answer wins "
             "(0 = disabled; needs --workers)",
    )
    serve.add_argument(
        "--no-degraded", action="store_true",
        help="return structured errors instead of degraded "
             "(stale-cache / analytic) answers when execution fails",
    )
    serve.set_defaults(func=cmd_serve)

    worker = subparsers.add_parser(
        "worker",
        help="join a remote broker's worker pool over TCP "
             "(the other side of 'repro serve --worker-listen')",
    )
    worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the broker's --worker-listen address",
    )
    worker.add_argument(
        "--authkey", required=True,
        help="shared secret (must match the broker's --worker-authkey)",
    )
    worker.add_argument(
        "--no-reconnect", action="store_true",
        help="exit when the broker connection is lost instead of "
             "re-dialling with capped backoff",
    )
    worker.add_argument(
        "--retry-cap-s", type=float, default=30.0,
        help="ceiling on the jittered reconnect backoff delay",
    )
    worker.add_argument(
        "--max-retries", type=int, default=-1,
        help="give up after this many consecutive failed reconnect "
             "dials (-1 = keep trying)",
    )
    worker.set_defaults(func=cmd_worker)

    chaos = subparsers.add_parser(
        "chaos",
        help="run seeded fault-injection scenarios against the serve "
             "stack and report survival (docs/chaos.md)",
        parents=[json_flags, cache_flags],
    )
    chaos.add_argument(
        "--scenario", action="append", default=None,
        help="repeatable: scenario name from --list (default: soak)",
    )
    chaos.add_argument(
        "--list", action="store_true",
        help="list the registered scenarios and exit",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-injection seed")
    chaos.add_argument(
        "--requests", type=int, default=50,
        help="requests driven through the broker per scenario",
    )
    chaos.add_argument(
        "--workers", type=int, default=4,
        help="local worker-pool processes behind the broker",
    )
    chaos.add_argument(
        "--out", default=None,
        help="also write the full JSON report to this path",
    )
    chaos.set_defaults(func=cmd_chaos)

    cache = subparsers.add_parser(
        "cache",
        help="inspect or clear the persistent result cache (.repro_cache)",
        parents=[json_flags, cache_flags],
    )
    cache.add_argument(
        "action", nargs="?", default="stats", choices=("stats", "clear"),
        help="stats (default) prints entry count and size; "
             "clear deletes every cached result",
    )
    cache.set_defaults(func=cmd_cache)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes: 0 ok, 2 bad arguments (also argparse's own code for
    unparseable flags), 3 simulation/runtime failure.
    """
    from repro.core.store import persistence_enabled, set_persistence

    parser = build_parser()
    args = parser.parse_args(argv)
    prior_persistence = persistence_enabled()
    if getattr(args, "cache_dir", None):
        os.environ["REPRO_CACHE_DIR"] = str(args.cache_dir)
    if getattr(args, "no_cache", False):
        set_persistence(False)
    try:
        return args.func(args)
    except (KeyError, ValueError) as error:
        print(f"error: {_flagify(f'{error}')}", file=sys.stderr)
        return 2
    except (RuntimeError, TimeoutError) as error:
        # Simulation/runtime failures (worker crashes, deadlines,
        # unplaceable fleets) — distinct from argument errors.
        print(f"error: {error}", file=sys.stderr)
        return 3
    finally:
        set_persistence(prior_persistence)


if __name__ == "__main__":
    sys.exit(main())
