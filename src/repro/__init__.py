"""CharLLM-PPT reproduction: power/performance/thermal characterization of
distributed LLM training (Go et al., MICRO 2025) on a simulated testbed.

The stable public API is :mod:`repro.api` — one typed request schema
covering training, inference, serving, and fleet simulation::

    from repro import SimRequest, submit, OptimizationConfig

    result = submit(SimRequest(
        model="gpt3-175b",
        cluster="h200x32",
        parallelism="TP2-PP16",
        optimizations=OptimizationConfig(activation_recompute=True),
        microbatch_size=1,
    ))
    print(result.efficiency().tokens_per_s)
    print(result.stats().peak_temp_c)
    print(result.kernel_breakdown().seconds)

The same requests drive the ``repro.serve`` broker (``python -m repro
serve``) over HTTP, and :class:`OptimizeRequest` asks the joint
auto-search (:mod:`repro.optimize`, docs/optimize.md) for the best
configuration instead of one configuration. The historical
``run_training`` / ``run_inference`` / ``cached_run_*`` entrypoints
remain importable as deprecation shims; see docs/api.md. See DESIGN.md
for the system inventory and EXPERIMENTS.md for the per-figure
reproduction index.
"""

from repro.api import (
    KINDS,
    OptimizeRequest,
    OptimizeResult,
    SimRequest,
    submit,
    submit_many,
)
from repro.core.experiment import run_inference, run_training
from repro.datacenter import (
    POLICIES,
    ArrivalConfig,
    FleetConfig,
    FleetMetrics,
    FleetOutcome,
    PowerCapConfig,
    simulate_fleet,
)
from repro.core.faults import FaultSpec, power_failure
from repro.core.results import RunResult
from repro.core.sweep import (
    SweepPoint,
    cached_run_inference,
    cached_run_training,
    normalize_by_best,
    run_sweep,
)
from repro.hardware.cluster import (
    H100_X64,
    H200_X32,
    MI250_X32,
    ClusterSpec,
    cluster_names,
    get_cluster,
    one_gpu_per_node,
)
from repro.inferserve import (
    ServingConfig,
    ServingOutcome,
    TraceConfig,
    execute_serving,
    search_serving_setpoint,
)
from repro.models.catalog import TABLE1_MODELS, get_model, model_names
from repro.models.config import ModelConfig, MoEConfig
from repro.parallelism.enumerate import (
    ConfigSearchSpace,
    minimal_model_parallel,
    valid_configs,
)
from repro.parallelism.strategy import (
    OptimizationConfig,
    ParallelismConfig,
    parse_strategy,
)

__version__ = "1.0.0"

__all__ = [
    "H100_X64",
    "H200_X32",
    "MI250_X32",
    "TABLE1_MODELS",
    "ArrivalConfig",
    "ClusterSpec",
    "ConfigSearchSpace",
    "FaultSpec",
    "FleetConfig",
    "FleetMetrics",
    "FleetOutcome",
    "KINDS",
    "POLICIES",
    "PowerCapConfig",
    "simulate_fleet",
    "power_failure",
    "ModelConfig",
    "MoEConfig",
    "OptimizationConfig",
    "OptimizeRequest",
    "OptimizeResult",
    "ParallelismConfig",
    "RunResult",
    "ServingConfig",
    "ServingOutcome",
    "SimRequest",
    "SweepPoint",
    "TraceConfig",
    "cached_run_inference",
    "cached_run_training",
    "cluster_names",
    "execute_serving",
    "get_cluster",
    "get_model",
    "minimal_model_parallel",
    "model_names",
    "normalize_by_best",
    "one_gpu_per_node",
    "parse_strategy",
    "run_inference",
    "run_sweep",
    "run_training",
    "search_serving_setpoint",
    "submit",
    "submit_many",
    "valid_configs",
    "__version__",
]
